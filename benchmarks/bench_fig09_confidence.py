"""Fig. 9 — Effect of minimum confidence.

Paper series: (a) number of trajectory patterns and (b) average error vs
the minimum-confidence threshold (0..100 %), per dataset.  Expected
shape: the corpus shrinks as the threshold rises; strongly patterned data
(Bike) barely loses accuracy ("only certain numbers of patterns are
useful for prediction though many patterns are discovered"), while the
weakly patterned Airplane degrades once its corpus becomes insufficient
(the paper pins this around 60 %).
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_confidence

from conftest import run_once

SCENARIOS = ("bike", "cow", "car", "airplane")


def thresholds():
    if full_sweeps_enabled():
        return [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    return [0.0, 0.3, 0.6, 0.9]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig09_confidence(benchmark, scenario, datasets, scale):
    dataset = datasets[scenario]
    rows = run_once(
        benchmark, lambda: run_confidence(dataset, thresholds(), scale)
    )
    print(
        format_series(
            f"Fig. 9 ({scenario}): patterns and error vs minimum confidence",
            ["min_conf", "patterns", "HPM error"],
            [[r["min_confidence"], r["num_patterns"], r["hpm_error"]] for r in rows],
        )
    )
    counts = [r["num_patterns"] for r in rows]
    assert counts == sorted(counts, reverse=True)
