"""Extension — serving throughput: batching + cache on vs. off.

The paper measures per-query model cost (Fig. 10); this bench measures
the *serving stack* wrapped around it.  One process runs the asyncio
HTTP server over a fitted commuter model and fires an identical
500-request workload at it twice: once with request batching and the
LRU+TTL prediction cache enabled, once with both disabled (every
request pays a full model pass).  Reported per mode: requests/sec and
exact p95 latency from the load generator's raw timings.

Finding: with repeating traffic (50 distinct queries in the pool) the
cache converts ~90% of requests into dictionary lookups and throughput
rises severalfold while p95 falls; the batcher keeps the gap bounded
even at concurrency 16 because concurrent misses for one object share a
single executor pass.
"""

import asyncio

import numpy as np
import pytest

from repro import FleetPredictionModel, HPMConfig, Trajectory
from repro.serve import (
    PredictionServer,
    PredictionService,
    ServeConfig,
    build_workload,
    run_loadgen,
)

from conftest import run_once

PERIOD = 24
REQUESTS = 500
CONCURRENCY = 16
DISTINCT = 50


def commuter_history(num_days: int = 40) -> Trajectory:
    rng = np.random.default_rng(7)
    base = np.zeros((PERIOD, 2))
    for t in range(PERIOD):
        if t < PERIOD // 2:
            base[t] = [400.0 * t, 0.0]
        else:
            base[t] = [400.0 * (PERIOD // 2), 400.0 * (t - PERIOD // 2)]
    days = [base + rng.normal(0, 20.0, base.shape) for _ in range(num_days)]
    return Trajectory(np.vstack(days))


def fitted_fleet(history: Trajectory) -> FleetPredictionModel:
    config = HPMConfig(
        period=PERIOD,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=8,
        recent_window=4,
    )
    fleet = FleetPredictionModel(config)
    fleet.fit({"default": history})
    return fleet


async def measure(fleet, history, serve_config):
    service = PredictionService(fleet, serve_config)
    server = PredictionServer(service)
    await server.start()
    try:
        workload = build_workload(
            history,
            requests=REQUESTS,
            window=4,
            max_horizon=5,
            distinct=DISTINCT,
            rng=np.random.default_rng(0),
        )
        return await run_loadgen(
            "127.0.0.1", server.port, workload, concurrency=CONCURRENCY
        )
    finally:
        await server.close()


def test_serve_throughput_batching_cache_ab(benchmark):
    history = commuter_history()
    fleet = fitted_fleet(history)
    modes = {
        "batching+cache on": ServeConfig(),
        "batching+cache off": ServeConfig(
            enable_batching=False, enable_cache=False
        ),
    }

    def compute():
        rows = []
        for label, serve_config in modes.items():
            report = asyncio.run(measure(fleet, history, serve_config))
            rows.append(
                {
                    "mode": label,
                    "req_per_s": round(report.throughput, 1),
                    "p95_ms": round(report.percentile(95), 2),
                    "cache_hits": report.cache_hits,
                    "errors": report.errors,
                }
            )
        return rows

    rows = run_once(benchmark, compute)

    print(f"\nServing throughput, {REQUESTS} requests @ concurrency {CONCURRENCY}")
    print(f"{'mode':<20} {'req/s':>10} {'p95 ms':>10} {'cache hits':>12}")
    for r in rows:
        print(
            f"{r['mode']:<20} {r['req_per_s']:>10} {r['p95_ms']:>10} "
            f"{r['cache_hits']:>12}"
        )

    on, off = rows
    assert on["errors"] == 0 and off["errors"] == 0
    assert on["cache_hits"] > 0
    assert off["cache_hits"] == 0
    # The whole point of the subsystem: the optimised stack is faster.
    assert on["req_per_s"] > off["req_per_s"]
