"""Index-design ablations called out in DESIGN.md.

1. **ChooseLeaf policy** — the paper's Algorithm 1 adds an Intersect case
   between Contain and Difference, claiming it clusters query-coherent
   patterns ("useful for efficient query processing ... cannot be
   achieved by the construction algorithm of signature tree").  The
   ablation compares nodes visited per Intersect query under Algorithm 1
   vs the generic signature-tree rule, on identical corpora and insert
   order.
2. **Node fanout** — capacity sweep: build time, height, storage, search.
"""

import pytest

from repro.evalx import (
    format_series,
    full_sweeps_enabled,
    run_chooseleaf_ablation,
    run_fanout_ablation,
)

from conftest import run_once


def corpus_size():
    return 40000 if full_sweeps_enabled() else 10000


def test_chooseleaf_policy_ablation(benchmark):
    row = run_once(
        benchmark,
        lambda: run_chooseleaf_ablation(
            num_patterns=corpus_size(), num_regions=300, num_queries=150
        ),
    )
    print(
        format_series(
            "ChooseLeaf ablation: nodes visited per Intersect query",
            ["policy", "nodes/query"],
            [
                ["Algorithm 1 (paper)", round(row["algorithm1_nodes_per_query"], 1)],
                ["generic signature tree", round(row["generic_nodes_per_query"], 1)],
            ],
        )
    )
    # Both policies must return identical result sets.
    assert row["algorithm1_hits"] == row["generic_hits"]


def test_fanout_ablation(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_fanout_ablation(
            [8, 16, 32, 64, 128], num_patterns=corpus_size(), num_queries=150
        ),
    )
    print(
        format_series(
            "TPT fanout ablation",
            ["fanout", "build s", "search ms", "height", "storage MB"],
            [
                [
                    r["fanout"],
                    round(r["build_s"], 2),
                    round(r["search_ms"], 3),
                    r["height"],
                    round(r["storage_mb"], 2),
                ]
                for r in rows
            ],
        )
    )
    # Taller trees at smaller fanout.
    assert rows[0]["height"] >= rows[-1]["height"]
