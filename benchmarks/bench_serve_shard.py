"""Sharded serving A/B: 1 process vs N shard workers, plus a kill drill.

Three passes over the same 6-object fleet snapshot:

* **Single** — one ``PredictionService`` over the whole snapshot, under
  loadgen; every distinct query's response (plus ``/objects`` and a
  fleet-wide ``/predict_all``) folds into a SHA-256 fingerprint.
* **Sharded** — ``ShardCluster`` spawns N real ``repro shard-worker``
  subprocesses behind a ``RouterServer``; the same workload and the
  same fingerprint queries run through the router.  With chaos off the
  two fingerprints must be **byte-identical**: the router is a
  transparent pipe, not an approximation.
* **Kill drill** — the workload replays in waves; after the second wave
  one worker is SIGKILLed mid-load.  The router must keep answering
  (stale-degraded or healthy-shard traffic, zero unhandled event-loop
  exceptions), supervision must restart the worker, and overall goodput
  (full-quality 200s) must stay >= 80%.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve_shard.py           # full
    PYTHONPATH=src python benchmarks/bench_serve_shard.py --smoke   # CI-sized

Writes ``BENCH_serve_shard.json``.  Exits 1 if any gate fails.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import FleetPredictionModel, HPMConfig, Trajectory
from repro.core.persistence import load_fleet, save_fleet
from repro.serve import (
    HttpClient,
    PredictionServer,
    PredictionService,
    ServeConfig,
    build_workload,
    run_loadgen,
)
from repro.serve.handlers import encode_json
from repro.serve.shard import (
    RouterConfig,
    RouterServer,
    RouterService,
    ShardCluster,
)

PERIOD = 24
NUM_DAYS = 15
NUM_OBJECTS = 6
NUM_SHARDS = 3
OBJECT_IDS = [f"bus-{i}" for i in range(NUM_OBJECTS)]
GOODPUT_FLOOR = 0.80


def commuter_history(seed: int) -> Trajectory:
    rng = np.random.default_rng(seed)
    base = np.zeros((PERIOD, 2))
    for t in range(PERIOD):
        if t < PERIOD // 2:
            base[t] = [400.0 * t, 0.0]
        else:
            base[t] = [400.0 * (PERIOD // 2), 400.0 * (t - PERIOD // 2)]
    days = [base + rng.normal(0, 20.0, base.shape) for _ in range(NUM_DAYS)]
    return Trajectory(np.vstack(days))


def build_fleet() -> tuple[FleetPredictionModel, dict[str, Trajectory]]:
    config = HPMConfig(
        period=PERIOD,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=8,
        recent_window=4,
    )
    histories = {
        object_id: commuter_history(31 + i)
        for i, object_id in enumerate(OBJECT_IDS)
    }
    fleet = FleetPredictionModel(config)
    fleet.fit(histories)
    return fleet, histories


def mixed_workload(histories, requests: int, distinct: int):
    """Interleave per-object workloads so traffic spans every shard."""
    per_object = max(1, requests // len(histories))
    streams = [
        build_workload(
            history,
            object_id=object_id,
            requests=per_object,
            window=4,
            max_horizon=5,
            distinct=max(1, distinct // len(histories)),
            rng=np.random.default_rng(100 + i),
        )
        for i, (object_id, history) in enumerate(sorted(histories.items()))
    ]
    workload = []
    for round_robin in zip(*streams):
        workload.extend(round_robin)
    return workload


def fingerprint_bodies(histories, per_object: int) -> list[tuple[str, bytes]]:
    """The distinct (path, request body) pairs both passes replay."""
    bodies: list[tuple[str, bytes]] = []
    recents = {}
    query_time = 0
    for i, (object_id, history) in enumerate(sorted(histories.items())):
        queries = build_workload(
            history,
            object_id=object_id,
            requests=per_object,
            window=4,
            max_horizon=5,
            distinct=per_object,
            rng=np.random.default_rng(500 + i),
        )
        for query in {q.recent: q for q in queries}.values():
            bodies.append(("/predict", encode_json(query.payload())))
        recents[object_id] = [list(fix) for fix in queries[0].recent]
        query_time = max(query_time, queries[0].query_time)
    bodies.append(
        ("/predict_all", encode_json({"query_time": query_time, "recents": recents}))
    )
    return bodies


async def fingerprint(port: int, bodies) -> tuple[str, int]:
    """SHA-256 over every response; also counts non-200 statuses."""
    digest = hashlib.sha256()
    non_200 = 0
    client = HttpClient("127.0.0.1", port)
    try:
        for path, body in bodies:
            status, _, response = await client.request_raw("POST", path, body)
            if status != 200:
                non_200 += 1
            digest.update(response)
        status, _, response = await client.request("GET", "/objects")
        if status != 200:
            non_200 += 1
        digest.update(response)
    finally:
        await client.close()
    return digest.hexdigest(), non_200


def report_summary(requests, errors, good, degraded, status_counts, latencies,
                   elapsed, shard_statuses=None) -> dict:
    arr = np.asarray(latencies) if latencies else np.asarray([0.0])
    summary = {
        "requests": requests,
        "errors": errors,
        "throughput_rps": round((requests - errors) / elapsed, 1)
        if elapsed > 0
        else 0.0,
        "goodput_ratio": round(good / requests, 4) if requests else 0.0,
        "degraded": degraded,
        "status_counts": {
            str(s): c for s, c in sorted(status_counts.items())
        },
        "latency_ms": {
            "p50": round(float(np.percentile(arr, 50)), 2),
            "p95": round(float(np.percentile(arr, 95)), 2),
            "p99": round(float(np.percentile(arr, 99)), 2),
        },
    }
    if shard_statuses:
        summary["per_shard_status_counts"] = {
            shard: {str(s): c for s, c in sorted(counts.items())}
            for shard, counts in sorted(shard_statuses.items())
        }
    return summary


def summarize_report(report) -> dict:
    return report_summary(
        report.requests,
        report.errors,
        report.good,
        report.degraded,
        report.status_counts,
        report.latencies_ms,
        report.elapsed,
        report.shard_status_counts,
    )


# ----------------------------------------------------------------------
# pass 1: single process
# ----------------------------------------------------------------------
async def run_single(snapshot, histories, requests, distinct, bodies) -> dict:
    service = PredictionService(load_fleet(snapshot), ServeConfig())
    server = PredictionServer(service)
    await server.start()
    try:
        report = await run_loadgen(
            "127.0.0.1",
            server.port,
            mixed_workload(histories, requests, distinct),
            concurrency=8,
        )
        digest, non_200 = await fingerprint(server.port, bodies)
    finally:
        await server.close()
    return {
        **summarize_report(report),
        "fingerprint": digest,
        "fingerprint_non_200": non_200,
    }


# ----------------------------------------------------------------------
# passes 2 + 3: sharded baseline and the kill drill, one stack each
# ----------------------------------------------------------------------
async def with_shard_stack(snapshot, scenario):
    unhandled: list[str] = []
    loop = asyncio.get_running_loop()
    default_handler = loop.get_exception_handler()
    loop.set_exception_handler(
        lambda loop, ctx: unhandled.append(ctx.get("message", ""))
    )
    router = RouterService(
        RouterConfig(
            num_shards=NUM_SHARDS, probe_interval=0.1, probe_fail_threshold=2
        )
    )
    cluster = ShardCluster(
        snapshot,
        NUM_SHARDS,
        restart_backoff=0.2,
        on_ready=router.attach_shard,
        on_down=router.detach_shard,
    )
    await cluster.start()
    server = RouterServer(router)
    try:
        await server.start()
        result = await scenario(router, cluster, server)
    finally:
        await server.close()
        await cluster.stop(grace=5.0)
        loop.set_exception_handler(default_handler)
    result["unhandled_task_exceptions"] = len(unhandled)
    return result


async def run_sharded(snapshot, histories, requests, distinct, bodies) -> dict:
    async def scenario(router, cluster, server):
        report = await run_loadgen(
            "127.0.0.1",
            server.port,
            mixed_workload(histories, requests, distinct),
            concurrency=8,
        )
        digest, non_200 = await fingerprint(server.port, bodies)
        return {
            **summarize_report(report),
            "fingerprint": digest,
            "fingerprint_non_200": non_200,
            "shards": NUM_SHARDS,
            "shards_seen_by_loadgen": sorted(report.shard_status_counts),
        }

    return await with_shard_stack(snapshot, scenario)


async def run_kill_drill(
    snapshot, histories, requests, distinct, waves, pause_s
) -> dict:
    async def scenario(router, cluster, server):
        victim_shard = router.ring.shard_for(OBJECT_IDS[0])
        workload = mixed_workload(histories, requests, distinct)
        per_wave = max(1, len(workload) // waves)
        totals = {
            "requests": 0,
            "errors": 0,
            "good": 0,
            "degraded": 0,
        }
        status_counts: dict[int, int] = {}
        shard_statuses: dict[str, dict[int, int]] = {}
        latencies: list[float] = []
        elapsed = 0.0
        old_pid = cluster.workers[victim_shard].process.pid
        for wave in range(waves):
            chunk = workload[wave * per_wave : (wave + 1) * per_wave]
            if not chunk:
                break
            report = await run_loadgen(
                "127.0.0.1", server.port, chunk, concurrency=8
            )
            totals["requests"] += report.requests
            totals["errors"] += report.errors
            totals["good"] += report.good
            totals["degraded"] += report.degraded
            for status, count in report.status_counts.items():
                status_counts[status] = status_counts.get(status, 0) + count
            for shard, counts in report.shard_status_counts.items():
                merged = shard_statuses.setdefault(shard, {})
                for status, count in counts.items():
                    merged[status] = merged.get(status, 0) + count
            latencies.extend(report.latencies_ms)
            elapsed += report.elapsed
            if wave == 1:
                cluster.kill_worker(victim_shard)
            await asyncio.sleep(pause_s)

        # Wait for supervision to bring the victim back and the router
        # to re-attach it, then check the fleet-wide rollup recovered.
        deadline = asyncio.get_running_loop().time() + 30.0
        recovered = False
        while asyncio.get_running_loop().time() < deadline:
            state = router.shard_states().get(victim_shard)
            if (
                state is not None
                and state["healthy"]
                and cluster.workers[victim_shard].process.pid != old_pid
            ):
                recovered = True
                break
            await asyncio.sleep(0.2)
        client = HttpClient("127.0.0.1", server.port)
        try:
            _, _, health = await client.request("GET", "/healthz")
            final_health = json.loads(health)
        finally:
            await client.close()
        return {
            **report_summary(
                totals["requests"],
                totals["errors"],
                totals["good"],
                totals["degraded"],
                status_counts,
                latencies,
                elapsed,
                shard_statuses,
            ),
            "victim_shard": victim_shard,
            "waves": waves,
            "kill_after_wave": 2,
            "worker_restarts": cluster.workers[victim_shard].restarts,
            "worker_recovered": recovered,
            "final_health": final_health,
            "router_degraded_total": router.metrics.counter(
                "router_degraded_total"
            ).value,
            "router_failover_total": router.metrics.counter(
                "router_failover_total"
            ).value,
        }

    return await with_shard_stack(snapshot, scenario)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=900)
    parser.add_argument("--distinct", type=int, default=90)
    parser.add_argument("--fingerprint-per-object", type=int, default=12)
    parser.add_argument("--waves", type=int, default=8)
    parser.add_argument("--pause-s", type=float, default=0.6)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: small workload, same stack and gates",
    )
    parser.add_argument("--output", default="BENCH_serve_shard.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests, args.distinct = 240, 30
        args.fingerprint_per_object = 4
        args.waves, args.pause_s = 6, 0.5

    fleet, histories = build_fleet()
    bodies = fingerprint_bodies(histories, args.fingerprint_per_object)
    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as tmp:
        snapshot = Path(tmp) / "snapshot"
        save_fleet(fleet, snapshot)
        print(
            f"serve shard A/B: {NUM_OBJECTS} objects, {NUM_SHARDS} shards, "
            f"{args.requests} requests, {len(bodies)} fingerprint queries ..."
        )

        single = asyncio.run(
            run_single(snapshot, histories, args.requests, args.distinct, bodies)
        )
        print(
            f"  single:  {single['throughput_rps']} req/s, "
            f"errors={single['errors']} fingerprint={single['fingerprint'][:16]}"
        )
        sharded = asyncio.run(
            run_sharded(snapshot, histories, args.requests, args.distinct, bodies)
        )
        print(
            f"  sharded: {sharded['throughput_rps']} req/s over "
            f"{NUM_SHARDS} workers, errors={sharded['errors']} "
            f"fingerprint={sharded['fingerprint'][:16]}"
        )
        drill = asyncio.run(
            run_kill_drill(
                snapshot,
                histories,
                args.requests,
                args.distinct,
                args.waves,
                args.pause_s,
            )
        )
        print(
            f"  drill:   goodput={drill['goodput_ratio']:.1%} "
            f"degraded={drill['degraded']} restarts="
            f"{drill['worker_restarts']} recovered={drill['worker_recovered']} "
            f"unhandled={drill['unhandled_task_exceptions']}"
        )

    gates = {
        "single_clean": single["errors"] == 0
        and single["fingerprint_non_200"] == 0,
        "sharded_clean": sharded["errors"] == 0
        and sharded["degraded"] == 0
        and sharded["fingerprint_non_200"] == 0
        and sharded["unhandled_task_exceptions"] == 0,
        "byte_identical_fingerprints": (
            single["fingerprint"] == sharded["fingerprint"]
        ),
        "loadgen_spans_shards": len(sharded["shards_seen_by_loadgen"]) > 1,
        "drill_goodput": drill["goodput_ratio"] >= GOODPUT_FLOOR,
        "drill_router_survived": drill["unhandled_task_exceptions"] == 0
        and drill["final_health"]["status"] == "ok",
        "drill_restart_observed": drill["worker_restarts"] >= 1
        and drill["worker_recovered"],
    }
    report = {
        "benchmark": "serve_shard",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "objects": NUM_OBJECTS,
        "shards": NUM_SHARDS,
        "requests": args.requests,
        "goodput_floor": GOODPUT_FLOOR,
        "single": single,
        "sharded": sharded,
        "kill_drill": drill,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    failed = [name for name, passed in gates.items() if not passed]
    print(f"gates: {', '.join(f'{k}={v}' for k, v in gates.items())}")
    print(f"wrote {args.output}")
    if failed:
        print(f"FAIL: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
