"""Resilience drill: the hardened serve stack under a committed fault plan.

Two passes over the same fitted commuter model:

* **Baseline** (default ``ServeConfig``, chaos off) — proves the
  hardening layer is invisible when nothing is wrong: zero shed, zero
  rate-limited, zero degraded, zero errors, and every distinct query's
  HTTP body byte-identical to the canonical direct-predict rendering
  (fingerprinted with SHA-256).
* **Fault drill** — the committed plan from the robustness issue: seeded
  injected latency, 5% synthetic handler errors, and connection drops,
  fired at twice the admission capacity with a per-request deadline.
  The service must *shed and degrade instead of crashing*: zero
  unhandled task exceptions on the event loop, admission depth bounded
  by the configured capacities throughout, and >= 80% goodput
  (full-quality, in-deadline 200s).

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve_resilience.py           # full
    PYTHONPATH=src python benchmarks/bench_serve_resilience.py --smoke   # CI-sized

Writes ``BENCH_serve_resilience.json`` with both passes' breakdowns,
the fault plan, and the gate results.  Exits 1 if any gate fails.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import hashlib
import json
import sys
from pathlib import Path

import numpy as np

from repro import FleetPredictionModel, HPMConfig, Trajectory
from repro.serve import (
    ChaosConfig,
    HttpClient,
    PredictionServer,
    PredictionService,
    ServeConfig,
    build_workload,
    render_predict_body,
    run_loadgen,
)
from repro.trajectory.point import TimedPoint

PERIOD = 24
GOODPUT_FLOOR = 0.80

#: the committed fault plan (see module docstring) — seeded, so the
#: injected fault sequence replays identically run to run
FAULT_PLAN = ChaosConfig(
    seed=2008,
    latency_probability=0.25,
    latency_ms=20.0,
    error_probability=0.05,
    drop_probability=0.02,
)

#: drill admission capacity; the workload runs at 2x this concurrency
DRILL_CAPACITY = 4


def commuter_history(num_days: int = 40) -> Trajectory:
    rng = np.random.default_rng(7)
    base = np.zeros((PERIOD, 2))
    for t in range(PERIOD):
        if t < PERIOD // 2:
            base[t] = [400.0 * t, 0.0]
        else:
            base[t] = [400.0 * (PERIOD // 2), 400.0 * (t - PERIOD // 2)]
    days = [base + rng.normal(0, 20.0, base.shape) for _ in range(num_days)]
    return Trajectory(np.vstack(days))


def fitted_fleet(history: Trajectory) -> FleetPredictionModel:
    config = HPMConfig(
        period=PERIOD,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=8,
        recent_window=4,
    )
    fleet = FleetPredictionModel(config)
    fleet.fit({"default": history})
    return fleet


def report_summary(report) -> dict:
    return {
        "requests": report.requests,
        "errors": report.errors,
        "throughput_rps": round(report.throughput, 1),
        "latency_ms": {
            "p50": round(report.percentile(50), 2),
            "p95": round(report.percentile(95), 2),
            "p99": round(report.percentile(99), 2),
        },
        "status_counts": {
            str(status): count
            for status, count in sorted(report.status_counts.items())
        },
        "cache_hits": report.cache_hits,
        "shed": report.shed,
        "rate_limited": report.rate_limited,
        "degraded": report.degraded,
        "transport_errors": report.transport_errors,
        "deadline_misses": report.deadline_misses,
        "goodput_ratio": round(report.goodput_ratio, 4),
    }


# ----------------------------------------------------------------------
# baseline: chaos off, defaults — invisible hardening + byte identity
# ----------------------------------------------------------------------
async def run_baseline(fleet, history, requests: int, distinct: int) -> dict:
    service = PredictionService(fleet, ServeConfig())
    server = PredictionServer(service)
    await server.start()
    try:
        workload = build_workload(
            history,
            requests=requests,
            window=4,
            max_horizon=5,
            distinct=distinct,
            rng=np.random.default_rng(0),
        )
        report = await run_loadgen(
            "127.0.0.1", server.port, workload, concurrency=8
        )
        # Byte identity: every distinct query's served body must equal
        # the canonical rendering of a direct in-process predict call.
        digest = hashlib.sha256()
        mismatches = 0
        client = HttpClient("127.0.0.1", server.port)
        try:
            for query in {q.recent: q for q in workload}.values():
                _, _, body = await client.request(
                    "POST", "/predict", query.payload()
                )
                window = [TimedPoint(t, x, y) for t, x, y in query.recent]
                direct = fleet["default"].predict(
                    window, query.query_time, query.k
                )
                expected = render_predict_body(
                    query.object_id, query.query_time, direct
                )
                if body != expected:
                    mismatches += 1
                digest.update(body)
        finally:
            await client.close()
    finally:
        await server.close()
    return {
        **report_summary(report),
        "byte_mismatches": mismatches,
        "fingerprint": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# fault drill: the committed plan at 2x admission capacity
# ----------------------------------------------------------------------
async def run_drill(
    fleet, history, requests: int, distinct: int, deadline_ms: float
) -> dict:
    unhandled: list[dict] = []
    loop = asyncio.get_running_loop()
    default_handler = loop.get_exception_handler()

    def count_unhandled(loop, context) -> None:
        unhandled.append({"message": context.get("message", "")})

    loop.set_exception_handler(count_unhandled)
    # Production configuration (cache + batching on) with the admission
    # capacity squeezed to DRILL_CAPACITY: cache-miss bursts overflow the
    # slots and must shed cleanly while the hit path keeps goodput up.
    config = ServeConfig(
        max_inflight_predict=DRILL_CAPACITY,
        max_inflight_ingest=DRILL_CAPACITY,
        high_watermark=3 * DRILL_CAPACITY,
        low_watermark=DRILL_CAPACITY,
        chaos=FAULT_PLAN,
    )
    depth_bound = (
        config.max_inflight_predict
        + config.max_inflight_ingest
        + config.refit_concurrency
    )
    service = PredictionService(fleet, config)
    server = PredictionServer(service)
    await server.start()
    max_depth = 0
    sampling = True

    async def sample_depth() -> None:
        nonlocal max_depth
        while sampling:
            max_depth = max(max_depth, service.admission.depth())
            await asyncio.sleep(0.002)

    sampler = asyncio.create_task(sample_depth())
    try:
        workload = build_workload(
            history,
            requests=requests,
            window=4,
            max_horizon=5,
            distinct=distinct,
            deadline_ms=deadline_ms,
            rng=np.random.default_rng(1),
        )
        report = await run_loadgen(
            "127.0.0.1",
            server.port,
            workload,
            concurrency=2 * DRILL_CAPACITY,
        )
    finally:
        sampling = False
        await sampler
        await server.close()
        loop.set_exception_handler(default_handler)
    snapshot = service.metrics.snapshot()
    return {
        **report_summary(report),
        "deadline_ms": deadline_ms,
        "concurrency": 2 * DRILL_CAPACITY,
        "capacity": DRILL_CAPACITY,
        "injected": service.chaos.stats(),
        "unhandled_task_exceptions": len(unhandled),
        "max_admission_depth": max_depth,
        "admission_depth_bound": depth_bound,
        "server_counters": {
            name: snapshot[name]["value"]
            for name in (
                "serve_shed_total",
                "serve_rate_limited_total",
                "serve_degraded_total",
                "serve_deadline_timeouts_total",
                "serve_http_errors_total",
                "serve_idle_timeouts_total",
            )
            if name in snapshot
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument("--distinct", type=int, default=60)
    parser.add_argument("--deadline-ms", type=float, default=500.0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: small workload, same fault plan and gates",
    )
    parser.add_argument("--output", default="BENCH_serve_resilience.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests, args.distinct = 150, 30

    history = commuter_history()
    fleet = fitted_fleet(history)
    print(
        f"serve resilience: {args.requests} requests, fault plan "
        f"seed={FAULT_PLAN.seed} latency={FAULT_PLAN.latency_probability:.0%}/"
        f"{FAULT_PLAN.latency_ms:.0f}ms errors="
        f"{FAULT_PLAN.error_probability:.0%} drops="
        f"{FAULT_PLAN.drop_probability:.0%} at 2x capacity "
        f"({DRILL_CAPACITY} slots) ..."
    )

    baseline = asyncio.run(
        run_baseline(fleet, history, args.requests, args.distinct)
    )
    print(
        f"  baseline: {baseline['throughput_rps']} req/s, "
        f"errors={baseline['errors']} shed={baseline['shed']} "
        f"degraded={baseline['degraded']} "
        f"byte_mismatches={baseline['byte_mismatches']}"
    )
    drill = asyncio.run(
        run_drill(fleet, history, args.requests, args.distinct, args.deadline_ms)
    )
    print(
        f"  drill:    {drill['throughput_rps']} req/s, "
        f"goodput={drill['goodput_ratio']:.1%} shed={drill['shed']} "
        f"degraded={drill['degraded']} transport_errors="
        f"{drill['transport_errors']} unhandled="
        f"{drill['unhandled_task_exceptions']} "
        f"depth={drill['max_admission_depth']}/{drill['admission_depth_bound']}"
    )

    gates = {
        "baseline_clean": (
            baseline["errors"] == 0
            and baseline["shed"] == 0
            and baseline["rate_limited"] == 0
            and baseline["degraded"] == 0
        ),
        "baseline_byte_identical": baseline["byte_mismatches"] == 0,
        "drill_goodput": drill["goodput_ratio"] >= GOODPUT_FLOOR,
        "drill_no_unhandled_exceptions": (
            drill["unhandled_task_exceptions"] == 0
        ),
        "drill_depth_bounded": (
            drill["max_admission_depth"] <= drill["admission_depth_bound"]
        ),
    }
    report = {
        "benchmark": "serve_resilience",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "requests": args.requests,
        "distinct": args.distinct,
        "goodput_floor": GOODPUT_FLOOR,
        "fault_plan": dataclasses.asdict(FAULT_PLAN),
        "baseline": baseline,
        "drill": drill,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    failed = [name for name, passed in gates.items() if not passed]
    print(f"gates: {', '.join(f'{k}={v}' for k, v in gates.items())}")
    print(f"wrote {args.output}")
    if failed:
        print(f"FAIL: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
