"""Fig. 5 — Effect of Prediction Length.

Paper series: average error (distance) vs prediction length 20..200, HPM
vs RMF, one panel per dataset.  Expected shape: HPM stays low and flat;
RMF rises steeply with the prediction length, most dramatically on Car
("many sudden changes of direction on road intersections"); HPM's
advantage is smallest on Airplane ("the dataset does not contain strong
trajectory patterns").
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_prediction_length

from conftest import run_once

SCENARIOS = ("bike", "cow", "car", "airplane")


def lengths():
    if full_sweeps_enabled():
        return [20, 40, 60, 80, 100, 120, 140, 160, 180, 200]
    return [20, 60, 120, 200]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig05_prediction_length(benchmark, scenario, datasets, scale):
    dataset = datasets[scenario]
    rows = run_once(
        benchmark, lambda: run_prediction_length(dataset, lengths(), scale)
    )
    print(
        format_series(
            f"Fig. 5 ({scenario}): average error vs prediction length",
            ["length", "HPM error", "RMF error", "fqp", "bqp", "motion"],
            [
                [
                    r["prediction_length"],
                    r["hpm_error"],
                    r["rmf_error"],
                    r["hpm_methods"].get("fqp", 0),
                    r["hpm_methods"].get("bqp", 0),
                    r["hpm_methods"].get("motion", 0),
                ]
                for r in rows
            ],
        )
    )
    # Paper's qualitative claims, asserted on every run:
    # RMF error grows with the horizon...
    assert rows[-1]["rmf_error"] > rows[0]["rmf_error"]
    # ...and HPM never exceeds RMF at the longest horizon.
    assert rows[-1]["hpm_error"] < rows[-1]["rmf_error"]
