"""Fig. 8 — Effect of MinPts.

Paper series: (a) number of trajectory patterns and (b) average error vs
DBSCAN MinPts (3..7), per dataset.  Expected shape: raising MinPts
shrinks the pattern corpus ("the number of trajectory patterns is
considerably reduced as MinPts increases"), and once the corpus becomes
too small prediction errors rise.
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_minpts

from conftest import run_once

SCENARIOS = ("bike", "cow", "car", "airplane")


def minpts_values():
    if full_sweeps_enabled():
        return [3, 4, 5, 6, 7]
    return [3, 5, 7]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig08_minpts(benchmark, scenario, datasets, scale):
    dataset = datasets[scenario]
    rows = run_once(benchmark, lambda: run_minpts(dataset, minpts_values(), scale))
    print(
        format_series(
            f"Fig. 8 ({scenario}): patterns and error vs MinPts",
            ["min_pts", "patterns", "HPM error"],
            [[r["min_pts"], r["num_patterns"], r["hpm_error"]] for r in rows],
        )
    )
    # Fig. 8a: MinPts up -> patterns down (weakly monotone end-to-end).
    assert rows[-1]["num_patterns"] <= rows[0]["num_patterns"]
