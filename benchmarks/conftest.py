"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures.  Each ``test_fig*``
computes the figure's data series once (timed via ``benchmark.pedantic``)
and prints it in the paper's row/column layout.

Scale control:

* default — reduced protocol (30 training sub-trajectories, 20 queries,
  3-4 sweep points) so the whole suite finishes in a few minutes;
* ``REPRO_FULL=1`` — the paper's protocol (60 training sub-trajectories,
  50 queries, full parameter grids).
"""

from __future__ import annotations

import pytest

from repro.datagen import make_dataset
from repro.evalx import scale_from_env


@pytest.fixture(scope="session")
def scale():
    return scale_from_env()


@pytest.fixture(scope="session")
def datasets(scale):
    """The four scenario datasets, generated once per session."""
    return {
        name: make_dataset(name, scale.dataset_subtrajectories, scale.period)
        for name in ("bike", "cow", "car", "airplane")
    }


def run_once(benchmark, fn):
    """Measure one full experiment run (no repetition — runs are seconds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
