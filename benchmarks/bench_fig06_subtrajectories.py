"""Fig. 6 — Effect of Sub-trajectories (prediction length = 50).

Paper series: average error vs the number of training sub-trajectories
(10..100), HPM vs RMF.  Expected shape: HPM's error starts near RMF's
with few training periods and drops steeply once enough history has
accumulated ("HPM can become dramatically more precise when a proper
amount of sub-trajectories have been accumulated"); RMF is flat (it only
ever sees the query's recent window); "HPM errors do not exceed RMF
errors throughout".
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_subtrajectories

from conftest import run_once

SCENARIOS = ("bike", "cow", "car", "airplane")


def counts(scale):
    top = scale.training_subtrajectories
    if full_sweeps_enabled():
        return [10, 20, 30, 40, 50, 60]
    return [5, 10, 20, top]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig06_subtrajectories(benchmark, scenario, datasets, scale):
    dataset = datasets[scenario]
    rows = run_once(
        benchmark,
        lambda: run_subtrajectories(dataset, counts(scale), scale, prediction_length=50),
    )
    print(
        format_series(
            f"Fig. 6 ({scenario}): average error vs training sub-trajectories",
            ["subtrajectories", "HPM error", "RMF error", "patterns"],
            [
                [
                    r["num_subtrajectories"],
                    r["hpm_error"],
                    r["rmf_error"],
                    r["num_patterns"],
                ]
                for r in rows
            ],
        )
    )
    # More history -> at least as many patterns.
    assert rows[-1]["num_patterns"] >= rows[0]["num_patterns"]
    # "HPM errors do not exceed RMF errors throughout" — equality occurs
    # when every query falls back to the motion function (weak patterns).
    assert rows[-1]["hpm_error"] <= rows[-1]["rmf_error"]
