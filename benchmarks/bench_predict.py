"""Query-path A/B: prepared plans + caches vs the pre-overhaul algorithm.

PR 4 rebuilt the query path around :class:`repro.core.plan.PreparedQuery`
(per-window work hoisted out of the per-query loop), cached premise-weight
tables, a consequence-offset index on the TPT, and a locate memo on the
region set — all under a byte-identity contract.  This bench holds the
contract to account: a ``LegacyPredictor`` re-implements the old per-call
algorithm exactly (uncached region mapping via per-region KD queries,
inline weight recomputation, full tree descents per round, a fresh motion
fit per query, full sort + slice) and both engines answer the same
workloads; their prediction streams are fingerprinted with SHA-256 and
must match bit for bit.

Two modes are measured:

* **single-query** — independent ``predict(recent, tq, k=3)`` calls over a
  pool of windows and mixed FQP/BQP/motion horizons (the serve hot path);
* **trajectory-sweep** — ``predict_trajectory`` over a horizon crossing
  the distant-time threshold (the ``/predict_trajectory`` and eval paths).

``--backend kernel`` instead holds PR 9's vectorized score kernel to the
same contract: a scan-backend model (the PR 4 prepared-plan path, kept as
the oracle) and a kernel-backend clone sharing the identical fitted state
answer the same workloads; fingerprints are verified on an untimed pass
*before* any timing is reported.  Three modes are measured: single-query,
trajectory-sweep, and a 40-object ``Fleet.predict_all`` with cross-object
batching.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_predict.py                    # PR 4 A/B
    PYTHONPATH=src python benchmarks/bench_predict.py --backend kernel   # PR 9 A/B
    PYTHONPATH=src python benchmarks/bench_predict.py --smoke            # CI-sized

Writes ``BENCH_predict.json`` (legacy) or ``BENCH_predict_kernel.json``
(kernel): p50/p95 latency, qps and speedup per mode, plus the
fingerprints.  Exits 1 if the engines disagree on any byte.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Sequence

from repro import HPMConfig, TimedPoint
from repro.core.model import HybridPredictionModel
from repro.core.plan import Prediction
from repro.core.similarity import (
    WEIGHT_FUNCTIONS,
    bqp_score,
    consequence_similarity,
    fqp_score,
)
from repro.datagen import make_dataset
from repro.motion.linear import LinearMotionFunction
from repro.signature import bitset

SINGLE_K = 3


# ----------------------------------------------------------------------
# the legacy engine: the pre-PR-4 per-call algorithm, verbatim
# ----------------------------------------------------------------------
def legacy_premise_weights(num_ones: int, kind: str) -> list[float]:
    """The old uncached ``premise_weights`` body — recomputed every call."""
    raw = WEIGHT_FUNCTIONS[kind]
    values = [raw(i) for i in range(1, num_ones + 1)]
    total = sum(values)
    return [v / total for v in values]


def legacy_premise_similarity(rk: int, rkq: int, kind: str) -> float:
    """Equation 1 without weight-table caching (the old hot-path cost)."""
    n = bitset.size(rk)
    if n == 0:
        return 0.0
    weights = legacy_premise_weights(n, kind)
    common = rk & rkq
    score = 0.0
    for bit_index in bitset.iter_set_bits(common):
        rank = bitset.position_of_bit(rk, bit_index)
        score += weights[rank - 1]
    return score


class LegacyPredictor:
    """The query path as it was before the overhaul.

    Per call: the recent window is re-mapped to regions with uncached
    per-region KD queries, the premise key re-encoded, candidates fetched
    by full tree descent (per BQP enlargement round), similarities scored
    with freshly recomputed weight vectors, ranked by full sort + slice,
    and the motion fallback refitted from scratch.
    """

    def __init__(self, model: HybridPredictionModel):
        predictor = model.predictor_
        assert predictor is not None, "bench needs a pattern-bearing model"
        self.regions = predictor.regions
        self.codec = predictor.codec
        self.tree = predictor.tree
        self.config = predictor.config
        self.motion_factory = predictor.motion_factory

    def predict(
        self, recent: Sequence[TimedPoint], query_time: int, k: int | None = None
    ) -> list[Prediction]:
        recent = list(recent)
        if not recent:
            raise ValueError("recent movements must be non-empty")
        k = self.config.top_k if k is None else k
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tc = recent[-1].t
        if query_time <= tc:
            raise ValueError(
                f"query time {query_time} must be after the current time {tc}"
            )
        if query_time - tc >= self.config.distant_threshold:
            return self.backward_query(recent, query_time, k)
        return self.forward_query(recent, query_time, k)

    def map_recent_to_regions(self, recent: Sequence[TimedPoint]) -> list:
        window = list(recent)[-self.config.recent_window :]
        seen: list = []
        for sample in window:
            region = self.regions.locate_uncached(
                (sample.x, sample.y), sample.t % self.config.period
            )
            if region is not None and region not in seen:
                seen.append(region)
        return seen

    def forward_query(
        self, recent: Sequence[TimedPoint], query_time: int, k: int
    ) -> list[Prediction]:
        recent_regions = self.map_recent_to_regions(recent)
        query_key = self.codec.encode_query(
            recent_regions, query_time % self.config.period
        )
        candidates = self.tree.search_candidates_descent(query_key)
        if not candidates:
            return [self._motion_prediction(recent, query_time)]
        kind = self.config.weight_function
        scored = []
        for pattern, key in candidates:
            sr = legacy_premise_similarity(key.premise_key, query_key.premise_key, kind)
            scored.append((fqp_score(sr, pattern.confidence), pattern))
        scored.sort(key=lambda sp: (-sp[0], -sp[1].confidence, -sp[1].support))
        return [
            Prediction(
                location=pattern.consequence.center,
                method="fqp",
                score=score,
                pattern=pattern,
            )
            for score, pattern in scored[:k]
        ]

    def backward_query(
        self, recent: Sequence[TimedPoint], query_time: int, k: int
    ) -> list[Prediction]:
        tc = recent[-1].t
        recent_regions = self.map_recent_to_regions(recent)
        query_key = self.codec.encode_query(
            recent_regions, query_time % self.config.period
        )
        kind = self.config.weight_function
        period = self.config.period
        t_eps = self.config.time_relaxation
        i = 1
        while True:
            relaxation = i * t_eps
            offsets = {
                t % period
                for t in range(query_time - relaxation, query_time + relaxation + 1)
            }
            mask = self.codec.consequence_mask(offsets)
            candidates = self.tree.search_by_consequence_descent(mask)
            if candidates:
                horizon = query_time - tc
                scored = []
                for pattern, key in candidates:
                    sr = legacy_premise_similarity(
                        key.premise_key, query_key.premise_key, kind
                    )
                    diff = abs(pattern.consequence_offset - query_time % period) % period
                    sc = consequence_similarity(min(diff, period - diff), relaxation)
                    scored.append(
                        (
                            bqp_score(
                                sr,
                                sc,
                                pattern.confidence,
                                self.config.distant_threshold,
                                horizon,
                            ),
                            pattern,
                        )
                    )
                scored.sort(key=lambda sp: (-sp[0], -sp[1].confidence, -sp[1].support))
                return [
                    Prediction(
                        location=pattern.consequence.center,
                        method="bqp",
                        score=score,
                        pattern=pattern,
                    )
                    for score, pattern in scored[:k]
                ]
            i += 1
            if query_time - i * t_eps <= tc:
                return [self._motion_prediction(recent, query_time)]

    def _motion_prediction(
        self, recent: Sequence[TimedPoint], query_time: int
    ) -> Prediction:
        window = list(recent)[-self.config.recent_window :]
        try:
            func = self.motion_factory()
            func.fit(window)
            return Prediction(location=func.predict(query_time), method="motion")
        except ValueError:
            pass
        if len(window) >= 2:
            try:
                linear = LinearMotionFunction()
                linear.fit(window)
                return Prediction(location=linear.predict(query_time), method="motion")
            except ValueError:
                pass
        return Prediction(location=window[-1].point, method="motion")

    def predict_trajectory(
        self, recent: Sequence[TimedPoint], t_from: int, t_to: int, step: int = 1
    ) -> list[tuple[int, Prediction]]:
        return [
            (t, self.predict(recent, t, k=1)[0])
            for t in range(t_from, t_to + 1, step)
        ]


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def build_model(
    subtrajectories: int, period: int, query_backend: str = "kernel"
) -> HybridPredictionModel:
    dataset = make_dataset("bike", subtrajectories, period, seed=0)
    config = HPMConfig(
        period=period,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=max(2, period // 5),
        recent_window=4,
        query_backend=query_backend,
    )
    model = HybridPredictionModel(config).fit(dataset.trajectory)
    assert model.predictor_ is not None, "dataset produced no patterns"
    return model


def clone_with_config(
    model: HybridPredictionModel, **overrides
) -> HybridPredictionModel:
    """A model sharing ``model``'s fitted state under a tweaked config.

    Mining is backend-independent, so a shared-state clone makes the
    backend A/B exact by construction: any divergence is the query path's.
    """
    clone = HybridPredictionModel(model.config.with_overrides(**overrides))
    clone._history = model._history
    clone._regions = model._regions
    clone._patterns = model._patterns
    clone._mining_stats = model._mining_stats
    clone._codec = model._codec
    clone._tree = model._tree
    clone._refresh_predictor()
    return clone


def build_windows(
    model: HybridPredictionModel, count: int
) -> list[list[TimedPoint]]:
    """Recent windows cut from the training trajectory at varied phases.

    Timestamps are aligned so sample offsets match the source positions
    (the history length is a multiple of the period).
    """
    positions = model.history_.positions
    width = model.config.recent_window
    windows = []
    for w in range(count):
        start = (w * 7) % (len(positions) - width)
        t0 = len(positions) + start
        windows.append(
            [
                TimedPoint(t0 + j, float(x), float(y))
                for j, (x, y) in enumerate(positions[start : start + width])
            ]
        )
    return windows


def build_fleet_windows(
    model: HybridPredictionModel, count: int
) -> dict[str, list[TimedPoint]]:
    """Per-object recent windows sharing one current time ``tc``.

    ``predict_all`` answers every object at a single query time, so all
    windows must end together; each object rides a different same-phase
    slice of the training history (timestamps stay offset-aligned because
    the history length is a multiple of the period).
    """
    positions = model.history_.positions
    period = model.config.period
    width = model.config.recent_window
    t0 = len(positions)  # offset 0, like the history's first row
    slices = (len(positions) - width) // period
    windows: dict[str, list[TimedPoint]] = {}
    for w in range(count):
        start = (w % slices) * period
        windows[f"obj{w:03d}"] = [
            TimedPoint(t0 + j, float(x), float(y))
            for j, (x, y) in enumerate(positions[start : start + width])
        ]
    return windows


def run_predict_all(fleet, recents, horizons, repeats: int):
    """Time ``predict_all`` over a horizon mix; fingerprint the first pass."""
    tc = next(iter(recents.values()))[-1].t
    latencies: list[float] = []
    chunks = []
    start = time.perf_counter()
    for r in range(repeats):
        for h in horizons:
            t1 = time.perf_counter()
            result = fleet.predict_all(recents, tc + h)
            latencies.append(time.perf_counter() - t1)
            if r == 0:
                chunks.append(sorted(result.items()))
    elapsed = time.perf_counter() - start
    return latencies, elapsed, fingerprint(chunks)


def single_query_workload(
    model: HybridPredictionModel, windows: list[list[TimedPoint]]
) -> list[tuple[list[TimedPoint], int]]:
    d = model.config.distant_threshold
    horizons = (1, 2, max(1, d - 1), d, d + 3, 2 * d + 1, 4 * d)
    return [(w, w[-1].t + h) for w in windows for h in horizons]


def fingerprint(chunks) -> str:
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(repr(chunk).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def run_single(engine_predict, workload, repeats: int):
    latencies: list[float] = []
    chunks = []
    start = time.perf_counter()
    for r in range(repeats):
        for recent, tq in workload:
            t1 = time.perf_counter()
            result = engine_predict(recent, tq, SINGLE_K)
            latencies.append(time.perf_counter() - t1)
            if r == 0:
                chunks.append(result)
    elapsed = time.perf_counter() - start
    return latencies, elapsed, fingerprint(chunks)


def run_sweeps(engine_sweep, windows, sweep_len: int, repeats: int):
    latencies: list[float] = []
    chunks = []
    start = time.perf_counter()
    for r in range(repeats):
        for recent in windows:
            tc = recent[-1].t
            t1 = time.perf_counter()
            result = engine_sweep(recent, tc + 1, tc + sweep_len)
            latencies.append(time.perf_counter() - t1)
            if r == 0:
                chunks.append(result)
    elapsed = time.perf_counter() - start
    return latencies, elapsed, fingerprint(chunks)


def summarize(latencies: list[float], elapsed: float, queries: int) -> dict:
    return {
        "p50_ms": round(statistics.median(latencies) * 1e3, 4),
        "p95_ms": round(
            statistics.quantiles(latencies, n=20)[-1] * 1e3
            if len(latencies) >= 20
            else max(latencies) * 1e3,
            4,
        ),
        "total_seconds": round(elapsed, 3),
        "qps": round(queries / elapsed, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subtrajectories", type=int, default=40)
    parser.add_argument("--period", type=int, default=96)
    parser.add_argument("--windows", type=int, default=24)
    parser.add_argument("--sweep-len", type=int, default=120)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--backend",
        choices=("legacy", "kernel"),
        default="legacy",
        help="legacy: PR 4 prepared-plan A/B; kernel: PR 9 score-kernel A/B",
    )
    parser.add_argument(
        "--objects",
        type=int,
        default=40,
        help="fleet size for the predict_all A/B (kernel backend only)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: small corpus, few windows, one repeat",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        args.subtrajectories, args.period = 10, 24
        args.windows, args.sweep_len, args.repeats = 6, 30, 1
        args.objects = 8
    if args.output is None:
        args.output = (
            "BENCH_predict_kernel.json"
            if args.backend == "kernel"
            else "BENCH_predict.json"
        )
    if args.backend == "kernel":
        return run_kernel_bench(args)
    return run_legacy_bench(args)


def run_legacy_bench(args) -> int:
    print(
        f"fitting model ({args.subtrajectories} sub-trajectories x "
        f"T={args.period}) ..."
    )
    # The PR 4 A/B measures the prepared *scan* path against the pre-PR-4
    # algorithm, unchanged by the kernel's arrival.
    model = build_model(args.subtrajectories, args.period, query_backend="scan")
    legacy = LegacyPredictor(model)
    windows = build_windows(model, args.windows)
    workload = single_query_workload(model, windows)

    print(
        f"single-query A/B: {len(workload)} queries x {args.repeats} repeats ..."
    )
    legacy_lat, legacy_s, legacy_fp = run_single(
        legacy.predict, workload, args.repeats
    )
    new_lat, new_s, new_fp = run_single(model.predict, workload, args.repeats)
    single = {
        "queries": len(workload) * args.repeats,
        "k": SINGLE_K,
        "legacy": summarize(legacy_lat, legacy_s, len(workload) * args.repeats),
        "prepared": summarize(new_lat, new_s, len(workload) * args.repeats),
        "speedup": round(legacy_s / new_s, 2) if new_s else 0.0,
        "identical_predictions": legacy_fp == new_fp,
        "fingerprint": new_fp,
    }
    print(
        f"  legacy {legacy_s:.2f}s vs prepared {new_s:.2f}s "
        f"-> {single['speedup']}x, identical={single['identical_predictions']}"
    )

    print(
        f"trajectory-sweep A/B: {len(windows)} sweeps of {args.sweep_len} steps "
        f"x {args.repeats} repeats ..."
    )
    legacy_lat, legacy_s, legacy_fp = run_sweeps(
        legacy.predict_trajectory, windows, args.sweep_len, args.repeats
    )
    new_lat, new_s, new_fp = run_sweeps(
        model.predict_trajectory, windows, args.sweep_len, args.repeats
    )
    sweeps = len(windows) * args.repeats
    sweep = {
        "sweeps": sweeps,
        "steps_per_sweep": args.sweep_len,
        "legacy": summarize(legacy_lat, legacy_s, sweeps * args.sweep_len),
        "prepared": summarize(new_lat, new_s, sweeps * args.sweep_len),
        "speedup": round(legacy_s / new_s, 2) if new_s else 0.0,
        "identical_predictions": legacy_fp == new_fp,
        "fingerprint": new_fp,
    }
    print(
        f"  legacy {legacy_s:.2f}s vs prepared {new_s:.2f}s "
        f"-> {sweep['speedup']}x, identical={sweep['identical_predictions']}"
    )

    report = {
        "benchmark": "predict",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "subtrajectories": args.subtrajectories,
        "period": args.period,
        "distant_threshold": model.config.distant_threshold,
        "num_patterns": len(model.patterns_),
        "windows": len(windows),
        "single_query": single,
        "trajectory_sweep": sweep,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    identical = single["identical_predictions"] and sweep["identical_predictions"]
    print(
        f"single {single['speedup']}x, sweep {sweep['speedup']}x; "
        f"byte-identical: {identical}; wrote {args.output}"
    )
    if not identical:
        print("FAIL: prepared path diverged from the legacy path", file=sys.stderr)
        return 1
    return 0


def run_kernel_bench(args) -> int:
    from repro.core.fleet import FleetPredictionModel

    print(
        f"fitting model ({args.subtrajectories} sub-trajectories x "
        f"T={args.period}) ..."
    )
    scan_model = build_model(args.subtrajectories, args.period, query_backend="scan")
    kernel_model = clone_with_config(scan_model, query_backend="kernel")
    windows = build_windows(scan_model, args.windows)
    workload = single_query_workload(scan_model, windows)
    fleet_windows = build_fleet_windows(scan_model, args.objects)
    d = scan_model.config.distant_threshold
    fleet_horizons = (1, 2, max(1, d - 1), d + 3)

    scan_fleet = FleetPredictionModel(scan_model.config)
    kernel_fleet = FleetPredictionModel(kernel_model.config)
    for object_id in fleet_windows:
        scan_fleet.adopt_object(object_id, scan_model)
        kernel_fleet.adopt_object(object_id, kernel_model)

    # Verification pass first — untimed, so a mismatch can never hide
    # behind a speedup headline.
    print("verifying kernel == scan fingerprints (untimed) ...")
    checks = {}
    _, _, scan_fp = run_single(scan_model.predict, workload, 1)
    _, _, kernel_fp = run_single(kernel_model.predict, workload, 1)
    checks["single_query"] = (scan_fp, kernel_fp)
    _, _, scan_fp = run_sweeps(
        scan_model.predict_trajectory, windows, args.sweep_len, 1
    )
    _, _, kernel_fp = run_sweeps(
        kernel_model.predict_trajectory, windows, args.sweep_len, 1
    )
    checks["trajectory_sweep"] = (scan_fp, kernel_fp)
    _, _, scan_fp = run_predict_all(scan_fleet, fleet_windows, fleet_horizons, 1)
    _, _, kernel_fp = run_predict_all(
        kernel_fleet, fleet_windows, fleet_horizons, 1
    )
    checks["predict_all"] = (scan_fp, kernel_fp)
    for mode, (want, got) in checks.items():
        if want != got:
            print(
                f"FAIL: kernel diverged from scan on {mode} "
                f"({got} != {want})",
                file=sys.stderr,
            )
            return 1
    print("  all modes byte-identical")

    def ab(mode, scan_run, kernel_run, queries):
        scan_lat, scan_s, _ = scan_run()
        kernel_lat, kernel_s, fp = kernel_run()
        result = {
            "scan": summarize(scan_lat, scan_s, queries),
            "kernel": summarize(kernel_lat, kernel_s, queries),
            "speedup": round(scan_s / kernel_s, 2) if kernel_s else 0.0,
            "identical_predictions": True,
            "fingerprint": fp,
        }
        print(
            f"  scan {scan_s:.2f}s vs kernel {kernel_s:.2f}s "
            f"-> {result['speedup']}x"
        )
        return result

    print(
        f"single-query A/B: {len(workload)} queries x {args.repeats} repeats ..."
    )
    queries = len(workload) * args.repeats
    single = {
        "queries": queries,
        "k": SINGLE_K,
        **ab(
            "single_query",
            lambda: run_single(scan_model.predict, workload, args.repeats),
            lambda: run_single(kernel_model.predict, workload, args.repeats),
            queries,
        ),
    }

    print(
        f"trajectory-sweep A/B: {len(windows)} sweeps of {args.sweep_len} steps "
        f"x {args.repeats} repeats ..."
    )
    sweeps = len(windows) * args.repeats
    sweep = {
        "sweeps": sweeps,
        "steps_per_sweep": args.sweep_len,
        **ab(
            "trajectory_sweep",
            lambda: run_sweeps(
                scan_model.predict_trajectory, windows, args.sweep_len, args.repeats
            ),
            lambda: run_sweeps(
                kernel_model.predict_trajectory,
                windows,
                args.sweep_len,
                args.repeats,
            ),
            sweeps * args.sweep_len,
        ),
    }

    print(
        f"predict_all A/B: {len(fleet_windows)} objects x "
        f"{len(fleet_horizons)} horizons x {args.repeats} repeats ..."
    )
    calls = len(fleet_horizons) * args.repeats
    predict_all = {
        "objects": len(fleet_windows),
        "horizons": list(fleet_horizons),
        **ab(
            "predict_all",
            lambda: run_predict_all(
                scan_fleet, fleet_windows, fleet_horizons, args.repeats
            ),
            lambda: run_predict_all(
                kernel_fleet, fleet_windows, fleet_horizons, args.repeats
            ),
            calls * len(fleet_windows),
        ),
    }

    report = {
        "benchmark": "predict_kernel",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "subtrajectories": args.subtrajectories,
        "period": args.period,
        "distant_threshold": d,
        "num_patterns": len(scan_model.patterns_),
        "windows": len(windows),
        "single_query": single,
        "trajectory_sweep": sweep,
        "predict_all": predict_all,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"single {single['speedup']}x, sweep {sweep['speedup']}x, "
        f"predict_all {predict_all['speedup']}x; byte-identical: True; "
        f"wrote {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
