"""Extended ablation — HPM vs every baseline tier.

Not a paper figure, but the natural completion of its evaluation: the
periodic-mean baseline shares HPM's core insight (periodicity) without
the rule machinery, so the HPM-vs-periodic-mean gap isolates what
frequent regions, confidences and premise similarity add; linear and
last-position bound the motion-only tiers from below.
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_baseline_comparison

from conftest import run_once


def scenarios():
    return ("bike", "cow", "car", "airplane") if full_sweeps_enabled() else ("cow", "car")


def test_baseline_comparison(benchmark, datasets, scale):
    def compute():
        rows = []
        for name in scenarios():
            rows.extend(
                run_baseline_comparison(
                    datasets[name], scale, prediction_lengths=[20, 100]
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    print(
        format_series(
            "Baseline comparison: mean error by predictor tier",
            ["dataset", "length", "HPM", "RMF", "linear", "poly", "periodic mean", "last pos"],
            [
                [
                    r["dataset"],
                    r["prediction_length"],
                    round(r["hpm"]),
                    round(r["rmf"]),
                    round(r["linear"]),
                    round(r["polynomial"]),
                    round(r["periodic_mean"]),
                    round(r["last_position"]),
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        # HPM must beat the motion-only tiers at the distant horizon.
        if r["prediction_length"] >= 100:
            assert r["hpm"] < r["rmf"]
            assert r["hpm"] < r["last_position"]
