"""Tables I-III — key-table construction and pattern-key encoding.

The paper's tables are worked examples over the Fig. 3 scenario; this
bench regenerates them from the library (same values as the unit tests
assert) and times the encoding path at corpus scale.
"""

import numpy as np
import pytest

from repro.core.keys import KeyCodec
from repro.evalx import format_series, synthesize_patterns, synthesize_regions


def test_tables_key_encoding(benchmark):
    rng = np.random.default_rng(0)
    regions = synthesize_regions(200, period=300, rng=rng)
    patterns = synthesize_patterns(regions, 5000, rng)
    codec = KeyCodec.from_patterns(regions, patterns)

    encoded = benchmark(lambda: [codec.encode_pattern(p) for p in patterns])
    assert len(encoded) == 5000

    # Regenerate the shape of Tables I-III on the first few entries.
    print(
        format_series(
            "Table I (first rows): region-key table",
            ["region", "id", "key (low 12 bits)"],
            [
                [label, rid, bits[-12:]]
                for label, rid, bits in codec.region_key_table()[:5]
            ],
        )
    )
    print(
        format_series(
            "Table II (first rows): consequence-key table",
            ["offset", "time id", "key (low 12 bits)"],
            [[t, tid, bits[-12:]] for t, tid, bits in codec.consequence_key_table()[:5]],
        )
    )
    print(
        format_series(
            "Table III (first rows): pattern keys",
            ["pattern", "key size (bits set)"],
            [[str(p), codec.encode_pattern(p).size()] for p in patterns[:5]],
        )
    )
