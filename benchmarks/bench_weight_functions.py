"""Ablation — premise weight functions (Section VI-A).

Paper claim: "According to our experiments, the linear and the quadratic
functions showed better prediction results among the weight functions."
This bench measures near-future (FQP-heavy) error under each family.
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_weight_functions

from conftest import run_once


def scenarios():
    return ("bike", "cow", "car", "airplane") if full_sweeps_enabled() else ("bike", "cow")


def test_weight_function_ablation(benchmark, datasets, scale):
    def compute():
        rows = []
        for name in scenarios():
            rows.extend(
                run_weight_functions(datasets[name], scale, prediction_length=30)
            )
        return rows

    rows = run_once(benchmark, compute)
    print(
        format_series(
            "Weight-function ablation (paper: linear/quadratic best)",
            ["dataset", "weight function", "HPM error"],
            [[r["dataset"], r["weight_function"], r["hpm_error"]] for r in rows],
        )
    )
    assert len(rows) == 4 * len(scenarios())
    assert all(r["hpm_error"] >= 0 for r in rows)
