"""Fig. 10 — Query Response Time.

Paper series: mean query response time vs the number of training
sub-trajectories (10..100), HPM vs RMF, averaged over 30 queries.
Expected shape: HPM's cost *falls* as more patterns are discovered ("a
less number of RMF calls from HPM since it is more likely for HPM to find
available patterns"); RMF's cost is flat (it always fits its SVD-based
recurrence per query).  Absolute milliseconds differ from the paper's
C++/P4 testbed — the shape is the reproduction target.
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_query_time

from conftest import run_once

SCENARIOS = ("bike", "cow", "car", "airplane")


def counts(scale):
    if full_sweeps_enabled():
        return [10, 20, 30, 40, 50, 60]
    return [5, 15, scale.training_subtrajectories]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig10_query_time(benchmark, scenario, datasets, scale):
    dataset = datasets[scenario]
    num_queries = 30 if full_sweeps_enabled() else 15
    rows = run_once(
        benchmark,
        lambda: run_query_time(
            dataset, counts(scale), scale, prediction_length=50,
            num_queries=num_queries,
        ),
    )
    print(
        format_series(
            f"Fig. 10 ({scenario}): query response time vs training sub-trajectories",
            ["subtrajectories", "HPM ms", "RMF ms", "motion fallbacks"],
            [
                [
                    r["num_subtrajectories"],
                    round(r["hpm_ms"], 3),
                    round(r["rmf_ms"], 3),
                    r["motion_fallbacks"],
                ]
                for r in rows
            ],
        )
    )
    # With a full training corpus, HPM answers from the TPT for most
    # queries (fallbacks rare on patterned data).
    if scenario != "airplane":
        assert rows[-1]["motion_fallbacks"] <= rows[0]["motion_fallbacks"] + 2
