"""Fig. 7 — Effect of Eps.

Paper series: (a) number of trajectory patterns and (b) average error vs
DBSCAN Eps (22..38), per dataset.  Expected shape: pattern counts grow
(dramatically for strongly patterned data) as Eps grows; once enough
patterns exist, extra patterns barely move accuracy (Bike), while weakly
patterned data (Airplane) stays inaccurate until Eps is large enough to
form regions at all.
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_eps

from conftest import run_once

SCENARIOS = ("bike", "cow", "car", "airplane")


def eps_values():
    if full_sweeps_enabled():
        return [22.0, 24.0, 26.0, 28.0, 30.0, 32.0, 34.0, 36.0, 38.0]
    return [22.0, 30.0, 38.0]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig07_eps(benchmark, scenario, datasets, scale):
    dataset = datasets[scenario]
    rows = run_once(benchmark, lambda: run_eps(dataset, eps_values(), scale))
    print(
        format_series(
            f"Fig. 7 ({scenario}): patterns and error vs Eps",
            ["eps", "patterns", "HPM error"],
            [[r["eps"], r["num_patterns"], r["hpm_error"]] for r in rows],
        )
    )
    # Fig. 7a's growth trend, with slack: a larger Eps can also *merge*
    # adjacent clusters into one region (slightly fewer patterns), so the
    # corpus must only not shrink materially end-to-end.
    assert rows[-1]["num_patterns"] >= 0.85 * rows[0]["num_patterns"]
