"""Comparator fairness — RMF retrospect tuning.

The paper tunes its comparator: "RMF parameters are set for the best
performance in terms of accuracy based on its experimental discussions."
This bench sweeps RMF's retrospect ``f`` on each dataset so the default
used by every other bench (f = 5) can be checked against the sweep — the
HPM-vs-RMF gaps reported elsewhere are not an artefact of a mis-tuned
baseline.
"""

import numpy as np
import pytest

from repro.evalx import (
    evaluate_motion_function,
    format_series,
    full_sweeps_enabled,
    generate_queries,
)
from repro.motion import RecursiveMotionFunction

from conftest import run_once


def scenarios():
    return ("bike", "cow", "car", "airplane") if full_sweeps_enabled() else ("bike", "car")


def test_rmf_retrospect_tuning(benchmark, datasets, scale):
    retrospects = [2, 3, 5, 7]
    prediction_length = 50

    def compute():
        rows = []
        for name in scenarios():
            dataset = datasets[name]
            workload = generate_queries(
                dataset,
                prediction_length=prediction_length,
                num_queries=scale.num_queries,
                num_training_subtrajectories=scale.training_subtrajectories,
                rng=np.random.default_rng(scale.seed),
            )
            for f in retrospects:
                result = evaluate_motion_function(
                    lambda f=f: RecursiveMotionFunction(retrospect=f),
                    workload,
                    name=f"rmf(f={f})",
                )
                rows.append(
                    {
                        "dataset": name,
                        "retrospect": f,
                        "rmf_error": result.mean_error,
                    }
                )
        return rows

    rows = run_once(benchmark, compute)
    print(
        format_series(
            "RMF retrospect tuning (other benches use f = 5)",
            ["dataset", "retrospect", "RMF error"],
            [[r["dataset"], r["retrospect"], r["rmf_error"]] for r in rows],
        )
    )
    # The default must be within 2x of the best retrospect per dataset —
    # i.e. the comparator elsewhere is not grossly mis-tuned.
    by_dataset: dict[str, list] = {}
    for r in rows:
        by_dataset.setdefault(r["dataset"], []).append(r)
    for series in by_dataset.values():
        best = min(r["rmf_error"] for r in series)
        default = next(r["rmf_error"] for r in series if r["retrospect"] == 5)
        assert default <= 2.0 * best + 1e-9
