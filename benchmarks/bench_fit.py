"""Fit-path A/B: vectorized training pipeline vs the pre-overhaul algorithm.

PR 5 rebuilt the training hot path on array/bitmap kernels — batched CSR
ε-neighbourhoods consumed by a level-synchronous DBSCAN, one-pass offset
grouping with array-sliced region assembly, and bulk pattern-key encoding —
all under the same byte-identity contract as the PR 4 query-path overhaul.
This bench holds the contract to account: a ``LegacyFit`` re-implements the
old pipeline exactly (Python-loop grid build, n per-point neighbourhood
probes, deque BFS, per-offset-group masking passes, ``from_points`` bbox
loops, per-pattern key encoding) and both engines fit the same generated
dataset end-to-end (datagen → fit); the fitted state — frequent regions,
mined patterns, key-table geometry and every TPT entry — is fingerprinted
with SHA-256 and must match bit for bit.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_fit.py           # full
    PYTHONPATH=src python benchmarks/bench_fit.py --smoke   # CI-sized

Writes ``BENCH_fit.json``: per-phase seconds (cluster / mine / index),
end-to-end speedup and the fingerprints.  Exits 1 if the fitted states
disagree on any byte.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
import time
from collections import defaultdict, deque
from pathlib import Path

import numpy as np

from repro import HPMConfig
from repro.core.keys import KeyCodec
from repro.core.model import HybridPredictionModel
from repro.core.patterns import TrajectoryPattern
from repro.core.regions import FrequentRegion, RegionSet
from repro.core.tpt import TrajectoryPatternTree
from repro.clustering.dbscan import NOISE, DBSCANResult
from repro.datagen import make_dataset
from repro.trajectory.point import BoundingBox, Point
from repro.trajectory.trajectory import Trajectory

_UNVISITED = -2


# ----------------------------------------------------------------------
# the legacy engine: the pre-PR-5 fit pipeline, verbatim
# ----------------------------------------------------------------------
class LegacyGridIndex:
    """The old grid: Python-loop cell build, one probe per query point."""

    __slots__ = ("_points", "_eps", "_cells")

    def __init__(self, points: np.ndarray, eps: float):
        self._points = np.asarray(points, dtype=np.float64)
        self._eps = float(eps)
        cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        for i, (x, y) in enumerate(self._points):
            cells[self._cell_of(x, y)].append(i)
        self._cells = dict(cells)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self._eps)), int(math.floor(y / self._eps)))

    def neighbors(self, index: int) -> np.ndarray:
        x, y = self._points[index]
        cx, cy = self._cell_of(float(x), float(y))
        candidates: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = self._cells.get((cx + dx, cy + dy))
                if bucket:
                    candidates.extend(bucket)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(candidates, dtype=np.int64)
        diffs = self._points[cand] - np.array([float(x), float(y)], dtype=np.float64)
        dist2 = np.einsum("ij,ij->i", diffs, diffs)
        return cand[dist2 <= self._eps * self._eps]


def legacy_dbscan(points: np.ndarray, eps: float, min_pts: int) -> DBSCANResult:
    """The old DBSCAN: n Python-level probes + a deque BFS per cluster."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    labels = np.full(n, _UNVISITED, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    if n == 0:
        return DBSCANResult(labels=labels, num_clusters=0, core_mask=core_mask)

    index = LegacyGridIndex(points, eps)
    neighborhoods = [index.neighbors(i) for i in range(n)]
    core_mask = np.array([len(nb) >= min_pts for nb in neighborhoods], dtype=bool)

    cluster_id = 0
    for seed in range(n):
        if labels[seed] != _UNVISITED:
            continue
        if not core_mask[seed]:
            labels[seed] = NOISE
            continue
        labels[seed] = cluster_id
        queue: deque[int] = deque(int(j) for j in neighborhoods[seed])
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster_id
            if labels[j] != _UNVISITED:
                continue
            labels[j] = cluster_id
            if core_mask[j]:
                queue.extend(int(k) for k in neighborhoods[j])
        cluster_id += 1

    labels[labels == _UNVISITED] = NOISE
    return DBSCANResult(labels=labels, num_clusters=cluster_id, core_mask=core_mask)


def legacy_discover_frequent_regions(
    trajectory: Trajectory, period: int, eps: float, min_pts: int
) -> RegionSet:
    """The old discovery loop: one masking pass and bbox loop per group."""
    regions: list[FrequentRegion] = []
    for group in trajectory.offset_groups(period):
        if len(group) == 0:
            continue
        result = legacy_dbscan(group.positions, eps=eps, min_pts=min_pts)
        for j in range(result.num_clusters):
            member_idx = result.members(j)
            points = group.positions[member_idx]
            centroid = points.mean(axis=0)
            regions.append(
                FrequentRegion(
                    offset=group.offset,
                    index=j,
                    center=Point(float(centroid[0]), float(centroid[1])),
                    points=points,
                    bbox=BoundingBox.from_points(
                        [(float(x), float(y)) for x, y in points]
                    ),
                    subtrajectory_ids=tuple(
                        int(s) for s in group.subtrajectory_ids[member_idx]
                    ),
                )
            )
    return RegionSet(regions, period=period, eps=eps)


def legacy_region_visit_masks(
    regions: RegionSet, num_subtrajectories: int
) -> dict[FrequentRegion, int]:
    masks: dict[FrequentRegion, int] = {}
    for region in regions:
        mask = 0
        for sub_id in set(region.subtrajectory_ids):
            if 0 <= sub_id < num_subtrajectories:
                mask |= 1 << sub_id
        masks[region] = mask
    return masks


def legacy_mine_trajectory_patterns(
    regions: RegionSet,
    num_subtrajectories: int,
    min_support: int,
    min_confidence: float,
    max_premise_length: int,
    max_premise_span: int,
    max_consequence_gap: int | None,
    far_premise_stride: int,
) -> list[TrajectoryPattern]:
    """The old miner: set-loop masks + validating pattern construction."""
    masks = legacy_region_visit_masks(regions, num_subtrajectories)
    frequent_items = [
        (region, mask)
        for region, mask in masks.items()
        if mask.bit_count() >= min_support
    ]
    frequent_items.sort(key=lambda rm: (rm[0].offset, rm[0].index))

    premises = [((region,), mask) for region, mask in frequent_items]
    all_premises = list(premises)
    for _level in range(2, max_premise_length + 1):
        extended = []
        for premise, mask in premises:
            first_offset = premise[0].offset
            last_offset = premise[-1].offset
            for region, region_mask in frequent_items:
                if region.offset <= last_offset:
                    continue
                if region.offset - first_offset > max_premise_span:
                    break
                joint = mask & region_mask
                if joint.bit_count() >= min_support:
                    extended.append((premise + (region,), joint))
        all_premises.extend(extended)
        premises = extended
        if not premises:
            break

    patterns: list[TrajectoryPattern] = []
    for premise, premise_mask in all_premises:
        premise_support = premise_mask.bit_count()
        last_offset = premise[-1].offset
        far_eligible = (
            len(premise) == 1 and premise[0].offset % far_premise_stride == 0
        )
        for region, region_mask in frequent_items:
            if region.offset <= last_offset:
                continue
            if (
                max_consequence_gap is not None
                and not far_eligible
                and region.offset - last_offset > max_consequence_gap
            ):
                break
            joint = premise_mask & region_mask
            support = joint.bit_count()
            if support < min_support:
                continue
            confidence = support / premise_support
            if confidence >= min_confidence:
                patterns.append(
                    TrajectoryPattern(
                        premise=premise,
                        consequence=region,
                        support=support,
                        confidence=confidence,
                    )
                )
    return patterns


def legacy_fit(trajectory: Trajectory, config: HPMConfig):
    """The full old pipeline; returns (regions, patterns, codec, tree, phases)."""
    phases: dict[str, float] = {}
    start = time.perf_counter()
    regions = legacy_discover_frequent_regions(
        trajectory, period=config.period, eps=config.eps, min_pts=config.min_pts
    )
    mine_start = time.perf_counter()
    phases["cluster"] = mine_start - start
    num_subs = (len(trajectory) + config.period - 1) // config.period
    patterns = legacy_mine_trajectory_patterns(
        regions,
        num_subtrajectories=num_subs,
        min_support=config.effective_min_support,
        min_confidence=config.min_confidence,
        max_premise_length=config.max_premise_length,
        max_premise_span=config.max_premise_span,
        max_consequence_gap=config.effective_max_consequence_gap,
        far_premise_stride=config.far_premise_stride,
    )
    index_start = time.perf_counter()
    phases["mine"] = index_start - mine_start
    codec = KeyCodec.from_patterns(regions, patterns)
    tree = TrajectoryPatternTree(
        codec,
        max_entries=config.tree_max_entries,
        min_entries=config.tree_min_entries,
    )
    # The old bulk_load_patterns: one PatternKey object per pattern.
    tree.bulk_load([(codec.encode_pattern(p).value, p) for p in patterns])
    phases["index"] = time.perf_counter() - index_start
    return regions, patterns, codec, tree, phases


# ----------------------------------------------------------------------
# fingerprints over the fitted state
# ----------------------------------------------------------------------
def _pattern_repr(p: TrajectoryPattern) -> tuple:
    return (
        tuple(r.label for r in p.premise),
        p.consequence.label,
        p.support,
        p.confidence.hex(),
    )


def fit_fingerprint(
    regions: RegionSet,
    patterns: list[TrajectoryPattern],
    codec: KeyCodec | None,
    tree: TrajectoryPatternTree | None,
) -> str:
    digest = hashlib.sha256()
    for r in regions:
        digest.update(
            repr(
                (
                    r.offset,
                    r.index,
                    r.center.x.hex(),
                    r.center.y.hex(),
                    r.points.shape,
                    r.points.dtype.str,
                    r.bbox.min_x.hex(),
                    r.bbox.min_y.hex(),
                    r.bbox.max_x.hex(),
                    r.bbox.max_y.hex(),
                    r.subtrajectory_ids,
                )
            ).encode()
        )
        digest.update(r.points.tobytes())
    for p in patterns:
        digest.update(repr(_pattern_repr(p)).encode())
    if codec is not None:
        digest.update(
            repr(
                (
                    codec.premise_length,
                    codec.consequence_length,
                    codec.consequence_offsets(),
                )
            ).encode()
        )
    if tree is not None:
        for entry in tree.all_entries():
            digest.update(
                repr((entry.signature, _pattern_repr(entry.payload))).encode()
            )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the A/B
# ----------------------------------------------------------------------
def build_config(period: int) -> HPMConfig:
    return HPMConfig(
        period=period,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=max(2, period // 5),
        recent_window=4,
    )


def run_legacy(subtrajectories: int, period: int, config: HPMConfig):
    start = time.perf_counter()
    dataset = make_dataset("bike", subtrajectories, period, seed=0)
    datagen_s = time.perf_counter() - start
    fit_start = time.perf_counter()
    regions, patterns, codec, tree, phases = legacy_fit(dataset.trajectory, config)
    fit_s = time.perf_counter() - fit_start
    fp = fit_fingerprint(regions, patterns, codec, tree)
    return datagen_s, fit_s, phases, fp, len(patterns)


def run_new(subtrajectories: int, period: int, config: HPMConfig):
    start = time.perf_counter()
    dataset = make_dataset("bike", subtrajectories, period, seed=0)
    datagen_s = time.perf_counter() - start
    fit_start = time.perf_counter()
    model = HybridPredictionModel(config).fit(dataset.trajectory)
    fit_s = time.perf_counter() - fit_start
    fp = fit_fingerprint(
        model.regions_, model.patterns_, model.codec_, model.tree_
    )
    return datagen_s, fit_s, model.fit_phase_seconds_, fp, model.pattern_count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subtrajectories", type=int, default=40)
    parser.add_argument("--period", type=int, default=300)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: small corpus, one repeat",
    )
    parser.add_argument("--output", default="BENCH_fit.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.subtrajectories, args.period, args.repeats = 10, 48, 1

    config = build_config(args.period)
    print(
        f"fit A/B: bike dataset, {args.subtrajectories} sub-trajectories x "
        f"T={args.period}, {args.repeats} repeat(s) ..."
    )

    legacy_runs, new_runs = [], []
    legacy_fp = new_fp = None
    legacy_phases: dict[str, float] = {}
    new_phases: dict[str, float] = {}
    num_patterns = 0
    for r in range(args.repeats):
        datagen_s, fit_s, phases, fp, num_patterns = run_legacy(
            args.subtrajectories, args.period, config
        )
        legacy_runs.append((datagen_s, fit_s))
        if r == 0:
            legacy_fp, legacy_phases = fp, phases
        print(f"  legacy  run {r + 1}: datagen {datagen_s:.2f}s fit {fit_s:.2f}s")
        datagen_s, fit_s, phases, fp, _ = run_new(
            args.subtrajectories, args.period, config
        )
        new_runs.append((datagen_s, fit_s))
        if r == 0:
            new_fp, new_phases = fp, phases
        print(f"  new     run {r + 1}: datagen {datagen_s:.2f}s fit {fit_s:.2f}s")

    legacy_fit_s = min(fit for _, fit in legacy_runs)
    new_fit_s = min(fit for _, fit in new_runs)
    legacy_e2e_s = min(dg + fit for dg, fit in legacy_runs)
    new_e2e_s = min(dg + fit for dg, fit in new_runs)
    identical = legacy_fp == new_fp

    report = {
        "benchmark": "fit",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "subtrajectories": args.subtrajectories,
        "period": args.period,
        "num_patterns": num_patterns,
        "repeats": args.repeats,
        "legacy": {
            "fit_seconds": round(legacy_fit_s, 3),
            "end_to_end_seconds": round(legacy_e2e_s, 3),
            "phases": {k: round(v, 3) for k, v in legacy_phases.items()},
        },
        "new": {
            "fit_seconds": round(new_fit_s, 3),
            "end_to_end_seconds": round(new_e2e_s, 3),
            "phases": {k: round(v, 3) for k, v in new_phases.items()},
        },
        "fit_speedup": round(legacy_fit_s / new_fit_s, 2) if new_fit_s else 0.0,
        "end_to_end_speedup": (
            round(legacy_e2e_s / new_e2e_s, 2) if new_e2e_s else 0.0
        ),
        "identical_fit": identical,
        "fingerprint": new_fp,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"fit {report['fit_speedup']}x, end-to-end "
        f"{report['end_to_end_speedup']}x; byte-identical: {identical}; "
        f"wrote {args.output}"
    )
    print(
        "  phases (legacy -> new): "
        + ", ".join(
            f"{k} {legacy_phases.get(k, 0.0):.2f}s -> {new_phases.get(k, 0.0):.2f}s"
            for k in ("cluster", "mine", "index")
        )
    )
    if not identical:
        print("FAIL: new fit path diverged from the legacy path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
