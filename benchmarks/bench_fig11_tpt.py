"""Fig. 11 — Performance of TPT.

Paper series:
  (a) storage consumption (MB) vs number of patterns (1k..100k) for
      80/400/800 frequent regions — storage grows with both, since the
      pattern-key width is the number of frequent regions;
  (b) search cost vs number of patterns, TPT vs brute force — TPT stays
      near-constant while brute force grows linearly.

The corpus is synthetic (random patterns over a synthetic region
universe), exactly as an index-scaling experiment should be.
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_tpt_scaling

from conftest import run_once


def grids():
    if full_sweeps_enabled():
        return [1000, 5000, 10000, 50000, 100000], [80, 400, 800]
    return [1000, 5000, 10000], [80, 400]


def test_fig11_tpt_storage_and_search(benchmark):
    pattern_counts, region_counts = grids()
    rows = run_once(
        benchmark,
        lambda: run_tpt_scaling(pattern_counts, region_counts, num_queries=100),
    )
    print(
        format_series(
            "Fig. 11a/11b: TPT storage and search cost vs corpus size",
            ["regions", "patterns", "storage MB", "TPT ms", "brute ms", "height"],
            [
                [
                    r["num_regions"],
                    r["num_patterns"],
                    round(r["storage_mb"], 3),
                    round(r["tpt_ms"], 3),
                    round(r["brute_ms"], 3),
                    r["tree_height"],
                ]
                for r in rows
            ],
        )
    )
    by_regions: dict[int, list[dict]] = {}
    for r in rows:
        by_regions.setdefault(r["num_regions"], []).append(r)
    for series in by_regions.values():
        series.sort(key=lambda r: r["num_patterns"])
        # Fig. 11a: storage grows with the pattern count.
        sizes = [r["storage_mb"] for r in series]
        assert sizes == sorted(sizes)
        # Fig. 11b: brute force degrades with corpus size much faster than
        # TPT (paper: "query response times of TPT remain almost constant
        # while those of the brute-force method increase tremendously").
        brute_growth = series[-1]["brute_ms"] / max(series[0]["brute_ms"], 1e-9)
        tpt_growth = series[-1]["tpt_ms"] / max(series[0]["tpt_ms"], 1e-9)
        assert brute_growth > tpt_growth
    # Fig. 11a: wider keys (more frequent regions) cost more storage at the
    # same pattern count.
    region_keys = sorted(by_regions)
    for small_r, large_r in zip(region_keys, region_keys[1:]):
        small = {r["num_patterns"]: r["storage_mb"] for r in by_regions[small_r]}
        large = {r["num_patterns"]: r["storage_mb"] for r in by_regions[large_r]}
        for n in small:
            assert large[n] > small[n]
