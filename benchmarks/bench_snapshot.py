"""Snapshot format A/B: v1 npz-per-object vs v2 packed columnar blocks.

The cold-start path is the last unvectorised hot path: a shard worker
that restarts (SIGKILL -> backoff -> reload its ring slice) and a
``PredictionService.from_snapshot`` boot both pay decompression,
per-row Python reconstruction, and a full lazy ``ScoreKernel.build``
before the first prediction.  Format v2 (``repro.core.snapshot2``)
stores packed columnar blocks plus the serialised TPT structure and
kernel tables, so a loader maps the blocks and replays structure
instead of re-deriving it.

Methodology: one fleet is fitted once and saved in both formats.
Every timing probe runs in a **fresh subprocess** (cold imports, cold
page cache for the process, honest ``ru_maxrss``) and measures, inside
the process, wall-clock for ``load_fleet`` and for the first prediction
on every object.  The restart drill splits both snapshots into shards
and times a single shard worker's slice load + first prediction — the
exact recovery path of ``repro.serve.shard``.  Before any timing, the
state + prediction SHA-256 fingerprints of v1, v2-mmap, and
v2-materialised loads are checked against the fitted fleet; any
divergence fails the run.

Non-smoke runs fail unless the v2 mmap cold start (load + first
prediction) is at least ``SPEEDUP_GATE``x faster than v1's.

    PYTHONPATH=src python benchmarks/bench_snapshot.py            # full, writes BENCH_snapshot.json
    PYTHONPATH=src python benchmarks/bench_snapshot.py --smoke    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SPEEDUP_GATE = 3.0
PROBE_WINDOW = 3


# ----------------------------------------------------------------------
# probe mode: runs in a fresh subprocess per measurement
# ----------------------------------------------------------------------
def first_predict_all(fleet) -> None:
    import numpy as np

    from repro import TimedPoint

    for object_id in fleet.object_ids():
        model = fleet[object_id]
        positions = np.asarray(model.history_.positions)
        start_time = model.history_.start_time
        recent = [
            TimedPoint(
                t=start_time + j,
                x=float(positions[j, 0]),
                y=float(positions[j, 1]),
            )
            for j in range(PROBE_WINDOW)
        ]
        model.predict(recent, start_time + PROBE_WINDOW + 2)


def run_probe(args) -> int:
    from repro.core.persistence import load_fleet
    from repro.serve.shard import load_shard_fleet

    t0 = time.perf_counter()
    if args.shard is not None:
        shard_id, num_shards = args.shard
        fleet = load_shard_fleet(
            args.probe, shard_id, num_shards, mmap=args.mmap
        )
    else:
        fleet = load_fleet(args.probe, mmap=args.mmap)
    t1 = time.perf_counter()
    first_predict_all(fleet)
    t2 = time.perf_counter()
    print(
        json.dumps(
            {
                "objects": len(fleet),
                "load_seconds": t1 - t0,
                "first_predict_seconds": t2 - t1,
                "total_seconds": t2 - t0,
                "rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                / 1024.0,
            }
        )
    )
    return 0


def probe(
    snapshot: Path,
    mmap: bool,
    shard: tuple[int, int] | None = None,
    repeats: int = 3,
) -> dict:
    """Best-of-N cold measurements, each in a fresh interpreter."""
    command = [sys.executable, __file__, "--probe", str(snapshot)]
    if not mmap:
        command.append("--no-mmap")
    if shard is not None:
        command += ["--shard", str(shard[0]), str(shard[1])]
    runs = []
    for _ in range(repeats):
        out = subprocess.run(
            command, capture_output=True, text=True, check=True
        )
        runs.append(json.loads(out.stdout))
    best = min(runs, key=lambda r: r["total_seconds"])
    best["repeats"] = repeats
    return best


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def fleet_fingerprints(fleet) -> list[tuple[str, str, str]]:
    import numpy as np

    from repro import TimedPoint
    from repro.core.fingerprint import (
        model_fingerprint,
        prediction_fingerprint,
    )

    out = []
    for object_id in fleet.object_ids():
        model = fleet[object_id]
        positions = np.asarray(model.history_.positions)
        start_time = model.history_.start_time
        queries = []
        for start in (0, positions.shape[0] // 3):
            recent = [
                TimedPoint(
                    t=start_time + start + j,
                    x=float(positions[start + j, 0]),
                    y=float(positions[start + j, 1]),
                )
                for j in range(PROBE_WINDOW)
            ]
            queries.append((recent, start_time + start + PROBE_WINDOW + 2))
            queries.append((recent, start_time + start + PROBE_WINDOW + 9))
        out.append(
            (
                object_id,
                model_fingerprint(model),
                prediction_fingerprint(model, queries),
            )
        )
    return out


def directory_bytes(directory: Path) -> int:
    return sum(p.stat().st_size for p in directory.rglob("*") if p.is_file())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--objects", type=int, default=16)
    parser.add_argument("--subtrajectories", type=int, default=64)
    parser.add_argument("--period", type=int, default=96)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--output", default="BENCH_snapshot.json")
    parser.add_argument("--probe", help=argparse.SUPPRESS)
    parser.add_argument(
        "--no-mmap", dest="mmap", action="store_false", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--shard", nargs=2, type=int, default=None, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)
    if args.probe:
        return run_probe(args)

    if args.smoke:
        args.objects = min(args.objects, 4)
        args.subtrajectories = min(args.subtrajectories, 24)
        args.shards = min(args.shards, 2)
        args.repeats = 1

    from bench_fleet_fit import build_histories, fit_config

    from repro import FleetPredictionModel
    from repro.core.persistence import load_fleet, save_fleet
    from repro.serve.shard import split_snapshot

    config = fit_config(args.period)
    print(
        f"fitting {args.objects} objects x {args.subtrajectories} "
        f"sub-trajectories ..."
    )
    fleet = FleetPredictionModel(config)
    fleet.fit(
        build_histories(args.objects, args.subtrajectories, args.period),
        max_workers=args.workers,
        executor="process",
    )

    workdir = Path(tempfile.mkdtemp(prefix="bench_snapshot_"))
    try:
        v1_dir, v2_dir = workdir / "v1", workdir / "v2"
        t0 = time.perf_counter()
        save_fleet(fleet, v1_dir, format=1, max_workers=args.workers)
        save_v1 = time.perf_counter() - t0
        t0 = time.perf_counter()
        save_fleet(fleet, v2_dir, format=2, max_workers=args.workers)
        save_v2 = time.perf_counter() - t0

        print("checking fingerprint identity v1 / v2-mmap / v2-mat ...")
        reference = fleet_fingerprints(fleet)
        identical = (
            fleet_fingerprints(load_fleet(v1_dir)) == reference
            and fleet_fingerprints(load_fleet(v2_dir, mmap=True)) == reference
            and fleet_fingerprints(load_fleet(v2_dir, mmap=False)) == reference
        )
        if not identical:
            print("FAIL: fingerprints diverge across formats", file=sys.stderr)
            return 1

        print("cold-start probes (fresh subprocess each) ...")
        cold = {
            "v1": probe(v1_dir, mmap=True, repeats=args.repeats),
            "v2_mmap": probe(v2_dir, mmap=True, repeats=args.repeats),
            "v2_materialized": probe(
                v2_dir, mmap=False, repeats=args.repeats
            ),
        }

        print("shard-restart drill (slice reload after worker kill) ...")
        v1_sharded, v2_sharded = workdir / "v1_sharded", workdir / "v2_sharded"
        placement = split_snapshot(v1_dir, v1_sharded, args.shards)
        split_snapshot(v2_dir, v2_sharded, args.shards)
        # Probe the busiest shard — an empty slice would time nothing.
        victim = max(placement, key=lambda s: len(placement[s]))
        restart = {
            "shard_objects": len(placement[victim]),
            "v1": probe(
                v1_sharded, mmap=True, shard=(victim, args.shards),
                repeats=args.repeats,
            ),
            "v2_mmap": probe(
                v2_sharded, mmap=True, shard=(victim, args.shards),
                repeats=args.repeats,
            ),
        }

        speedup_cold = (
            cold["v1"]["total_seconds"] / cold["v2_mmap"]["total_seconds"]
        )
        speedup_restart = (
            restart["v1"]["total_seconds"]
            / restart["v2_mmap"]["total_seconds"]
        )
        report = {
            "benchmark": "snapshot",
            "smoke": args.smoke,
            "params": {
                "objects": args.objects,
                "subtrajectories": args.subtrajectories,
                "period": args.period,
                "shards": args.shards,
                "repeats": args.repeats,
            },
            "save_seconds": {"v1": save_v1, "v2": save_v2},
            "snapshot_bytes": {
                "v1": directory_bytes(v1_dir),
                "v2": directory_bytes(v2_dir),
            },
            "cold_start": cold,
            "restart_recovery": restart,
            "cold_start_speedup_mmap": speedup_cold,
            "restart_recovery_speedup_mmap": speedup_restart,
            "fingerprints_identical": identical,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(
        f"\ncold start: v1 {cold['v1']['total_seconds']:.2f}s -> "
        f"v2 mmap {cold['v2_mmap']['total_seconds']:.2f}s "
        f"({speedup_cold:.2f}x); restart: {restart['v1']['total_seconds']:.2f}s"
        f" -> {restart['v2_mmap']['total_seconds']:.2f}s "
        f"({speedup_restart:.2f}x)"
    )
    if not args.smoke and speedup_cold < SPEEDUP_GATE:
        print(
            f"FAIL: v2 mmap cold start {speedup_cold:.2f}x < "
            f"{SPEEDUP_GATE}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
