"""Ablation — the Section IV pruning effect.

Paper claim: "According to our experiments, 58% of trajectory patterns
were reduced by the pruning effect."  This bench compares the pruned
miner's corpus to the rule count a textbook Apriori generator would emit
over the same itemset universe (all premise/consequence bipartitions,
multi-item consequences included).
"""

import pytest

from repro.evalx import format_series, run_pruning_ablation

from conftest import run_once

SCENARIOS = ("bike", "cow", "car", "airplane")


def test_pruning_ablation(benchmark, datasets, scale):
    rows = run_once(
        benchmark,
        lambda: [
            run_pruning_ablation(datasets[name], scale) for name in SCENARIOS
        ],
    )
    print(
        format_series(
            "Pruning ablation (paper: 58% of patterns removed by pruning)",
            ["dataset", "pruned", "unpruned", "reduction %"],
            [
                [
                    r["dataset"],
                    r["pruned_patterns"],
                    r["unpruned_rules"],
                    round(r["reduction_pct"], 1),
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        if r["unpruned_rules"] == 0:
            continue
        # Pruning must remove a substantial share of rules (the paper
        # reports 58%; anything in the 30-80% band matches the mechanism).
        assert r["reduction_pct"] >= 30.0
