"""Extension — best-of-k accuracy.

The paper's query processor returns the top-k consequence centers
("k is given by user") but its evaluation only measures k = 1.  This
bench sweeps k over deduplicated candidate locations.  Finding: error@k
is nearly flat — the residual error comes from off-pattern days no
stored pattern covers, so top-1 already extracts most of the corpus's
value (a useful negative result for anyone tempted to tune k).
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_top_k

from conftest import run_once


def scenarios():
    return ("bike", "cow", "car", "airplane") if full_sweeps_enabled() else ("cow", "airplane")


def test_top_k_accuracy(benchmark, datasets, scale):
    ks = [1, 2, 3, 5]

    def compute():
        rows = []
        for name in scenarios():
            rows.extend(run_top_k(datasets[name], ks, scale, prediction_length=100))
        return rows

    rows = run_once(benchmark, compute)
    print(
        format_series(
            "Best-of-k error at prediction length 100",
            ["dataset", "k", "error@k"],
            [[r["dataset"], r["k"], r["error_at_k"]] for r in rows],
        )
    )
    # Error@k is monotone non-increasing in k per dataset.
    by_dataset: dict[str, list] = {}
    for r in rows:
        by_dataset.setdefault(r["dataset"], []).append(r)
    for series in by_dataset.values():
        series.sort(key=lambda r: r["k"])
        errors = [r["error_at_k"] for r in series]
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))
