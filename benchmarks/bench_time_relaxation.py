"""Ablation — time relaxation length t_eps (Section VI-C).

Paper claim: "Through our experiments, the best prediction accuracy
regarding to the time relaxation length t_eps was observed when
1 <= t_eps <= 3."  This bench sweeps t_eps on distant-time (BQP) queries.
"""

import pytest

from repro.evalx import format_series, full_sweeps_enabled, run_time_relaxation

from conftest import run_once


def scenarios():
    return ("bike", "cow", "car", "airplane") if full_sweeps_enabled() else ("cow",)


def test_time_relaxation_ablation(benchmark, datasets, scale):
    relaxations = [1, 2, 3, 5, 8]

    def compute():
        rows = []
        for name in scenarios():
            rows.extend(
                run_time_relaxation(
                    datasets[name], scale, relaxations, prediction_length=100
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    print(
        format_series(
            "Time-relaxation ablation (paper: best at 1 <= t_eps <= 3)",
            ["dataset", "t_eps", "HPM error"],
            [[r["dataset"], r["time_relaxation"], r["hpm_error"]] for r in rows],
        )
    )
    assert len(rows) == len(relaxations) * len(scenarios())
