"""Extension — offline fleet training: serial vs process-parallel fit.

The paper fits one object; a deployment fits thousands, and each fit
(DBSCAN over every offset group plus the rule lattice) is independent
pure-Python work — embarrassingly parallel.  This bench builds a
synthetic fleet from ``repro.datagen`` (the paper's four scenarios,
round-robin, one seed per object), fits it twice — serially and with a
``ProcessPoolExecutor`` — and A/Bs wall-clock time while proving the
two fleets answer every probe query byte-identically.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_fleet_fit.py            # 64 objects, 4 workers
    PYTHONPATH=src python benchmarks/bench_fleet_fit.py --smoke    # CI-sized

Writes ``BENCH_fleet_fit.json``: sizes, wall-clock per mode, speedup,
prediction fingerprints, and the host's CPU budget (the speedup is
bounded by physical cores — a single-core host reports ~1x and that is
the honest number).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro import FleetPredictionModel, HPMConfig, TimedPoint
from repro.datagen import SCENARIO_NAMES, make_dataset

PROBE_HORIZONS = (1, 5, 17)
PROBE_WINDOW = 3


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_histories(num_objects: int, subtrajectories: int, period: int) -> dict:
    histories = {}
    for i in range(num_objects):
        scenario = SCENARIO_NAMES[i % len(SCENARIO_NAMES)]
        dataset = make_dataset(scenario, subtrajectories, period, seed=i)
        histories[f"obj{i:03d}"] = dataset.trajectory
    return histories


def fit_config(period: int) -> HPMConfig:
    return HPMConfig(
        period=period,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=max(1, period // 5),
        recent_window=PROBE_WINDOW + 1,
    )


def timed_fit(config, histories, **fit_kwargs) -> tuple[FleetPredictionModel, float]:
    fleet = FleetPredictionModel(config)
    start = time.perf_counter()
    fleet.fit(histories, **fit_kwargs)
    return fleet, time.perf_counter() - start


def fingerprint(fleet: FleetPredictionModel, histories: dict, period: int) -> str:
    """SHA-256 over the exact repr of every probe prediction."""
    digest = hashlib.sha256()
    for object_id in fleet.object_ids():
        positions = histories[object_id].positions
        t0 = 10 * period
        recent = [
            TimedPoint(t0 + j, float(x), float(y))
            for j, (x, y) in enumerate(positions[:PROBE_WINDOW])
        ]
        for horizon in PROBE_HORIZONS:
            predictions = fleet.predict(
                object_id, recent, t0 + PROBE_WINDOW + horizon, k=3
            )
            digest.update(f"{object_id}:{horizon}:{predictions!r}\n".encode())
    return digest.hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--subtrajectories", type=int, default=30)
    parser.add_argument("--period", type=int, default=96)
    parser.add_argument(
        "--executor", choices=["process", "thread"], default="process"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 8 objects, 2 workers (still exercises the pool)",
    )
    parser.add_argument("--output", default="BENCH_fleet_fit.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.objects, args.workers = 8, 2
        args.subtrajectories, args.period = 8, 24

    config = fit_config(args.period)
    print(
        f"building {args.objects}-object fleet "
        f"({args.subtrajectories} sub-trajectories x T={args.period}) ..."
    )
    histories = build_histories(args.objects, args.subtrajectories, args.period)

    print("serial fit ...")
    serial_fleet, serial_seconds = timed_fit(config, histories)
    print(f"  {serial_seconds:.2f}s")
    print(f"{args.executor}-parallel fit ({args.workers} workers) ...")
    parallel_fleet, parallel_seconds = timed_fit(
        config, histories, max_workers=args.workers, executor=args.executor
    )
    print(f"  {parallel_seconds:.2f}s")

    serial_fp = fingerprint(serial_fleet, histories, args.period)
    parallel_fp = fingerprint(parallel_fleet, histories, args.period)
    identical = serial_fp == parallel_fp
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0

    report = {
        "benchmark": "fleet_fit",
        "objects": args.objects,
        "subtrajectories": args.subtrajectories,
        "period": args.period,
        "workers": args.workers,
        "executor": args.executor,
        "smoke": args.smoke,
        "cpus": available_cpus(),
        "python": sys.version.split()[0],
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 2),
        "identical_predictions": identical,
        "fingerprint": serial_fp,
        "total_patterns": serial_fleet.total_patterns(),
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"speedup {speedup:.2f}x on {report['cpus']} CPU(s); "
        f"predictions byte-identical: {identical}; wrote {args.output}"
    )
    if not identical:
        print("FAIL: parallel fit diverged from serial fit", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
