"""Sustained-ingest refit benchmark: delta vs full re-mine.

Simulates the paper's dynamic-data path under write traffic: a model is
fitted on a seed history, then successive rounds of new fixes are folded
in with ``HybridPredictionModel.update``.  Two engines run the same
ingest schedule —

* **delta** — ``refit="delta"``: re-cluster only dirty offsets, re-score
  only rules touching changed regions, patch the TPT in place;
* **full** — ``refit="full"``: the legacy whole-history re-mine.

After every round *both* engines are checked against a fit-from-scratch
oracle over the concatenated history via SHA-256 fitted-state
fingerprints (same methodology as BENCH_fit.json; tree entries are
compared in canonical order since a patched tree packs nodes differently
from a bulk load — see ``repro.core.fingerprint``).  A final prediction
fingerprint over a query grid checks end-to-end answers.

The committed report (BENCH_refit.json) records per-round refit latency
percentiles (p50/p95/p99), sustained fixes/sec, and the delta-vs-full
speedup over the late rounds, where the accumulated history makes the
full re-mine most expensive.  Non-smoke runs fail if delta is not at
least 3x faster than full at >= 10 accumulated rounds, or if any
fingerprint diverges.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import HPMConfig
from repro.core.fingerprint import model_fingerprint, prediction_fingerprint
from repro.core.model import HybridPredictionModel
from repro.datagen import make_dataset
from repro.trajectory.point import TimedPoint
from repro.trajectory.trajectory import Trajectory

# Speedup gate for non-smoke runs, measured over rounds >= GATE_AFTER.
SPEEDUP_GATE = 3.0
GATE_AFTER = 10


def build_config(period: int) -> HPMConfig:
    # Same shape as bench_fit's config so the corpora are comparable.
    return HPMConfig(
        period=period,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=max(2, period // 5),
        recent_window=4,
    )


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def latency_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "rounds": len(latencies),
        "p50_ms": round(percentile(ordered, 0.50) * 1000, 3),
        "p95_ms": round(percentile(ordered, 0.95) * 1000, 3),
        "p99_ms": round(percentile(ordered, 0.99) * 1000, 3),
        "total_seconds": round(sum(latencies), 3),
    }


def query_grid(positions, config: HPMConfig, n_windows: int = 8):
    """(recent, query_time) pairs spread over the history for the e2e check."""
    window = config.recent_window
    n = positions.shape[0]
    queries = []
    for w in range(n_windows):
        start = (w * (n - window - 1)) // n_windows
        recent = [
            TimedPoint(n + t, float(positions[start + t, 0]), float(positions[start + t, 1]))
            for t in range(window)
        ]
        t_now = recent[-1].t
        for horizon in (1, config.distant_threshold // 2, config.distant_threshold + 5):
            queries.append((recent, t_now + max(1, horizon)))
    return queries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed-subtrajectories", type=int, default=20)
    parser.add_argument("--period", type=int, default=300)
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--chunk", type=int, default=30,
                        help="fixes ingested per round")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small corpus, few rounds")
    parser.add_argument("--output", default="BENCH_refit.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.seed_subtrajectories, args.period = 10, 48
        args.rounds, args.chunk = 6, 12

    config = build_config(args.period)
    extra_rows = args.rounds * args.chunk
    total_subs = args.seed_subtrajectories + (
        (extra_rows + args.period - 1) // args.period
    )
    dataset = make_dataset("bike", total_subs, args.period, seed=0)
    positions = dataset.trajectory.positions
    seed_rows = args.seed_subtrajectories * args.period
    if seed_rows + extra_rows > positions.shape[0]:
        raise SystemExit("dataset too small for the requested schedule")

    print(
        f"refit A/B: bike dataset, seed {args.seed_subtrajectories} subs x "
        f"T={args.period}, {args.rounds} rounds x {args.chunk} fixes ..."
    )
    seed = Trajectory(positions[:seed_rows].copy(), 0)
    engines = {
        "delta": HybridPredictionModel(config).fit(seed),
        "full": HybridPredictionModel(config).fit(seed),
    }
    latencies: dict[str, list[float]] = {"delta": [], "full": []}
    index_outcomes: dict[str, dict[str, int]] = {"delta": {}, "full": {}}
    divergences: list[str] = []

    for round_no in range(1, args.rounds + 1):
        lo = seed_rows + (round_no - 1) * args.chunk
        hi = lo + args.chunk
        chunk = positions[lo:hi]
        for mode, model in engines.items():
            start = time.perf_counter()
            model.update(chunk, refit=mode)
            latencies[mode].append(time.perf_counter() - start)
            stats = model.last_refit_stats_
            outcomes = index_outcomes[mode]
            outcomes[stats.index] = outcomes.get(stats.index, 0) + 1
        # Oracle: fit-from-scratch over the concatenated history.
        oracle = HybridPredictionModel(config).fit(
            Trajectory(positions[:hi].copy(), 0)
        )
        oracle_fp = model_fingerprint(oracle)
        for mode, model in engines.items():
            fp = model_fingerprint(model)
            if fp != oracle_fp:
                divergences.append(f"round {round_no}: {mode} != scratch")
        print(
            f"  round {round_no:>2}: delta {latencies['delta'][-1] * 1000:7.1f}ms  "
            f"full {latencies['full'][-1] * 1000:7.1f}ms  "
            f"(oracle {'ok' if not divergences else 'DIVERGED'})"
        )

    queries = query_grid(positions[: seed_rows + extra_rows], config)
    oracle = HybridPredictionModel(config).fit(
        Trajectory(positions[: seed_rows + extra_rows].copy(), 0)
    )
    oracle_pred_fp = prediction_fingerprint(oracle, queries)
    prediction_identical = True
    for mode, model in engines.items():
        if prediction_fingerprint(model, queries) != oracle_pred_fp:
            prediction_identical = False
            divergences.append(f"final predictions: {mode} != scratch")

    late = slice(GATE_AFTER - 1, None) if args.rounds >= GATE_AFTER else slice(None)
    delta_late = latencies["delta"][late]
    full_late = latencies["full"][late]
    speedup_late = (
        (sum(full_late) / len(full_late)) / (sum(delta_late) / len(delta_late))
        if delta_late and sum(delta_late) > 0
        else 0.0
    )
    identical = not divergences

    report = {
        "benchmark": "refit",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "period": args.period,
        "seed_subtrajectories": args.seed_subtrajectories,
        "rounds": args.rounds,
        "chunk": args.chunk,
        "delta": {
            **latency_summary(latencies["delta"]),
            "fixes_per_second": round(
                extra_rows / sum(latencies["delta"]), 1
            ),
            "index_outcomes": index_outcomes["delta"],
        },
        "full": {
            **latency_summary(latencies["full"]),
            "fixes_per_second": round(
                extra_rows / sum(latencies["full"]), 1
            ),
            "index_outcomes": index_outcomes["full"],
        },
        "speedup_late_rounds": round(speedup_late, 2),
        "speedup_measured_from_round": (
            GATE_AFTER if args.rounds >= GATE_AFTER else 1
        ),
        "identical_state": identical,
        "identical_predictions": prediction_identical,
        "divergences": divergences,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"delta p50 {report['delta']['p50_ms']}ms vs full p50 "
        f"{report['full']['p50_ms']}ms; late-round speedup "
        f"{report['speedup_late_rounds']}x; identical: {identical}; "
        f"wrote {args.output}"
    )
    if not identical:
        print("FAIL: incremental refit diverged from fit-from-scratch",
              file=sys.stderr)
        return 1
    if not args.smoke and args.rounds >= GATE_AFTER and speedup_late < SPEEDUP_GATE:
        print(
            f"FAIL: delta refit only {speedup_late:.2f}x faster than full "
            f"re-mine over rounds >= {GATE_AFTER} (gate {SPEEDUP_GATE}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
