"""Tests for the generic signature tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signature import SignatureTree, bitset


def build(signatures, max_entries=4):
    tree = SignatureTree(max_entries=max_entries)
    for i, sig in enumerate(signatures):
        tree.insert(sig, i)
    return tree


class TestConstruction:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            SignatureTree(max_entries=3)
        with pytest.raises(ValueError):
            SignatureTree(max_entries=8, min_entries=1)
        with pytest.raises(ValueError):
            SignatureTree(max_entries=8, min_entries=5)

    def test_negative_signature_rejected(self):
        with pytest.raises(ValueError):
            SignatureTree().insert(-1, "x")

    def test_empty_tree(self):
        tree = SignatureTree()
        assert len(tree) == 0
        assert tree.search_intersecting(0b1) == []
        tree.validate()


class TestInsertAndSearch:
    def test_small_insert(self):
        tree = build([0b001, 0b010, 0b100])
        assert len(tree) == 3
        hits = tree.search_intersecting(0b001)
        assert [e.payload for e in hits] == [0]

    def test_growth_through_splits(self):
        rng = np.random.default_rng(0)
        sigs = [int(rng.integers(1, 2**24)) for _ in range(500)]
        tree = build(sigs, max_entries=6)
        tree.validate()
        assert len(tree) == 500
        assert tree.stats().height >= 3

    def test_search_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        sigs = [int(rng.integers(1, 2**16)) for _ in range(300)]
        tree = build(sigs, max_entries=5)
        for _ in range(20):
            q = int(rng.integers(1, 2**16))
            got = sorted(e.payload for e in tree.search_intersecting(q))
            expected = sorted(i for i, s in enumerate(sigs) if s & q)
            assert got == expected

    def test_search_containment_predicate(self):
        sigs = [0b1011, 0b0011, 0b1111, 0b0100]
        tree = build(sigs)
        got = sorted(
            e.payload
            for e in tree.search(lambda s: bitset.contain(s, 0b0011))
        )
        assert got == [0, 1, 2]

    def test_duplicate_signatures_allowed(self):
        tree = build([0b101] * 10)
        assert len(tree.search_intersecting(0b100)) == 10

    def test_all_entries(self):
        tree = build([1, 2, 4, 8, 16])
        assert sorted(e.payload for e in tree.all_entries()) == [0, 1, 2, 3, 4]

    def test_zero_signature_storable(self):
        tree = build([0, 1])
        assert len(tree) == 2
        # Zero signature matches nothing by intersection.
        assert [e.payload for e in tree.search_intersecting(0b1)] == [1]


class TestBulkLoad:
    def test_bulk_load_equivalent_content(self):
        rng = np.random.default_rng(2)
        items = [(int(rng.integers(1, 2**20)), i) for i in range(200)]
        tree = SignatureTree(max_entries=8)
        tree.bulk_load(items)
        tree.validate()
        assert len(tree) == 200
        q = 0b1010101
        expected = sorted(i for s, i in items if s & q)
        assert sorted(e.payload for e in tree.search_intersecting(q)) == expected


class TestStats:
    def test_stats_counts(self):
        tree = build([1 << i for i in range(20)], max_entries=4)
        stats = tree.stats()
        assert stats.entry_count == 20
        assert stats.leaf_count >= 20 // 4
        assert stats.signature_bits == 20

    def test_storage_bytes_monotone_in_entries(self):
        small = build([1 << (i % 10) for i in range(10)]).stats()
        large = build([1 << (i % 10) for i in range(100)]).stats()
        assert large.storage_bytes() > small.storage_bytes()

    def test_storage_bytes_grow_with_signature_width(self):
        narrow = build([0b1] * 50).stats()
        wide = build([1 << 500] * 50).stats()
        assert wide.storage_bytes() > narrow.storage_bytes()


class TestInvariantsUnderLoad:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=200),
        st.integers(min_value=4, max_value=16),
    )
    def test_validate_after_random_inserts(self, sigs, max_entries):
        tree = SignatureTree(max_entries=max_entries)
        for i, sig in enumerate(sigs):
            tree.insert(sig, i)
        tree.validate()
        assert len(tree) == len(sigs)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=2**32 - 1), min_size=1, max_size=150),
        st.integers(min_value=1, max_value=2**32 - 1),
    )
    def test_search_complete_and_sound(self, sigs, query):
        tree = build(sigs, max_entries=4)
        got = sorted(e.payload for e in tree.search_intersecting(query))
        expected = sorted(i for i, s in enumerate(sigs) if s & query)
        assert got == expected
