"""Tests for the analytic storage model (Fig. 11a's accounting)."""

import pytest

from repro.signature import SignatureTree
from repro.signature.signature_tree import TreeStats


class TestStorageBytes:
    def test_formula(self):
        stats = TreeStats(
            height=2, node_count=4, leaf_count=3, entry_count=10, signature_bits=16
        )
        # sig 2 bytes; 3 internal entries (node_count - 1) at 2+4 bytes;
        # 10 leaf entries at 2+4+8 bytes.
        assert stats.storage_bytes() == 3 * 6 + 10 * 14

    def test_pointer_and_payload_knobs(self):
        stats = TreeStats(
            height=1, node_count=1, leaf_count=1, entry_count=4, signature_bits=8
        )
        small = stats.storage_bytes(pointer_bytes=4, payload_bytes=0)
        large = stats.storage_bytes(pointer_bytes=8, payload_bytes=16)
        assert large > small

    def test_bit_width_rounds_up_to_bytes(self):
        narrow = TreeStats(1, 1, 1, 4, signature_bits=1)
        wide = TreeStats(1, 1, 1, 4, signature_bits=9)
        assert wide.storage_bytes() - narrow.storage_bytes() == 4  # +1 byte x4

    def test_live_tree_consistency(self):
        tree = SignatureTree(max_entries=4)
        for i in range(50):
            tree.insert(1 << (i % 20), i)
        stats = tree.stats()
        assert stats.entry_count == 50
        assert stats.signature_bits == 20
        # Height and node counts are mutually consistent.
        assert stats.leaf_count <= stats.node_count
        assert stats.height >= 2
        assert stats.storage_bytes() > 0
