"""Tests for signature-tree deletion and condensation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signature import SignatureTree


def build(signatures, max_entries=4):
    tree = SignatureTree(max_entries=max_entries)
    for i, sig in enumerate(signatures):
        tree.insert(sig, i)
    return tree


class TestDelete:
    def test_delete_existing(self):
        tree = build([0b001, 0b010, 0b100])
        assert tree.delete(0b010)
        assert len(tree) == 2
        assert [e.payload for e in tree.search_intersecting(0b010)] == []
        tree.validate()

    def test_delete_missing_returns_false(self):
        tree = build([0b001])
        assert not tree.delete(0b110)
        assert len(tree) == 1

    def test_delete_negative_rejected(self):
        with pytest.raises(ValueError):
            build([1]).delete(-1)

    def test_delete_with_payload_match(self):
        tree = SignatureTree(max_entries=4)
        tree.insert(0b11, "a")
        tree.insert(0b11, "b")
        assert tree.delete(0b11, match=lambda p: p == "b")
        remaining = [e.payload for e in tree.all_entries()]
        assert remaining == ["a"]

    def test_delete_match_rejects_all(self):
        tree = SignatureTree(max_entries=4)
        tree.insert(0b11, "a")
        assert not tree.delete(0b11, match=lambda p: p == "zzz")
        assert len(tree) == 1

    def test_delete_to_empty(self):
        tree = build([0b1, 0b10])
        assert tree.delete(0b1)
        assert tree.delete(0b10)
        assert len(tree) == 0
        tree.validate()
        # Tree remains usable.
        tree.insert(0b101, "x")
        assert len(tree) == 1

    def test_delete_after_splits_condenses(self):
        rng = np.random.default_rng(0)
        sigs = [int(rng.integers(1, 2**20)) for _ in range(300)]
        tree = build(sigs, max_entries=5)
        # Delete two thirds, validating periodically.
        for i, sig in enumerate(sigs[:200]):
            assert tree.delete(sig, match=lambda p, i=i: p == i)
            if i % 25 == 0:
                tree.validate()
        tree.validate()
        assert len(tree) == 100
        remaining = sorted(e.payload for e in tree.all_entries())
        assert remaining == list(range(200, 300))

    def test_search_still_exact_after_deletions(self):
        rng = np.random.default_rng(1)
        sigs = [int(rng.integers(1, 2**16)) for _ in range(200)]
        tree = build(sigs, max_entries=4)
        alive = dict(enumerate(sigs))
        for i in list(alive)[::2]:
            assert tree.delete(alive[i], match=lambda p, i=i: p == i)
            del alive[i]
        for _ in range(10):
            q = int(rng.integers(1, 2**16))
            got = sorted(e.payload for e in tree.search_intersecting(q))
            expected = sorted(i for i, s in alive.items() if s & q)
            assert got == expected


class TestDeleteProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(1, 2**24 - 1), min_size=1, max_size=120),
        st.data(),
    )
    def test_random_delete_keeps_invariants(self, sigs, data):
        tree = build(sigs, max_entries=4)
        # Delete a random subset (by index identity).
        to_delete = data.draw(
            st.lists(
                st.integers(0, len(sigs) - 1),
                unique=True,
                max_size=len(sigs),
            )
        )
        for i in to_delete:
            assert tree.delete(sigs[i], match=lambda p, i=i: p == i)
        tree.validate()
        assert len(tree) == len(sigs) - len(to_delete)
        survivors = sorted(e.payload for e in tree.all_entries())
        assert survivors == sorted(set(range(len(sigs))) - set(to_delete))
