"""Tests for bitset operations (the paper's pattern-key operations)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.signature import bitset

sigs = st.integers(min_value=0, max_value=2**64 - 1)


class TestBasicOps:
    def test_union(self):
        assert bitset.union() == 0
        assert bitset.union(0b001, 0b100) == 0b101
        assert bitset.union(0b11, 0b10, 0b01) == 0b11

    def test_size(self):
        assert bitset.size(0) == 0
        assert bitset.size(0b10110) == 3
        with pytest.raises(ValueError):
            bitset.size(-1)

    def test_contain(self):
        # Paper: Contain(pk1, pk2) true iff pk1 & pk2 == pk2.
        assert bitset.contain(0b111, 0b101)
        assert bitset.contain(0b101, 0b101)
        assert not bitset.contain(0b101, 0b111)
        assert bitset.contain(0b101, 0)  # empty key contained everywhere

    def test_difference_paper_definition(self):
        # Difference(pk1, pk2) = Size(pk1 XOR (pk1 AND pk2)).
        assert bitset.difference(0b1100, 0b1010) == 1  # bit 2 uncovered
        assert bitset.difference(0b1100, 0b1100) == 0
        assert bitset.difference(0b1100, 0) == 2
        assert bitset.difference(0, 0b1111) == 0

    def test_difference_asymmetry(self):
        assert bitset.difference(0b111, 0b001) == 2
        assert bitset.difference(0b001, 0b111) == 0

    def test_intersects(self):
        assert bitset.intersects(0b110, 0b011)
        assert not bitset.intersects(0b100, 0b011)
        assert not bitset.intersects(0, 0b1)


class TestConversions:
    def test_iter_set_bits(self):
        assert list(bitset.iter_set_bits(0b10101)) == [0, 2, 4]
        assert list(bitset.iter_set_bits(0)) == []

    def test_from_to_indices(self):
        assert bitset.from_indices([0, 3]) == 0b1001
        assert bitset.to_indices(0b1001) == [0, 3]
        with pytest.raises(ValueError):
            bitset.from_indices([-1])

    def test_to_bit_string_matches_paper_format(self):
        # Table I: region id 0 has key 00001 over 5 regions.
        assert bitset.to_bit_string(1, 5) == "00001"
        assert bitset.to_bit_string(0b10000, 5) == "10000"
        with pytest.raises(ValueError):
            bitset.to_bit_string(0b100000, 5)
        with pytest.raises(ValueError):
            bitset.to_bit_string(0, 0)

    def test_position_of_bit(self):
        # Positions number the *set* bits right-to-left from 1 (Property 1).
        sig = 0b10110
        assert bitset.position_of_bit(sig, 1) == 1
        assert bitset.position_of_bit(sig, 2) == 2
        assert bitset.position_of_bit(sig, 4) == 3
        with pytest.raises(ValueError):
            bitset.position_of_bit(sig, 0)  # bit not set


class TestProperties:
    @given(sigs, sigs)
    def test_difference_counts_uncovered_bits(self, a, b):
        assert bitset.difference(a, b) == bitset.size(a & ~b)

    @given(sigs, sigs)
    def test_contain_iff_no_difference(self, a, b):
        assert bitset.contain(a, b) == (bitset.difference(b, a) == 0)

    @given(sigs, sigs)
    def test_union_contains_both(self, a, b):
        u = bitset.union(a, b)
        assert bitset.contain(u, a)
        assert bitset.contain(u, b)

    @given(sigs)
    def test_round_trip_indices(self, a):
        assert bitset.from_indices(bitset.to_indices(a)) == a

    @given(sigs)
    def test_positions_are_dense_ranks(self, a):
        ranks = [bitset.position_of_bit(a, i) for i in bitset.iter_set_bits(a)]
        assert ranks == list(range(1, bitset.size(a) + 1))
