"""Tests for the polynomial motion model."""

import math

import numpy as np
import pytest

from repro.motion import LinearMotionFunction, PolynomialMotionFunction
from repro.trajectory import Point, TimedPoint


def samples_from(fn, n, t0=0):
    return [TimedPoint(t0 + i, *fn(t0 + i)) for i in range(n)]


class TestValidation:
    def test_bad_degree(self):
        with pytest.raises(ValueError):
            PolynomialMotionFunction(degree=0)

    def test_unfitted(self):
        f = PolynomialMotionFunction()
        assert not f.is_fitted
        with pytest.raises(RuntimeError):
            f.predict(5)

    def test_needs_degree_plus_one_samples(self):
        f = PolynomialMotionFunction(degree=3)
        with pytest.raises(ValueError):
            f.fit(samples_from(lambda t: (t, t), 3))
        f.fit(samples_from(lambda t: (t, t), 4))
        assert f.is_fitted


class TestAccuracy:
    def test_exact_on_linear(self):
        f = PolynomialMotionFunction(degree=2).fit(
            samples_from(lambda t: (3.0 * t, -t), 10)
        )
        p = f.predict(20)
        assert p.x == pytest.approx(60.0, rel=1e-9)
        assert p.y == pytest.approx(-20.0, rel=1e-9)

    def test_exact_on_quadratic(self):
        f = PolynomialMotionFunction(degree=2).fit(
            samples_from(lambda t: (0.5 * t * t, 2.0 * t), 10)
        )
        p = f.predict(14)
        assert p.x == pytest.approx(0.5 * 14 * 14, rel=1e-9)

    def test_beats_linear_on_accelerating_object(self):
        pts = samples_from(lambda t: (0.3 * t * t, 0.0), 12)
        poly = PolynomialMotionFunction(degree=2).fit(pts)
        lin = LinearMotionFunction().fit(pts)
        truth = Point(0.3 * 18 * 18, 0.0)
        assert poly.predict(18).distance_to(truth) < lin.predict(18).distance_to(truth)

    def test_large_timestamps_conditioned(self):
        """Time centering keeps the Vandermonde system well-conditioned."""
        t0 = 10_000_000
        f = PolynomialMotionFunction(degree=2).fit(
            samples_from(lambda t: (2.0 * (t - t0), 5.0), 10, t0=t0)
        )
        assert f.predict(t0 + 20).x == pytest.approx(40.0, rel=1e-6)

    def test_divergence_at_distant_times(self):
        """The failure mode HPM fixes: polynomials diverge with horizon."""
        rng = np.random.default_rng(0)
        pts = [
            TimedPoint(i, float(i + rng.normal(0, 0.3)), 0.0) for i in range(10)
        ]
        f = PolynomialMotionFunction(degree=3).fit(pts)
        near = abs(f.predict(12).x - 12.0)
        far = abs(f.predict(200).x - 200.0)
        assert far > near
