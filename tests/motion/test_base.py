"""Tests for the motion-function base utilities."""

import pytest

from repro.motion import MotionFunction, validate_recent_movements
from repro.trajectory import TimedPoint


class TestValidateRecentMovements:
    def test_accepts_strictly_increasing(self):
        pts = [TimedPoint(1, 0, 0), TimedPoint(3, 1, 1), TimedPoint(4, 2, 2)]
        out = validate_recent_movements(pts, minimum=2)
        assert out == pts
        assert isinstance(out, list)

    def test_accepts_generators(self):
        out = validate_recent_movements(
            (TimedPoint(i, 0, 0) for i in range(3)), minimum=3
        )
        assert len(out) == 3

    def test_rejects_too_few(self):
        with pytest.raises(ValueError, match="at least 3"):
            validate_recent_movements([TimedPoint(0, 0, 0)], minimum=3)

    def test_rejects_equal_times(self):
        pts = [TimedPoint(1, 0, 0), TimedPoint(1, 1, 1)]
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_recent_movements(pts, minimum=2)

    def test_rejects_decreasing_times(self):
        pts = [TimedPoint(2, 0, 0), TimedPoint(1, 1, 1)]
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_recent_movements(pts, minimum=2)


class TestMotionFunctionProtocol:
    def test_is_abstract(self):
        with pytest.raises(TypeError):
            MotionFunction()  # type: ignore[abstract]

    def test_concrete_subclass_must_implement_everything(self):
        class Partial(MotionFunction):
            def fit(self, recent):
                return self

        with pytest.raises(TypeError):
            Partial()  # type: ignore[abstract]
