"""Tests for the linear motion function."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.motion import LinearMotionFunction
from repro.trajectory import Point, TimedPoint


def line_samples(n, vx, vy, x0=0.0, y0=0.0, t0=0):
    return [TimedPoint(t0 + i, x0 + vx * i, y0 + vy * i) for i in range(n)]


class TestLinearMotion:
    def test_unfitted_raises(self):
        f = LinearMotionFunction()
        assert not f.is_fitted
        with pytest.raises(RuntimeError):
            f.predict(5)
        with pytest.raises(RuntimeError):
            f.velocity

    def test_bad_estimator_name(self):
        with pytest.raises(ValueError):
            LinearMotionFunction(velocity_estimator="magic")

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            LinearMotionFunction().fit([TimedPoint(0, 0.0, 0.0)])

    def test_rejects_non_increasing_times(self):
        pts = [TimedPoint(0, 0, 0), TimedPoint(0, 1, 1)]
        with pytest.raises(ValueError):
            LinearMotionFunction().fit(pts)

    def test_exact_on_linear_motion_last(self):
        f = LinearMotionFunction("last").fit(line_samples(5, 2.0, -1.0))
        p = f.predict(10)
        assert p.x == pytest.approx(20.0)
        assert p.y == pytest.approx(-10.0)

    def test_exact_on_linear_motion_least_squares(self):
        f = LinearMotionFunction("least_squares").fit(line_samples(5, 2.0, -1.0))
        p = f.predict(10)
        assert p.x == pytest.approx(20.0)
        assert p.y == pytest.approx(-10.0)

    def test_velocity_property(self):
        f = LinearMotionFunction().fit(line_samples(3, 1.5, 0.5))
        assert f.velocity == Point(1.5, 0.5)

    def test_least_squares_smooths_noise(self):
        rng = np.random.default_rng(0)
        base = line_samples(20, 3.0, 0.0)
        noisy = [
            TimedPoint(p.t, p.x + rng.normal(0, 0.5), p.y + rng.normal(0, 0.5))
            for p in base
        ]
        ls = LinearMotionFunction("least_squares").fit(noisy)
        assert ls.velocity.x == pytest.approx(3.0, abs=0.2)

    def test_stationary_object(self):
        pts = [TimedPoint(i, 5.0, 5.0) for i in range(4)]
        f = LinearMotionFunction().fit(pts)
        assert f.predict(100) == Point(5.0, 5.0)

    def test_gap_in_timestamps(self):
        pts = [TimedPoint(0, 0.0, 0.0), TimedPoint(4, 8.0, 0.0)]
        f = LinearMotionFunction().fit(pts)
        assert f.predict(5).x == pytest.approx(10.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(-50, 50, allow_nan=False),
        st.floats(-50, 50, allow_nan=False),
        st.integers(3, 15),
        st.integers(1, 50),
    )
    def test_recovers_any_linear_motion(self, vx, vy, n, horizon):
        samples = line_samples(n, vx, vy, x0=7.0, y0=-3.0)
        f = LinearMotionFunction().fit(samples)
        t = samples[-1].t + horizon
        expected = Point(7.0 + vx * t, -3.0 + vy * t)
        got = f.predict(t)
        assert got.distance_to(expected) < 1e-6 * max(1.0, abs(vx) + abs(vy)) * t + 1e-6
