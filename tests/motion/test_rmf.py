"""Tests for the Recursive Motion Function."""

import math

import numpy as np
import pytest

from repro.motion import RecursiveMotionFunction
from repro.trajectory import Point, TimedPoint


def samples_from(fn, n, t0=0):
    return [TimedPoint(t0 + i, *fn(t0 + i)) for i in range(n)]


class TestFitValidation:
    def test_unfitted_raises(self):
        f = RecursiveMotionFunction()
        assert not f.is_fitted
        with pytest.raises(RuntimeError):
            f.predict(10)
        with pytest.raises(RuntimeError):
            f.coefficient_matrices()

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RecursiveMotionFunction(retrospect=0)
        with pytest.raises(ValueError):
            RecursiveMotionFunction(max_step_factor=0.0)

    def test_needs_retrospect_plus_two(self):
        f = RecursiveMotionFunction(retrospect=5)
        with pytest.raises(ValueError):
            f.fit(samples_from(lambda t: (t, t), 6))
        f.fit(samples_from(lambda t: (t, t), 7))
        assert f.is_fitted

    def test_rejects_past_query(self):
        f = RecursiveMotionFunction(retrospect=2).fit(
            samples_from(lambda t: (t, 0.0), 10)
        )
        with pytest.raises(ValueError):
            f.predict(9)  # last fit time
        with pytest.raises(ValueError):
            f.predict(0)


class TestAccuracy:
    def test_exact_on_linear_motion(self):
        f = RecursiveMotionFunction(retrospect=3).fit(
            samples_from(lambda t: (2.0 * t, -t), 12)
        )
        p = f.predict(20)
        assert p.x == pytest.approx(40.0, rel=1e-6)
        assert p.y == pytest.approx(-20.0, rel=1e-6)

    def test_captures_circular_motion(self):
        """RMF's recurrence reproduces sinusoids exactly (its headline feature)."""

        def circle(t):
            return (100.0 * math.cos(0.1 * t), 100.0 * math.sin(0.1 * t))

        f = RecursiveMotionFunction(retrospect=4, max_step_factor=None).fit(
            samples_from(circle, 40)
        )
        truth = Point(*circle(50))
        assert f.predict(50).distance_to(truth) < 1.0

    def test_beats_linear_on_turning_object(self):
        """A turning object defeats linear extrapolation but not RMF."""
        from repro.motion import LinearMotionFunction

        def curve(t):
            return (50.0 * math.cos(0.05 * t), 50.0 * math.sin(0.05 * t))

        pts = samples_from(curve, 30)
        rmf = RecursiveMotionFunction(retrospect=4, max_step_factor=None).fit(pts)
        lin = LinearMotionFunction().fit(pts)
        truth = Point(*curve(45))
        assert rmf.predict(45).distance_to(truth) < lin.predict(45).distance_to(truth)

    def test_stationary_object(self):
        f = RecursiveMotionFunction(retrospect=2).fit(
            [TimedPoint(i, 3.0, 4.0) for i in range(8)]
        )
        assert f.predict(100).distance_to(Point(3.0, 4.0)) < 1e-6


class TestStability:
    def test_step_clamp_bounds_speed(self):
        rng = np.random.default_rng(0)
        pts = [
            TimedPoint(i, float(i + rng.normal(0, 0.5)), float(rng.normal(0, 0.5)))
            for i in range(10)
        ]
        f = RecursiveMotionFunction(retrospect=5, max_step_factor=2.0).fit(pts)
        max_step = max(
            math.hypot(b.x - a.x, b.y - a.y) for a, b in zip(pts, pts[1:])
        )
        prev = f.predict(10)
        for t in range(11, 60):
            cur = f.predict(t)
            assert cur.distance_to(prev) <= 2.0 * max_step + 1e-9
            prev = cur

    def test_unclamped_can_diverge_faster(self):
        """The clamp exists because the raw recurrence can accelerate."""
        rng = np.random.default_rng(3)
        pts = [
            TimedPoint(
                i, float(1.5**i + rng.normal(0, 0.1)), float(rng.normal(0, 0.1))
            )
            for i in range(10)
        ]
        clamped = RecursiveMotionFunction(max_step_factor=1.0).fit(pts)
        raw = RecursiveMotionFunction(max_step_factor=None).fit(pts)
        assert abs(raw.predict(30).x) >= abs(clamped.predict(30).x)

    def test_prediction_cache_consistent(self):
        f = RecursiveMotionFunction(retrospect=2).fit(
            samples_from(lambda t: (t * 1.0, 0.0), 10)
        )
        far = f.predict(50)
        near = f.predict(20)  # cached from the same roll-out
        again = f.predict(50)
        assert far == again
        assert near.x == pytest.approx(20.0, rel=1e-6)

    def test_refit_clears_cache(self):
        f = RecursiveMotionFunction(retrospect=2)
        f.fit(samples_from(lambda t: (t * 1.0, 0.0), 10))
        first = f.predict(20)
        f.fit(samples_from(lambda t: (t * 2.0, 0.0), 10))
        second = f.predict(20)
        assert second.x == pytest.approx(40.0, rel=1e-5)
        assert first.x != second.x


class TestCoefficients:
    def test_shapes(self):
        f = RecursiveMotionFunction(retrospect=3).fit(
            samples_from(lambda t: (t, 2 * t), 12)
        )
        mats = f.coefficient_matrices()
        assert len(mats) == 3
        assert all(m.shape == (2, 2) for m in mats)

    def test_linear_motion_coefficients_reproduce_recurrence(self):
        """For pure linear motion, applying the fitted recurrence one step
        reproduces the next location."""
        pts = samples_from(lambda t: (3.0 * t + 1.0, -2.0 * t), 12)
        f = RecursiveMotionFunction(retrospect=2).fit(pts)
        nxt = f.predict(12)
        assert nxt.x == pytest.approx(37.0, rel=1e-6)
        assert nxt.y == pytest.approx(-24.0, rel=1e-6)
