"""Tests for the paper's four scenario datasets."""

import numpy as np
import pytest

from repro.datagen import (
    SCENARIO_NAMES,
    make_airplane,
    make_bike,
    make_car,
    make_cow,
    make_dataset,
    paper_datasets,
)


@pytest.fixture(scope="module")
def small_sets():
    # Small instances keep the suite fast; shapes scale linearly.
    return {name: make_dataset(name, num_subtrajectories=12, period=60) for name in SCENARIO_NAMES}


class TestShapes:
    def test_all_four_scenarios(self, small_sets):
        assert set(small_sets) == {"bike", "cow", "car", "airplane"}
        for name, ds in small_sets.items():
            assert ds.name == name
            assert len(ds.trajectory) == 12 * 60
            assert ds.period == 60
            assert ds.num_subtrajectories == 12

    def test_extent_normalised(self, small_sets):
        for ds in small_sets.values():
            box = ds.trajectory.bounding_box()
            assert box.min_x >= -1e-9 and box.min_y >= -1e-9
            assert max(box.max_x, box.max_y) <= 10000.0 + 1e-6

    def test_metadata_recorded(self, small_sets):
        f_values = {
            name: ds.metadata["pattern_probability"]
            for name, ds in small_sets.items()
        }
        # Paper: Bike > Cow > Car > Airplane.
        assert f_values["bike"] > f_values["cow"] > f_values["car"] > f_values["airplane"]
        for ds in small_sets.values():
            assert "seed" in ds.metadata


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make_bike(num_subtrajectories=4, period=30, seed=3)
        b = make_bike(num_subtrajectories=4, period=30, seed=3)
        assert a.trajectory == b.trajectory

    def test_different_seed_different_data(self):
        a = make_cow(num_subtrajectories=4, period=30, seed=3)
        b = make_cow(num_subtrajectories=4, period=30, seed=4)
        assert a.trajectory != b.trajectory


class TestPatternStrengthOrdering:
    def test_offset_alignment_ordering(self):
        """Bike offset groups are tighter than Airplane's (pattern strength)."""

        def median_spread(ds):
            spreads = []
            for t in range(0, ds.period, 5):
                g = ds.trajectory.offset_group(t, ds.period)
                spreads.append(g.positions.std(axis=0).max())
            return float(np.median(spreads))

        bike = make_bike(num_subtrajectories=25, period=60)
        airplane = make_airplane(num_subtrajectories=25, period=60)
        assert median_spread(bike) < median_spread(airplane)


class TestDispatch:
    def test_make_dataset_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_dataset("submarine")

    def test_make_dataset_seed_passthrough(self):
        a = make_dataset("car", 4, 30, seed=9)
        b = make_car(4, 30, seed=9)
        assert a.trajectory == b.trajectory

    def test_paper_datasets_keys(self):
        sets = paper_datasets(num_subtrajectories=3, period=30)
        assert list(sets) == list(SCENARIO_NAMES)
