"""Tests for the periodic trajectory generator."""

import numpy as np
import pytest

from repro.datagen import PeriodicTrajectoryGenerator, Route, WeightedRoute


@pytest.fixture
def straight_route():
    return Route(np.array([[0.0, 0.0], [1000.0, 0.0]]))


class TestValidation:
    def test_needs_routes(self):
        with pytest.raises(ValueError):
            PeriodicTrajectoryGenerator([], 0.5, 1.0)

    def test_probability_bounds(self, straight_route):
        with pytest.raises(ValueError):
            PeriodicTrajectoryGenerator([straight_route], 1.5, 1.0)

    def test_noise_bounds(self, straight_route):
        with pytest.raises(ValueError):
            PeriodicTrajectoryGenerator([straight_route], 0.5, -1.0)

    def test_deviation_mode(self, straight_route):
        with pytest.raises(ValueError):
            PeriodicTrajectoryGenerator(
                [straight_route], 0.5, 1.0, deviation_mode="fly"
            )

    def test_phase_jitter_bounds(self, straight_route):
        with pytest.raises(ValueError):
            PeriodicTrajectoryGenerator(
                [straight_route], 0.5, 1.0, phase_jitter=0.5
            )

    def test_weight_positive(self, straight_route):
        with pytest.raises(ValueError):
            WeightedRoute(straight_route, 0.0)

    def test_generate_validation(self, straight_route):
        gen = PeriodicTrajectoryGenerator([straight_route], 0.5, 1.0)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gen.generate(0, 10, rng)
        with pytest.raises(ValueError):
            gen.generate(5, 1, rng)


class TestGeneration:
    def test_shape(self, straight_route):
        gen = PeriodicTrajectoryGenerator([straight_route], 0.9, 1.0)
        traj = gen.generate(7, 20, np.random.default_rng(0))
        assert len(traj) == 140

    def test_normalised_to_extent(self, straight_route):
        gen = PeriodicTrajectoryGenerator([straight_route], 0.9, 1.0, extent=500.0)
        traj = gen.generate(5, 20, np.random.default_rng(0))
        box = traj.bounding_box()
        assert box.min_x >= 0 and box.min_y >= 0
        assert max(box.max_x, box.max_y) <= 500.0 + 1e-9
        assert max(box.width, box.height) == pytest.approx(500.0)

    def test_patterned_days_cluster_by_offset(self, straight_route):
        """With f=1 and small noise, every offset group is a tight cluster."""
        gen = PeriodicTrajectoryGenerator([straight_route], 1.0, 1.0)
        traj = gen.generate(20, 10, np.random.default_rng(1))
        for group in traj.offset_groups(10):
            spread = group.positions.std(axis=0).max()
            assert spread < 50.0  # scaled noise stays small

    def test_pattern_probability_zero_gives_no_alignment(self, straight_route):
        gen = PeriodicTrajectoryGenerator(
            [straight_route], 0.0, 1.0, deviation_mode="walk"
        )
        traj = gen.generate(20, 10, np.random.default_rng(2))
        spreads = [g.positions.std(axis=0).max() for g in traj.offset_groups(10)]
        assert np.mean(spreads) > 100.0  # random walks scatter widely

    def test_route_weights_respected(self):
        a = Route(np.array([[0.0, 0.0], [0.0, 1.0]]), name="a")
        b = Route(np.array([[1000.0, 0.0], [1000.0, 1.0]]), name="b")
        gen = PeriodicTrajectoryGenerator(
            [WeightedRoute(a, 9.0), WeightedRoute(b, 1.0)],
            pattern_probability=1.0,
            noise_sigma=0.1,
        )
        traj = gen.generate(200, 5, np.random.default_rng(3))
        # Count sub-trajectories starting near each route (post-normalise,
        # route a maps to low x, route b to high x).
        starts = traj.positions[::5, 0]
        frac_a = float((starts < starts.mean()).mean())
        assert frac_a == pytest.approx(0.9, abs=0.07)

    def test_deterministic_given_rng(self, straight_route):
        gen = PeriodicTrajectoryGenerator([straight_route], 0.7, 2.0)
        t1 = gen.generate(5, 10, np.random.default_rng(42))
        t2 = gen.generate(5, 10, np.random.default_rng(42))
        assert t1 == t2

    def test_phase_jitter_smears_offsets(self, straight_route):
        aligned = PeriodicTrajectoryGenerator([straight_route], 1.0, 0.5)
        smeared = PeriodicTrajectoryGenerator(
            [straight_route], 1.0, 0.5, phase_jitter=0.2
        )
        t_aligned = aligned.generate(30, 20, np.random.default_rng(4))
        t_smeared = smeared.generate(30, 20, np.random.default_rng(4))

        def mid_offset_spread(traj):
            group = traj.offset_group(10, 20)
            return group.positions.std(axis=0).max()

        assert mid_offset_spread(t_smeared) > 3 * mid_offset_spread(t_aligned)
