"""Tests for noise models."""

import numpy as np
import pytest

from repro.datagen import gaussian_jitter, moving_average, random_walk
from repro.datagen.noise import detour


class TestGaussianJitter:
    def test_zero_sigma_is_copy(self):
        base = np.ones((5, 2))
        out = gaussian_jitter(base, 0.0, np.random.default_rng(0))
        assert np.array_equal(out, base)
        assert out is not base

    def test_jitter_scale(self):
        rng = np.random.default_rng(1)
        base = np.zeros((2000, 2))
        out = gaussian_jitter(base, 3.0, rng)
        assert out.std() == pytest.approx(3.0, rel=0.1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            gaussian_jitter(np.zeros((2, 2)), -1.0, np.random.default_rng(0))


class TestRandomWalk:
    def test_starts_at_start(self):
        walk = random_walk((5.0, 7.0), 10, 1.0, np.random.default_rng(0))
        assert walk.shape == (10, 2)
        assert np.array_equal(walk[0], [5.0, 7.0])

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_walk((0, 0), 0, 1.0, rng)
        with pytest.raises(ValueError):
            random_walk((0, 0), 5, -1.0, rng)
        with pytest.raises(ValueError):
            random_walk((0, 0), 5, 1.0, rng, momentum=1.0)

    def test_zero_scale_stays_put(self):
        walk = random_walk((1.0, 1.0), 8, 0.0, np.random.default_rng(0))
        assert np.allclose(walk, [1.0, 1.0])

    def test_momentum_smooths_heading(self):
        """High momentum produces smaller turn angles on average."""
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        smooth = random_walk((0, 0), 500, 1.0, rng1, momentum=0.95)
        rough = random_walk((0, 0), 500, 1.0, rng2, momentum=0.0)

        def mean_turn(walk):
            v = np.diff(walk, axis=0)
            dots = (v[:-1] * v[1:]).sum(axis=1)
            norms = np.linalg.norm(v[:-1], axis=1) * np.linalg.norm(v[1:], axis=1)
            return np.arccos(np.clip(dots / np.maximum(norms, 1e-12), -1, 1)).mean()

        assert mean_turn(smooth) < mean_turn(rough)


class TestDetour:
    def test_shape_and_anchoring(self):
        base = np.column_stack([np.arange(50.0), np.zeros(50)])
        out = detour(base, 10.0, np.random.default_rng(0))
        assert out.shape == base.shape
        # Bounded drift: never further than ~1.5 x amplitude from the base.
        drift = np.linalg.norm(out - base, axis=1)
        assert drift.max() <= 15.0 + 1e-9
        assert drift.max() > 1.0  # actually deviates

    def test_zero_amplitude_is_copy(self):
        base = np.ones((10, 2))
        out = detour(base, 0.0, np.random.default_rng(0))
        assert np.array_equal(out, base)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            detour(np.zeros((5, 3)), 1.0, rng)
        with pytest.raises(ValueError):
            detour(np.zeros((5, 2)), -1.0, rng)


class TestMovingAverage:
    def test_window_one_is_copy(self):
        base = np.random.default_rng(0).normal(0, 1, (10, 2))
        assert np.array_equal(moving_average(base, 1), base)

    def test_constant_preserved(self):
        base = np.full((20, 2), 7.0)
        assert np.allclose(moving_average(base, 5), 7.0)

    def test_smooths_variance(self):
        rng = np.random.default_rng(1)
        base = rng.normal(0, 1, (500, 2))
        smoothed = moving_average(base, 9)
        assert smoothed.std() < base.std()

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros((5, 2)), 0)
