"""Tests for routes and sampling."""

import numpy as np
import pytest

from repro.datagen import Route, wiggly_route


class TestRouteValidation:
    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            Route(np.zeros((1, 2)))

    def test_dwell_length_mismatch(self):
        with pytest.raises(ValueError):
            Route(np.zeros((2, 2)), dwell=(0.1,))

    def test_dwell_sum_bound(self):
        with pytest.raises(ValueError):
            Route(np.zeros((2, 2)), dwell=(0.6, 0.5))

    def test_negative_dwell(self):
        with pytest.raises(ValueError):
            Route(np.zeros((2, 2)), dwell=(-0.1, 0.0))


class TestSampling:
    def test_endpoints(self):
        route = Route(np.array([[0.0, 0.0], [10.0, 0.0]]))
        pts = route.sample(11)
        assert np.allclose(pts[0], [0, 0])
        assert np.allclose(pts[-1], [10, 0])

    def test_constant_speed_on_straight_line(self):
        route = Route(np.array([[0.0, 0.0], [10.0, 0.0]]))
        pts = route.sample(11)
        steps = np.diff(pts[:, 0])
        assert np.allclose(steps, 1.0)

    def test_arc_length_parameterisation(self):
        """Unequal segments are covered at equal pace, not equal index share."""
        route = Route(np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]]))
        pts = route.sample(10)
        steps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        assert steps.std() < 0.1  # near-uniform speed across both segments

    def test_dwell_holds_position(self):
        route = Route(
            np.array([[0.0, 0.0], [10.0, 0.0]]), dwell=(0.3, 0.0)
        )
        pts = route.sample(20)
        # The first ~30% of samples stay at the start.
        assert np.allclose(pts[:5], [0.0, 0.0])

    def test_terminal_dwell(self):
        route = Route(np.array([[0.0, 0.0], [10.0, 0.0]]), dwell=(0.0, 0.3))
        pts = route.sample(20)
        assert np.allclose(pts[-5:], [10.0, 0.0])

    def test_length(self):
        route = Route(np.array([[0.0, 0.0], [3.0, 4.0], [3.0, 10.0]]))
        assert route.length == pytest.approx(11.0)

    def test_degenerate_route_stays_put(self):
        route = Route(np.array([[2.0, 2.0], [2.0, 2.0]]))
        assert np.allclose(route.sample(5), [2.0, 2.0])

    def test_sample_validation(self):
        route = Route(np.array([[0.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            route.sample(1)


class TestPhase:
    def test_positive_phase_starts_late(self):
        route = Route(np.array([[0.0, 0.0], [10.0, 0.0]]))
        shifted = route.sample(11, phase=0.3)
        # First 30% of the day the object is still at the start, and the
        # day ends mid-route (the journey ran out of period).
        assert np.allclose(shifted[:3], [0.0, 0.0])
        assert np.allclose(shifted[-1], [7.0, 0.0])

    def test_negative_phase_finishes_early(self):
        route = Route(np.array([[0.0, 0.0], [10.0, 0.0]]))
        shifted = route.sample(11, phase=-0.3)
        assert np.allclose(shifted[-3:], [10.0, 0.0])

    def test_sample_at_validation(self):
        route = Route(np.array([[0.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            route.sample_at(np.array([1.5]))
        with pytest.raises(ValueError):
            route.sample_at(np.array([]))


class TestReversedAndWiggly:
    def test_reversed(self):
        route = Route(np.array([[0.0, 0.0], [10.0, 0.0]]), dwell=(0.2, 0.1))
        back = route.reversed()
        assert np.allclose(back.waypoints[0], [10.0, 0.0])
        assert back.dwell == (0.1, 0.2)

    def test_wiggly_route_endpoints_fixed(self):
        rng = np.random.default_rng(0)
        route = wiggly_route((0, 0), (100, 0), 8, wiggle=10.0, rng=rng)
        assert np.allclose(route.waypoints[0], [0, 0])
        assert np.allclose(route.waypoints[-1], [100, 0])
        assert route.waypoints.shape == (8, 2)

    def test_wiggly_route_deviates_laterally(self):
        rng = np.random.default_rng(1)
        route = wiggly_route((0, 0), (100, 0), 10, wiggle=10.0, rng=rng)
        assert np.abs(route.waypoints[1:-1, 1]).max() > 1.0

    def test_wiggly_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            wiggly_route((0, 0), (0, 0), 5, 1.0, rng)
        with pytest.raises(ValueError):
            wiggly_route((0, 0), (1, 1), 1, 1.0, rng)
        with pytest.raises(ValueError):
            wiggly_route((0, 0), (1, 1), 5, -1.0, rng)
