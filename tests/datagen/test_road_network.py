"""Tests for the synthetic road network."""

import networkx as nx
import numpy as np
import pytest

from repro.datagen import RoadNetwork


@pytest.fixture(scope="module")
def network():
    return RoadNetwork(grid_size=6, extent=1000.0, rng=np.random.default_rng(0))


class TestConstruction:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RoadNetwork(grid_size=1, rng=rng)
        with pytest.raises(ValueError):
            RoadNetwork(extent=0.0, rng=rng)
        with pytest.raises(ValueError):
            RoadNetwork(removal_fraction=1.0, rng=rng)

    def test_connected_after_removal(self):
        net = RoadNetwork(
            grid_size=8, removal_fraction=0.4, rng=np.random.default_rng(1)
        )
        assert nx.is_connected(net.graph)

    def test_intersection_count(self, network):
        assert network.num_intersections == 36

    def test_edges_have_lengths(self, network):
        for u, v in network.graph.edges:
            assert network.graph.edges[u, v]["length"] > 0


class TestRouting:
    def test_nearest_node(self, network):
        node = network.nearest_node(0.0, 0.0)
        assert np.linalg.norm(network.coords[node]) < 300.0

    def test_route_between_follows_graph(self, network):
        route = network.route_between((0.0, 0.0), (1000.0, 1000.0))
        assert route.waypoints.shape[0] >= 2
        # Consecutive waypoints are adjacent intersections -> step length
        # bounded by ~2 cell sizes.
        steps = np.linalg.norm(np.diff(route.waypoints, axis=0), axis=1)
        assert steps.max() < 2.5 * (1000.0 / 5)

    def test_route_same_endpoints_rejected(self, network):
        with pytest.raises(ValueError):
            network.route_between((0.0, 0.0), (1.0, 1.0))

    def test_routes_have_turns(self, network):
        """Grid shortest paths bend — the property that defeats RMF."""
        route = network.route_between((0.0, 0.0), (1000.0, 1000.0))
        v = np.diff(route.waypoints, axis=0)
        # At least one pair of consecutive segments changes direction.
        cross = np.abs(v[:-1, 0] * v[1:, 1] - v[:-1, 1] * v[1:, 0])
        assert cross.max() > 1.0

    def test_random_route(self, network):
        route = network.random_route(np.random.default_rng(2))
        assert route.waypoints.shape[0] >= 2
