"""Suite-wide test configuration.

Registers a hypothesis profile without per-example deadlines: several
property tests build real index/mining structures whose first example
pays one-off JIT-ish costs (KD-tree builds, numpy warmup) that trip the
default 200 ms deadline only on cold caches.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
