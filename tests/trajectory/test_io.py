"""Tests for trajectory CSV IO."""

import numpy as np
import pytest

from repro.trajectory import (
    Trajectory,
    load_trajectories,
    load_trajectory,
    save_trajectories,
    save_trajectory,
)


@pytest.fixture
def traj():
    rng = np.random.default_rng(3)
    return Trajectory(rng.uniform(0, 100, (25, 2)), start_time=10)


class TestSingleTrajectory:
    def test_round_trip(self, traj, tmp_path):
        path = tmp_path / "t.csv"
        save_trajectory(traj, path)
        loaded = load_trajectory(path)
        assert loaded == traj

    def test_round_trip_preserves_exact_floats(self, tmp_path):
        t = Trajectory([[0.1 + 0.2, 1e-17], [3.0, 4.0]])
        path = tmp_path / "t.csv"
        save_trajectory(t, path)
        assert load_trajectory(path) == t

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_trajectory(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,x,y\n1,2\n")
        with pytest.raises(ValueError, match="columns"):
            load_trajectory(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("t,x,y\n")
        with pytest.raises(ValueError, match="no samples"):
            load_trajectory(path)

    def test_gap_in_timestamps_rejected(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("t,x,y\n0,0,0\n2,1,1\n")
        with pytest.raises(ValueError, match="consecutive"):
            load_trajectory(path)

    def test_out_of_order_rows_accepted(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text("t,x,y\n1,1,1\n0,0,0\n2,2,2\n")
        t = load_trajectory(path)
        assert t.start_time == 0
        assert t.at(2).x == 2.0


class TestMultiTrajectory:
    def test_round_trip(self, traj, tmp_path):
        other = Trajectory(np.zeros((5, 2)), start_time=0)
        path = tmp_path / "multi.csv"
        save_trajectories({"a": traj, "b": other}, path)
        loaded = load_trajectories(path)
        assert set(loaded) == {"a", "b"}
        assert loaded["a"] == traj
        assert loaded["b"] == other

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,x,y\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_trajectories(path)

    def test_per_object_consecutive_check(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("object_id,t,x,y\na,0,0,0\na,2,1,1\n")
        with pytest.raises(ValueError, match="consecutive"):
            load_trajectories(path)
