"""Tests for period estimation."""

import numpy as np
import pytest

from repro.datagen import make_bike
from repro.trajectory import Trajectory
from repro.trajectory.periodicity import estimate_period, score_period


def periodic_trajectory(period=24, subs=12, sigma=1.0, seed=0):
    rng = np.random.default_rng(seed)
    angles = 2 * np.pi * np.arange(period) / period
    base = 1000.0 * np.column_stack([np.cos(angles), np.sin(angles)])
    blocks = [base + rng.normal(0, sigma, base.shape) for _ in range(subs)]
    return Trajectory(np.vstack(blocks))


class TestScorePeriod:
    def test_true_period_scores_near_zero(self):
        traj = periodic_trajectory(period=24)
        score = score_period(traj, 24)
        assert score.coherence < 0.05
        assert score.num_subtrajectories == 12

    def test_wrong_period_scores_high(self):
        traj = periodic_trajectory(period=24)
        wrong = score_period(traj, 17)
        right = score_period(traj, 24)
        assert wrong.coherence > 10 * right.coherence

    def test_multiple_of_true_period_also_coherent(self):
        traj = periodic_trajectory(period=24)
        assert score_period(traj, 48).coherence < 0.05

    def test_validation(self):
        traj = periodic_trajectory(period=10, subs=3)
        with pytest.raises(ValueError):
            score_period(traj, 1)
        with pytest.raises(ValueError):
            score_period(traj, 16)  # fewer than two repetitions

    def test_stationary_trajectory_scores_zero(self):
        traj = Trajectory(np.zeros((40, 2)))
        assert score_period(traj, 10).coherence == 0.0


class TestEstimatePeriod:
    def test_recovers_true_period_from_candidates(self):
        traj = periodic_trajectory(period=24)
        ranked = estimate_period(traj, candidates=[10, 17, 24, 30])
        assert ranked[0].period == 24

    def test_exhaustive_scan_leaders_are_multiples(self):
        traj = periodic_trajectory(period=20, subs=10)
        ranked = estimate_period(traj, min_period=10, max_period=90)
        leaders = [s.period for s in ranked[:4]]
        assert 20 in leaders
        assert all(p % 20 == 0 for p in leaders)

    def test_on_paper_scenario(self):
        dataset = make_bike(num_subtrajectories=8, period=40)
        ranked = estimate_period(
            dataset.trajectory, candidates=[25, 40, 55, 80]
        )
        assert ranked[0].period in (40, 80)
        assert ranked[0].period == 40 or ranked[1].period == 40

    def test_too_short_history_rejected(self):
        traj = periodic_trajectory(period=10, subs=2)
        with pytest.raises(ValueError, match="two repetitions"):
            estimate_period(traj, candidates=[50])

    def test_validation(self):
        traj = periodic_trajectory()
        with pytest.raises(ValueError):
            estimate_period(traj, candidates=[])
        with pytest.raises(ValueError):
            estimate_period(traj, min_period=1)
        with pytest.raises(ValueError):
            estimate_period(traj, min_period=30, max_period=20)
