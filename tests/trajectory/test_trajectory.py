"""Tests for the Trajectory container and periodic decomposition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trajectory import Point, Trajectory


def ramp(n: int, start_time: int = 0) -> Trajectory:
    """A trajectory moving along the diagonal: position i = (i, 2i)."""
    positions = np.column_stack([np.arange(n, dtype=float), 2.0 * np.arange(n)])
    return Trajectory(positions, start_time=start_time)


class TestConstruction:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            Trajectory(np.zeros(5))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Trajectory([[0.0, np.nan]])
        with pytest.raises(ValueError):
            Trajectory([[np.inf, 0.0]])

    def test_accepts_lists(self):
        t = Trajectory([[0.0, 1.0], [2.0, 3.0]])
        assert len(t) == 2
        assert t[1] == Point(2.0, 3.0)

    def test_positions_view_is_read_only(self):
        t = ramp(5)
        with pytest.raises(ValueError):
            t.positions[0, 0] = 99.0

    def test_equality(self):
        assert ramp(5) == ramp(5)
        assert ramp(5) != ramp(6)
        assert ramp(5) != ramp(5, start_time=1)


class TestTimeAccess:
    def test_at_uses_global_time(self):
        t = ramp(10, start_time=100)
        assert t.at(100) == Point(0.0, 0.0)
        assert t.at(104) == Point(4.0, 8.0)
        assert t.end_time == 109

    def test_at_out_of_range(self):
        t = ramp(10, start_time=100)
        with pytest.raises(IndexError):
            t.at(99)
        with pytest.raises(IndexError):
            t.at(110)

    def test_timed_point(self):
        tp = ramp(10).timed_point(3)
        assert (tp.t, tp.x, tp.y) == (3, 3.0, 6.0)

    def test_window_inclusive(self):
        w = ramp(10).window(2, 4)
        assert [p.t for p in w] == [2, 3, 4]
        with pytest.raises(ValueError):
            ramp(10).window(4, 2)

    def test_slice_preserves_global_time(self):
        s = ramp(10, start_time=5).slice(2, 6)
        assert len(s) == 4
        assert s.start_time == 7
        assert s.at(7) == Point(2.0, 4.0)

    def test_slice_bounds(self):
        with pytest.raises(ValueError):
            ramp(5).slice(3, 2)
        with pytest.raises(ValueError):
            ramp(5).slice(0, 6)

    def test_bounding_box(self):
        box = ramp(5).bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, 0.0, 4.0, 8.0)


class TestDecomposition:
    def test_exact_multiple(self):
        subs = ramp(12).decompose(4)
        assert [len(s) for s in subs] == [4, 4, 4]
        assert all(s.is_complete for s in subs)
        assert [s.index for s in subs] == [0, 1, 2]

    def test_trailing_partial(self):
        subs = ramp(10).decompose(4)
        assert [len(s) for s in subs] == [4, 4, 2]
        assert not subs[-1].is_complete

    def test_subtrajectory_offset_access(self):
        subs = ramp(12).decompose(4)
        # sub 1 offset 2 is global index 6 -> (6, 12)
        assert subs[1].at_offset(2) == Point(6.0, 12.0)
        with pytest.raises(IndexError):
            subs[1].at_offset(4)

    def test_subtrajectory_global_time(self):
        subs = ramp(12, start_time=100).decompose(4)
        assert subs[2].global_time(1) == 109

    def test_subtrajectory_positions_copy(self):
        subs = ramp(8).decompose(4)
        arr = subs[0].positions()
        arr[0, 0] = -1.0
        assert subs[0].at_offset(0) == Point(0.0, 0.0)

    def test_bad_period(self):
        with pytest.raises(ValueError):
            ramp(10).decompose(0)


class TestOffsetGroups:
    def test_group_collects_same_offset(self):
        t = ramp(12)
        g = t.offset_group(1, 4)
        # offsets 1, 5, 9 -> x values 1, 5, 9
        assert list(g.positions[:, 0]) == [1.0, 5.0, 9.0]
        assert list(g.subtrajectory_ids) == [0, 1, 2]
        assert g.offset == 1

    def test_groups_partition_trajectory(self):
        t = ramp(10)
        groups = t.offset_groups(4)
        assert sum(len(g) for g in groups) == 10

    def test_group_bounds(self):
        with pytest.raises(ValueError):
            ramp(10).offset_group(4, 4)
        with pytest.raises(ValueError):
            ramp(10).offset_group(-1, 4)

    def test_group_sub_ids_match_decompose(self):
        """Offset-group sub ids agree with decompose() sub indices."""
        t = ramp(20)
        subs = t.decompose(5)
        for g in t.offset_groups(5):
            for pos, sub_id in zip(g.positions, g.subtrajectory_ids):
                assert subs[sub_id].at_offset(g.offset).x == pos[0]

    def test_group_with_shifted_start_time(self):
        """Offsets follow global time; sub ids stay index-based."""
        t = ramp(8, start_time=3)
        g = t.offset_group(3, 4)  # global times 3 and 7 -> x = 0 and 4
        assert list(g.positions[:, 0]) == [0.0, 4.0]
        assert list(g.subtrajectory_ids) == [0, 1]

    @given(st.integers(5, 40), st.integers(2, 7))
    def test_groups_partition_property(self, n, period):
        t = ramp(n)
        groups = t.offset_groups(period)
        assert sum(len(g) for g in groups) == n
        # every sample appears in exactly the group of its offset
        for g in groups:
            for x in g.positions[:, 0]:
                assert int(x) % period == g.offset


class TestConcatenate:
    def test_concatenate(self):
        t = Trajectory.concatenate([ramp(3), ramp(2)])
        assert len(t) == 5
        assert t[3] == Point(0.0, 0.0)

    def test_concatenate_empty(self):
        with pytest.raises(ValueError):
            Trajectory.concatenate([])

    def test_from_subtrajectories(self):
        t = Trajectory.from_subtrajectories([np.zeros((3, 2)), np.ones((2, 2))])
        assert len(t) == 5
        assert t[4] == Point(1.0, 1.0)

    def test_from_subtrajectories_empty(self):
        with pytest.raises(ValueError):
            Trajectory.from_subtrajectories([])
