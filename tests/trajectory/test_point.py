"""Tests for geometric primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trajectory.point import BoundingBox, Point, TimedPoint, centroid

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        assert Point(3.0, 4.0).distance_to(Point(3.0, 4.0)) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_translated(self):
        assert Point(1.0, 2.0).translated(3.0, -1.0) == Point(4.0, 1.0)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(4.0, 6.0)) == Point(2.0, 3.0)

    def test_as_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert tuple(p) == (1.5, 2.5)

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestTimedPoint:
    def test_point_accessor(self):
        tp = TimedPoint(5, 1.0, 2.0)
        assert tp.point == Point(1.0, 2.0)
        assert tp.as_tuple() == (5, 1.0, 2.0)

    def test_offset(self):
        assert TimedPoint(305, 0.0, 0.0).offset(300) == 5
        assert TimedPoint(300, 0.0, 0.0).offset(300) == 0
        assert TimedPoint(299, 0.0, 0.0).offset(300) == 299

    def test_offset_rejects_bad_period(self):
        with pytest.raises(ValueError):
            TimedPoint(5, 0.0, 0.0).offset(0)


class TestBoundingBox:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 5), Point(3, 2), (0, 4)])
        assert box == BoundingBox(0.0, 2.0, 3.0, 5.0)

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_center_width_height_area(self):
        box = BoundingBox(0.0, 0.0, 4.0, 2.0)
        assert box.center == Point(2.0, 1.0)
        assert box.width == 4.0
        assert box.height == 2.0
        assert box.area == 8.0

    def test_contains_boundary_inclusive(self):
        box = BoundingBox(0.0, 0.0, 2.0, 2.0)
        assert box.contains(Point(0.0, 0.0))
        assert box.contains((2.0, 2.0))
        assert not box.contains(Point(2.0001, 1.0))

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.intersects(BoundingBox(1, 1, 3, 3))
        assert a.intersects(BoundingBox(2, 2, 3, 3))  # touching counts
        assert not a.intersects(BoundingBox(2.1, 0, 3, 2))

    def test_union(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, -1, 3, 0.5)
        assert a.union(b) == BoundingBox(0, -1, 3, 1)

    def test_expanded(self):
        assert BoundingBox(0, 0, 1, 1).expanded(1.0) == BoundingBox(-1, -1, 2, 2)
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).expanded(-0.5)

    def test_clamp(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.clamp(Point(5, 1)) == Point(2, 1)
        assert box.clamp(Point(-1, -1)) == Point(0, 0)
        assert box.clamp(Point(1, 1)) == Point(1, 1)

    @given(st.lists(st.tuples(finite, finite), min_size=1, max_size=30))
    def test_from_points_contains_all(self, pts):
        box = BoundingBox.from_points(pts)
        for p in pts:
            assert box.contains(p)

    @given(
        st.lists(st.tuples(finite, finite), min_size=1, max_size=10),
        st.lists(st.tuples(finite, finite), min_size=1, max_size=10),
    )
    def test_union_contains_both(self, pts_a, pts_b):
        a = BoundingBox.from_points(pts_a)
        b = BoundingBox.from_points(pts_b)
        u = a.union(b)
        for p in pts_a + pts_b:
            assert u.contains(p)


class TestCentroid:
    def test_single_point(self):
        assert centroid([Point(2.0, 3.0)]) == Point(2.0, 3.0)

    def test_mean(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1.0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])
