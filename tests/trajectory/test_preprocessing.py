"""Tests for GPS preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trajectory.preprocessing import (
    fill_gaps,
    remove_speed_spikes,
    resample_uniform,
    stay_points,
)


class TestResample:
    def test_uniform_input_passthrough(self):
        times = np.arange(5, dtype=float)
        pos = np.column_stack([times * 2, times * 3])
        traj = resample_uniform(times, pos)
        assert len(traj) == 5
        assert np.allclose(traj.positions, pos)

    def test_interpolates_between_fixes(self):
        times = [0.0, 2.0]
        pos = np.array([[0.0, 0.0], [4.0, 8.0]])
        traj = resample_uniform(times, pos, tick=1.0)
        assert len(traj) == 3
        assert np.allclose(traj.positions[1], [2.0, 4.0])

    def test_irregular_sampling(self):
        times = [0.0, 0.5, 3.0]
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [6.0, 0.0]])
        traj = resample_uniform(times, pos, tick=1.0)
        assert len(traj) == 4
        # Between fixes (0.5, x=1) and (3.0, x=6): x(2) = 1 + 1.5/2.5 * 5.
        assert traj.positions[2, 0] == pytest.approx(4.0)

    def test_unsorted_fixes_sorted(self):
        times = [2.0, 0.0, 1.0]
        pos = np.array([[2.0, 0.0], [0.0, 0.0], [1.0, 0.0]])
        traj = resample_uniform(times, pos)
        assert np.allclose(traj.positions[:, 0], [0.0, 1.0, 2.0])

    def test_duplicate_timestamps_keep_last(self):
        times = [0.0, 1.0, 1.0, 2.0]
        pos = np.array([[0.0, 0.0], [5.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        traj = resample_uniform(times, pos)
        assert traj.positions[1, 0] == pytest.approx(1.0)

    def test_single_fix(self):
        traj = resample_uniform([5.0], np.array([[1.0, 2.0]]))
        assert len(traj) == 1

    def test_start_time(self):
        traj = resample_uniform([0.0, 1.0], np.zeros((2, 2)), start_time=100)
        assert traj.start_time == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            resample_uniform([], np.empty((0, 2)))
        with pytest.raises(ValueError):
            resample_uniform([0.0], np.array([[np.nan, 0.0]]))
        with pytest.raises(ValueError):
            resample_uniform([0.0, 1.0], np.zeros((2, 2)), tick=0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=30,
            unique=True,
        )
    )
    def test_grid_is_uniform_and_in_hull(self, times):
        times = sorted(times)
        rng = np.random.default_rng(0)
        pos = rng.uniform(-10, 10, (len(times), 2))
        traj = resample_uniform(times, pos, tick=1.0)
        # Interpolation never leaves the coordinate-wise hull.
        assert traj.positions[:, 0].max() <= pos[:, 0].max() + 1e-9
        assert traj.positions[:, 0].min() >= pos[:, 0].min() - 1e-9


class TestFillGaps:
    def test_no_gaps_returns_all(self):
        times = np.arange(5, dtype=float)
        pos = np.zeros((5, 2))
        t, p = fill_gaps(times, pos, max_gap=2.0)
        assert len(t) == 5

    def test_keeps_longest_segment(self):
        times = np.array([0.0, 1.0, 10.0, 11.0, 12.0, 13.0])
        pos = np.column_stack([times, times])
        t, p = fill_gaps(times, pos, max_gap=3.0)
        assert list(t) == [10.0, 11.0, 12.0, 13.0]
        assert p.shape == (4, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            fill_gaps([0.0], np.zeros((1, 2)), max_gap=0.0)


class TestSpeedSpikes:
    def test_clean_data_untouched(self):
        times = np.arange(5, dtype=float)
        pos = np.column_stack([times, np.zeros(5)])  # speed 1
        t, p = remove_speed_spikes(times, pos, max_speed=2.0)
        assert len(t) == 5

    def test_single_spike_removed(self):
        times = np.arange(5, dtype=float)
        pos = np.column_stack([times.copy(), np.zeros(5)])
        pos[2] = [100.0, 100.0]  # multipath jump
        t, p = remove_speed_spikes(times, pos, max_speed=2.0)
        assert list(t) == [0.0, 1.0, 3.0, 4.0]
        assert not np.any(p[:, 1] > 50)

    def test_first_fix_never_dropped(self):
        times = np.array([0.0, 1.0, 2.0])
        pos = np.array([[0.0, 0.0], [100.0, 0.0], [101.0, 0.0]])
        t, p = remove_speed_spikes(times, pos, max_speed=2.0)
        assert t[0] == 0.0

    def test_adjacent_spike_pair_removed(self):
        times = np.arange(6, dtype=float)
        pos = np.column_stack([times.copy(), np.zeros(6)])
        pos[2] = [100.0, 100.0]
        pos[3] = [101.0, 100.0]  # pair of bad fixes moving together
        t, p = remove_speed_spikes(times, pos, max_speed=2.0)
        assert not np.any(p[:, 1] > 50)
        assert t[0] == 0.0 and t[-1] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            remove_speed_spikes([0.0], np.zeros((1, 2)), max_speed=0.0)


class TestStayPoints:
    def test_detects_dwell(self):
        times = np.arange(10, dtype=float)
        pos = np.zeros((10, 2))
        pos[5:] = [100.0, 0.0]  # move away after 5 ticks at origin
        stays = stay_points(times, pos, radius=1.0, min_duration=3.0)
        assert len(stays) == 2
        assert stays[0].center.distance_to(
            __import__("repro").Point(0.0, 0.0)
        ) < 1e-9
        assert stays[0].duration == pytest.approx(4.0)

    def test_moving_object_has_no_stays(self):
        times = np.arange(10, dtype=float)
        pos = np.column_stack([10.0 * times, np.zeros(10)])
        assert stay_points(times, pos, radius=1.0, min_duration=2.0) == []

    def test_short_dwell_ignored(self):
        times = np.arange(4, dtype=float)
        pos = np.array([[0.0, 0.0], [0.1, 0.0], [50.0, 0.0], [100.0, 0.0]])
        assert stay_points(times, pos, radius=1.0, min_duration=5.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            stay_points([0.0], np.zeros((1, 2)), radius=0.0, min_duration=1.0)
        with pytest.raises(ValueError):
            stay_points([0.0], np.zeros((1, 2)), radius=1.0, min_duration=0.0)
