"""Tests for prediction-error metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trajectory import Point
from repro.trajectory.metrics import (
    euclidean_error,
    mean_error,
    median_error,
    percentile_error,
    root_mean_squared_error,
    summarize_errors,
)

errors_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestBasicMetrics:
    def test_euclidean_error(self):
        assert euclidean_error(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_mean(self):
        assert mean_error([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_rmse_geq_mean(self):
        errs = [1.0, 5.0, 2.0]
        assert root_mean_squared_error(errs) >= mean_error(errs)

    def test_median(self):
        assert median_error([1.0, 100.0, 2.0]) == pytest.approx(2.0)

    def test_percentile(self):
        assert percentile_error([0.0, 10.0], 0) == 0.0
        assert percentile_error([0.0, 10.0], 100) == 10.0

    def test_percentile_range_check(self):
        with pytest.raises(ValueError):
            percentile_error([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_error([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mean_error([1.0, -0.1])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            mean_error([[1.0, 2.0]])  # type: ignore[list-item]


class TestSummary:
    def test_summary_fields(self):
        s = summarize_errors([0.0, 10.0, 20.0])
        assert s.count == 3
        assert s.mean == pytest.approx(10.0)
        assert s.median == pytest.approx(10.0)
        assert s.maximum == 20.0
        assert s.p90 <= s.maximum
        assert "mean=" in str(s)

    @given(errors_strategy)
    def test_order_invariants(self, errs):
        s = summarize_errors(errs)
        assert 0.0 <= s.median <= s.maximum
        assert s.mean <= s.maximum
        assert s.mean <= s.rmse + 1e-9  # Jensen: RMSE >= mean
        assert s.p90 <= s.maximum

    @given(errors_strategy, st.floats(min_value=0.1, max_value=10.0))
    def test_mean_scales_linearly(self, errs, factor):
        scaled = [e * factor for e in errs]
        assert mean_error(scaled) == pytest.approx(mean_error(errs) * factor, rel=1e-9)
