"""Tests for TrajectoryDataset splits."""

import numpy as np
import pytest

from repro.trajectory import Trajectory, TrajectoryDataset


@pytest.fixture
def dataset():
    positions = np.arange(100, dtype=float).repeat(2).reshape(-1, 2)
    return TrajectoryDataset(name="toy", trajectory=Trajectory(positions), period=10)


class TestDataset:
    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            TrajectoryDataset("x", dataset.trajectory, period=0)
        with pytest.raises(ValueError):
            TrajectoryDataset("x", Trajectory(np.empty((0, 2))), period=10)

    def test_num_subtrajectories(self, dataset):
        assert dataset.num_subtrajectories == 10
        ragged = TrajectoryDataset(
            "r", Trajectory(np.zeros((95, 2))), period=10
        )
        assert ragged.num_subtrajectories == 10  # last one partial

    def test_subtrajectories(self, dataset):
        subs = dataset.subtrajectories()
        assert len(subs) == 10
        assert all(s.is_complete for s in subs)

    def test_training_split(self, dataset):
        train = dataset.training_split(6)
        assert len(train) == 60
        assert train.start_time == 0

    def test_training_split_bounds(self, dataset):
        with pytest.raises(ValueError):
            dataset.training_split(0)
        with pytest.raises(ValueError):
            dataset.training_split(11)

    def test_test_split_follows_training(self, dataset):
        test = dataset.test_split(6)
        assert test.start_time == 60
        assert len(test) == 40

    def test_test_split_requires_leftover(self, dataset):
        with pytest.raises(ValueError):
            dataset.test_split(10)

    def test_splits_partition(self, dataset):
        train = dataset.training_split(7)
        test = dataset.test_split(7)
        assert len(train) + len(test) == len(dataset.trajectory)
