"""Multi-process sharded serving, end to end.

Stands up a real deployment — router in this process, shard workers as
``python -m repro shard-worker`` subprocesses — and drives it over HTTP:
loadgen round-trip, byte-identity against a single-process service over
the same snapshot, a worker SIGKILL mid-flight (supervisor restarts it,
router degrades then recovers), and a graceful SIGTERM drain (exit 0).
"""

import asyncio
import json

import pytest

from repro import FleetPredictionModel
from repro.core.persistence import load_fleet, save_fleet
from repro.serve import (
    HttpClient,
    PredictionService,
    ServeConfig,
    build_workload,
    run_loadgen,
)
from repro.serve.handlers import encode_json, route
from repro.serve.shard import (
    RouterConfig,
    RouterServer,
    RouterService,
    ShardCluster,
)

from tests.serve.conftest import commuter_base, commuter_history

NUM_SHARDS = 2
OBJECT_IDS = ["bus-0", "bus-1", "bus-2"]
NUM_DAYS = 15


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory, hpm_config):
    fleet = FleetPredictionModel(hpm_config)
    fleet.fit(
        {
            object_id: commuter_history(num_days=NUM_DAYS, seed=23 + i)
            for i, object_id in enumerate(OBJECT_IDS)
        }
    )
    path = tmp_path_factory.mktemp("fleet") / "snapshot"
    save_fleet(fleet, path)
    return path


def recent_window(length: int = 4) -> list[list[float]]:
    base = commuter_base()
    start = NUM_DAYS * len(base)
    return [
        [start + i, float(base[i][0]) + 1.0, float(base[i][1]) + 1.0]
        for i in range(length)
    ]


def predict_body(object_id: str) -> bytes:
    window = recent_window()
    return encode_json(
        {
            "object_id": object_id,
            "recent": window,
            "query_time": int(window[-1][0]) + 3,
        }
    )


def shard_stack(snapshot_dir, scenario):
    """Run ``scenario(router, cluster, server)`` against a live stack."""

    async def body():
        router = RouterService(
            RouterConfig(
                num_shards=NUM_SHARDS,
                probe_interval=0.1,
                probe_fail_threshold=2,
            )
        )
        cluster = ShardCluster(
            snapshot_dir,
            NUM_SHARDS,
            restart_backoff=0.2,
            on_ready=router.attach_shard,
            on_down=router.detach_shard,
        )
        await cluster.start()
        server = RouterServer(router)
        try:
            await server.start()
            return await scenario(router, cluster, server)
        finally:
            await server.close()
            await cluster.stop(grace=5.0)

    return asyncio.run(body())


async def wait_for(predicate, timeout: float, interval: float = 0.1):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition not reached in time")
        await asyncio.sleep(interval)


class TestShardE2E:
    def test_loadgen_round_trip_and_byte_identity(self, snapshot_dir):
        single = PredictionService(load_fleet(snapshot_dir), ServeConfig())

        async def scenario(router, cluster, server):
            client = HttpClient("127.0.0.1", server.port)
            try:
                # Byte identity per object against the single-process
                # service over the very same snapshot.
                for object_id in OBJECT_IDS:
                    body = predict_body(object_id)
                    status, headers, routed = await client.request_raw(
                        "POST", "/predict", body
                    )
                    expected_status, _, expected, _ = await route(
                        single, "POST", "/predict", body
                    )
                    assert (status, routed) == (expected_status, expected)
                    assert headers["x-shard"] == str(
                        router.ring.shard_for(object_id)
                    )

                _, _, health = await client.request("GET", "/healthz")
                payload = json.loads(health)
                assert payload["status"] == "ok"
                assert payload["objects"] == len(OBJECT_IDS)
            finally:
                await client.close()

            # A loadgen burst through the router: zero errors, and the
            # per-shard breakdown attributes every response.
            workload = build_workload(
                commuter_history(num_days=NUM_DAYS, seed=23),
                object_id="bus-0",
                requests=80,
                distinct=10,
            )
            report = await run_loadgen(
                "127.0.0.1", server.port, workload, concurrency=4
            )
            assert report.errors == 0
            assert report.status_counts == {200: 80}
            owner = str(router.ring.shard_for("bus-0"))
            assert set(report.shard_status_counts) == {owner}
            assert sum(len(v) for v in report.shard_latencies_ms.values()) == 80
            assert f"shard {owner}:" in report.format()

        shard_stack(snapshot_dir, scenario)

    def test_worker_kill_degrades_then_recovers(self, snapshot_dir):
        async def scenario(router, cluster, server):
            victim_shard = router.ring.shard_for("bus-0")
            body = predict_body("bus-0")
            client = HttpClient("127.0.0.1", server.port)
            try:
                status, _, full_quality = await client.request_raw(
                    "POST", "/predict", body
                )
                assert status == 200

                old_pid = cluster.workers[victim_shard].process.pid
                cluster.kill_worker(victim_shard)
                await wait_for(
                    lambda: not cluster.workers[victim_shard].alive
                    or cluster.workers[victim_shard].process.pid != old_pid,
                    timeout=5.0,
                )

                # Mid-outage the router answers from its stale cache.
                status, headers, stale = await client.request_raw(
                    "POST", "/predict", body
                )
                assert status == 200
                assert headers.get("x-degraded") == "true"
                degraded = json.loads(stale)
                assert degraded.pop("degraded") is True
                assert degraded == json.loads(full_quality)

                # Supervision restarts the worker; the router re-attaches
                # and full-quality service resumes on the new port.
                await wait_for(
                    lambda: cluster.workers[victim_shard].process.pid != old_pid
                    and router.shard_states()
                    .get(victim_shard, {})
                    .get("healthy", False),
                    timeout=30.0,
                )
                assert cluster.workers[victim_shard].restarts == 1

                async def recovered():
                    status, headers, answer = await client.request_raw(
                        "POST", "/predict", body
                    )
                    return (
                        status == 200
                        and headers.get("x-degraded") != "true"
                        and answer == full_quality
                    )

                deadline = asyncio.get_running_loop().time() + 10.0
                while not await recovered():
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.2)
            finally:
                await client.close()

        shard_stack(snapshot_dir, scenario)

    def test_sigterm_drains_and_exits_zero(self, snapshot_dir):
        async def scenario(router, cluster, server):
            handle = cluster.workers[0]
            handle.process.terminate()
            await wait_for(lambda: handle.process.poll() is not None, timeout=10.0)
            assert handle.process.returncode == 0

        shard_stack(snapshot_dir, scenario)
