"""Sharded-serving units: queues, metric merging, snapshots, router.

The router tests run a real :class:`RouterService` against *in-process*
:class:`PredictionServer` workers (real sockets, no subprocesses — the
multi-process path lives in ``test_shard_e2e.py``) and assert the
headline contract: routed responses are byte-identical to a
single-process server over the whole fleet, and a dead shard degrades
through the stale-response cache before 503ing.
"""

import asyncio
import json

import pytest

from repro import FleetPredictionModel, TimedPoint
from repro.core.persistence import load_fleet, save_fleet
from repro.serve import (
    MetricsRegistry,
    PredictionServer,
    PredictionService,
    ServeConfig,
    merge_dumps,
)
from repro.serve.handlers import encode_json, route
from repro.serve.shard import (
    HashRing,
    RouterConfig,
    RouterService,
    load_shard_fleet,
    merge_snapshot,
    read_shard_manifest,
    split_snapshot,
)
from repro.serve.shard.forwarding import (
    FORWARD_PRIORITIES,
    ForwardJob,
    ForwardQueue,
    QueueFullError,
)

from tests.serve.conftest import commuter_base, commuter_history

NUM_OBJECTS = 4
OBJECT_IDS = [f"bus-{i}" for i in range(NUM_OBJECTS)]


@pytest.fixture(scope="module")
def multi_fleet(hpm_config) -> FleetPredictionModel:
    fleet = FleetPredictionModel(hpm_config)
    fleet.fit(
        {
            object_id: commuter_history(num_days=20, seed=11 + i)
            for i, object_id in enumerate(OBJECT_IDS)
        }
    )
    return fleet


def sub_fleet(fleet: FleetPredictionModel, object_ids) -> FleetPredictionModel:
    part = FleetPredictionModel(fleet.config)
    for object_id in object_ids:
        part.adopt_object(object_id, fleet[object_id])
    return part


def recent_window(length: int = 4) -> list[list[float]]:
    base = commuter_base()
    start = 20 * len(base)  # a fresh day after the 20-day history
    return [
        [start + i, float(base[i][0]) + 1.0, float(base[i][1]) + 1.0]
        for i in range(length)
    ]


def predict_body(object_id: str) -> bytes:
    window = recent_window()
    return encode_json(
        {
            "object_id": object_id,
            "recent": window,
            "query_time": int(window[-1][0]) + 3,
        }
    )


# ----------------------------------------------------------------------
# ForwardQueue
# ----------------------------------------------------------------------
def make_job(priority: str) -> ForwardJob:
    return ForwardJob(
        priority=FORWARD_PRIORITIES[priority],
        method="POST",
        path="/predict",
        body=b"{}",
        future=asyncio.get_event_loop().create_future(),
    )


class TestForwardQueue:
    def test_priority_order_predict_before_ingest_before_background(self):
        async def body():
            queue = ForwardQueue(max_depth=8)
            background = make_job("background")
            ingest = make_job("ingest")
            predict = make_job("predict")
            for job in (background, ingest, predict):
                queue.offer(job)
            assert await queue.take() is predict
            assert await queue.take() is ingest
            assert await queue.take() is background

        asyncio.run(body())

    def test_watermark_sheds_lower_priority_with_hysteresis(self):
        async def body():
            queue = ForwardQueue(max_depth=8, high_watermark=4, low_watermark=1)
            for _ in range(4):
                queue.offer(make_job("predict"))
            with pytest.raises(QueueFullError, match="watermark"):
                queue.offer(make_job("ingest"))
            # Predicts still pass while shedding.
            queue.offer(make_job("predict"))
            # Drain below the low watermark: shedding clears.
            while queue.depth() > 1:
                await queue.take()
            queue.offer(make_job("ingest"))
            assert queue.stats["shed_watermark"] == 1

        asyncio.run(body())

    def test_eviction_fails_newest_lowest_priority_job(self):
        async def body():
            queue = ForwardQueue(max_depth=3, high_watermark=3, low_watermark=0)
            victim_old = make_job("background")
            victim_new = make_job("background")
            keeper = make_job("predict")
            for job in (victim_old, keeper, victim_new):
                queue.offer(job)
            queue.offer(make_job("predict"))  # evicts the *newest* background
            assert victim_new.future.done()
            with pytest.raises(QueueFullError, match="evicted"):
                victim_new.future.result()
            assert not victim_old.future.done()
            # At capacity a lower-priority arrival sheds at the
            # watermark before it could ever evict its betters.
            with pytest.raises(QueueFullError, match="watermark"):
                queue.offer(make_job("background"))
            # take() skips the evicted corpse silently.
            taken = [await queue.take() for _ in range(3)]
            assert victim_new not in taken

    def test_full_queue_of_equals_refuses_new_arrivals(self):
        async def body():
            queue = ForwardQueue(max_depth=2, high_watermark=2, low_watermark=0)
            queue.offer(make_job("predict"))
            queue.offer(make_job("predict"))
            # No lower-priority victim available: refuse, evict nothing.
            with pytest.raises(QueueFullError, match="queue full"):
                queue.offer(make_job("predict"))
            assert queue.depth() == 2

        asyncio.run(body())

        asyncio.run(body())

    def test_close_fails_everything_queued(self):
        async def body():
            queue = ForwardQueue(max_depth=4)
            jobs = [make_job("predict") for _ in range(3)]
            for job in jobs:
                queue.offer(job)
            queue.close()
            for job in jobs:
                with pytest.raises(QueueFullError, match="closed"):
                    job.future.result()
            with pytest.raises(QueueFullError):
                queue.offer(make_job("predict"))
            with pytest.raises(asyncio.CancelledError):
                await queue.take()

        asyncio.run(body())

    def test_bad_watermarks_raise(self):
        with pytest.raises(ValueError):
            ForwardQueue(max_depth=0)
        with pytest.raises(ValueError):
            ForwardQueue(max_depth=8, high_watermark=2, low_watermark=5)


# ----------------------------------------------------------------------
# metrics merging
# ----------------------------------------------------------------------
class TestMergeDumps:
    def test_counters_gauges_histograms_sum(self):
        shards = []
        for i in range(3):
            registry = MetricsRegistry()
            registry.counter("requests_total").inc(10 * (i + 1))
            registry.gauge("serve_objects").set(i + 1)
            histogram = registry.histogram("latency", buckets=(0.1, 1.0))
            histogram.observe(0.05)
            histogram.observe(5.0)
            shards.append(registry.dump())
        merged = merge_dumps(shards)
        assert merged.counter("requests_total").value == 60
        assert merged.gauge("serve_objects").value == 6
        histogram = merged.histogram("latency", buckets=(0.1, 1.0))
        assert histogram.raw_counts() == [3, 0, 3]
        assert histogram.count == 6

    def test_mismatched_histogram_buckets_refuse_to_merge(self):
        a = MetricsRegistry()
        a.histogram("latency", buckets=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("latency", buckets=(0.5, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            merge_dumps([a.dump(), b.dump()])

    def test_dump_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        registry.histogram("h").observe(0.3)
        wire = json.loads(encode_json(registry.dump()))
        merged = merge_dumps([wire])
        assert merged.counter("n").value == 2


# ----------------------------------------------------------------------
# snapshot split / merge and filtered loads
# ----------------------------------------------------------------------
class TestShardSnapshots:
    def test_split_matches_ring_and_merge_round_trips(
        self, multi_fleet, tmp_path
    ):
        plain = tmp_path / "plain"
        sharded = tmp_path / "sharded"
        merged_dir = tmp_path / "merged"
        save_fleet(multi_fleet, plain)

        placement = split_snapshot(plain, sharded, num_shards=2)
        ring = HashRing(2)
        for shard_id, object_ids in placement.items():
            for object_id in object_ids:
                assert ring.shard_for(object_id) == shard_id
        manifest = read_shard_manifest(sharded)
        assert manifest["num_shards"] == 2
        assert manifest["objects_total"] == NUM_OBJECTS

        merged_ids = merge_snapshot(sharded, merged_dir)
        assert merged_ids == sorted(OBJECT_IDS)
        reloaded = load_fleet(merged_dir)
        assert reloaded.object_ids() == multi_fleet.object_ids()
        # The round-tripped models answer identically.
        window = [
            TimedPoint(int(t), x, y) for t, x, y in recent_window()
        ]
        query_time = window[-1].t + 3
        recents = {object_id: window for object_id in OBJECT_IDS}
        before = multi_fleet.predict_all(recents, query_time)
        after = reloaded.predict_all(recents, query_time)
        assert {k: v.location for k, v in before.items()} == {
            k: v.location for k, v in after.items()
        }

    def test_load_shard_fleet_from_sharded_and_plain_snapshots(
        self, multi_fleet, tmp_path
    ):
        plain = tmp_path / "plain"
        sharded = tmp_path / "sharded"
        save_fleet(multi_fleet, plain)
        placement = split_snapshot(plain, sharded, num_shards=2)
        for shard_id in (0, 1):
            from_sharded = load_shard_fleet(sharded, shard_id, 2)
            from_plain = load_shard_fleet(plain, shard_id, 2)
            assert from_sharded.object_ids() == placement[shard_id]
            assert from_plain.object_ids() == placement[shard_id]

    def test_load_shard_fleet_rejects_mismatched_ring(
        self, multi_fleet, tmp_path
    ):
        plain = tmp_path / "plain"
        sharded = tmp_path / "sharded"
        save_fleet(multi_fleet, plain)
        split_snapshot(plain, sharded, num_shards=2)
        with pytest.raises(ValueError, match="split for ring"):
            load_shard_fleet(sharded, 0, 3)

    @pytest.mark.parametrize("fmt", [1, 2])
    def test_split_merge_identity_both_formats(
        self, multi_fleet, tmp_path, fmt
    ):
        from repro.core.fingerprint import model_fingerprint

        plain = tmp_path / "plain"
        sharded = tmp_path / "sharded"
        merged_dir = tmp_path / "merged"
        save_fleet(multi_fleet, plain, format=fmt)
        split_snapshot(plain, sharded, num_shards=3)

        # Each shard dir is itself a loadable snapshot of the same format.
        shard0 = json.loads(
            (sharded / "shard_0000" / "manifest.json").read_text()
        )
        assert shard0["format_version"] == fmt

        reference = {
            oid: model_fingerprint(multi_fleet[oid])
            for oid in multi_fleet.object_ids()
        }
        seen = {}
        for shard_id in range(3):
            worker_fleet = load_shard_fleet(sharded, shard_id, 3)
            for oid in worker_fleet.object_ids():
                seen[oid] = model_fingerprint(worker_fleet[oid])
        assert seen == reference

        merge_snapshot(sharded, merged_dir)
        merged = load_fleet(merged_dir)
        assert {
            oid: model_fingerprint(merged[oid]) for oid in merged.object_ids()
        } == reference

    def test_load_fleet_object_ids_filter(self, multi_fleet, tmp_path):
        plain = tmp_path / "plain"
        save_fleet(multi_fleet, plain)
        subset = load_fleet(plain, object_ids=["bus-1", "bus-3"])
        assert subset.object_ids() == ["bus-1", "bus-3"]
        assert len(load_fleet(plain, object_ids=[])) == 0
        with pytest.raises(ValueError, match="not in the snapshot manifest"):
            load_fleet(plain, object_ids=["ghost"])


# ----------------------------------------------------------------------
# RouterService over in-process workers
# ----------------------------------------------------------------------
NUM_SHARDS = 2


def router_test(multi_fleet, scenario, **router_kwargs):
    """Run ``scenario(router, full_service)`` with live in-process workers."""

    async def body():
        ring = HashRing(NUM_SHARDS)
        groups = ring.assignments(OBJECT_IDS)
        servers = []
        router = RouterService(
            RouterConfig(
                num_shards=NUM_SHARDS, probe_interval=0.05, **router_kwargs
            )
        )
        full_service = PredictionService(multi_fleet, ServeConfig())
        try:
            for shard_id in range(NUM_SHARDS):
                service = PredictionService(
                    sub_fleet(multi_fleet, groups[shard_id]), ServeConfig()
                )
                server = PredictionServer(service)
                await server.start()
                servers.append(server)
                router.attach_shard(shard_id, "127.0.0.1", server.port)
            return await scenario(router, full_service)
        finally:
            await router.stop()
            for server in servers:
                await server.close()
            await full_service.drain()

    return asyncio.run(body())


class TestRouterService:
    def test_predict_routes_by_ring_and_matches_single_process_bytes(
        self, multi_fleet
    ):
        async def scenario(router, full_service):
            ring = router.ring
            for object_id in OBJECT_IDS:
                body = predict_body(object_id)
                status, _, routed, headers = await router.handle(
                    "POST", "/predict", body
                )
                expected_status, _, expected, _ = await route(
                    full_service, "POST", "/predict", body
                )
                assert (status, routed) == (expected_status, expected)
                assert headers["X-Shard"] == str(ring.shard_for(object_id))

        router_test(multi_fleet, scenario)

    def test_objects_and_predict_all_merge_byte_identically(self, multi_fleet):
        async def scenario(router, full_service):
            status, _, merged, _ = await router.handle("GET", "/objects", b"")
            _, _, expected, _ = await route(full_service, "GET", "/objects", b"")
            assert status == 200
            assert merged == expected

            window = recent_window()
            recents = {object_id: window for object_id in OBJECT_IDS}
            recents["ghost"] = window  # unknown everywhere, never fatal
            body = encode_json(
                {"query_time": int(window[-1][0]) + 3, "recents": recents}
            )
            status, _, merged, _ = await router.handle(
                "POST", "/predict_all", body
            )
            _, _, expected, _ = await route(
                full_service, "POST", "/predict_all", body
            )
            assert status == 200
            assert merged == expected
            assert json.loads(merged)["unknown"] == ["ghost"]

        router_test(multi_fleet, scenario)

    def test_metrics_aggregates_every_shard_registry(self, multi_fleet):
        async def scenario(router, full_service):
            for object_id in OBJECT_IDS:
                await router.handle("POST", "/predict", predict_body(object_id))
            status, content_type, text, _ = await router.handle(
                "GET", "/metrics", b""
            )
            assert status == 200 and content_type.startswith("text/plain")
            exposition = text.decode()
            assert exposition.startswith("# router: aggregated 2/2")
            for line in exposition.splitlines():
                if line.startswith("serve_predict_requests_total "):
                    assert float(line.split()[-1]) == len(OBJECT_IDS)
                    break
            else:
                pytest.fail("merged exposition lost the shard counters")

            status, _, dump_body, _ = await router.handle(
                "GET", "/metrics.json", b""
            )
            merged = merge_dumps([json.loads(dump_body)])
            assert merged.counter("serve_predict_requests_total").value == len(
                OBJECT_IDS
            )

        router_test(multi_fleet, scenario)

    def test_healthz_rolls_up_shard_status(self, multi_fleet):
        async def scenario(router, full_service):
            await asyncio.sleep(0.2)  # let probes report object counts
            _, _, body, _ = await router.handle("GET", "/healthz", b"")
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["shards"] == {"healthy": 2, "total": 2}
            assert payload["objects"] == NUM_OBJECTS

        router_test(multi_fleet, scenario)

    def test_dead_shard_serves_stale_then_503(self, multi_fleet):
        async def scenario(router, full_service):
            cached_id, fresh_id = OBJECT_IDS[0], OBJECT_IDS[1]
            body = predict_body(cached_id)
            status, _, full_quality, _ = await router.handle(
                "POST", "/predict", body
            )
            assert status == 200

            for shard_id in range(NUM_SHARDS):
                router.detach_shard(shard_id)

            status, _, stale, headers = await router.handle(
                "POST", "/predict", body
            )
            assert status == 200
            assert headers["X-Cache"] == "stale"
            assert headers["X-Degraded"] == "true"
            degraded = json.loads(stale)
            assert degraded.pop("degraded") is True
            assert degraded == json.loads(full_quality)

            status, _, refused, headers = await router.handle(
                "POST", "/predict", predict_body(fresh_id)
            )
            assert status == 503
            assert "Retry-After" in headers
            assert "unavailable" in json.loads(refused)["error"]

            _, _, health, _ = await router.handle("GET", "/healthz", b"")
            assert json.loads(health)["status"] == "degraded"

        router_test(multi_fleet, scenario)

    def test_unknown_routes_mirror_single_process_statuses(self, multi_fleet):
        async def scenario(router, full_service):
            status, _, _, _ = await router.handle("GET", "/nowhere", b"")
            assert status == 404
            status, _, _, _ = await router.handle("GET", "/predict", b"")
            assert status == 405
            status, _, body, _ = await router.handle("POST", "/predict", b"{}")
            assert status == 400
            assert "query_time" in json.loads(body)["error"]

        router_test(multi_fleet, scenario)
