"""End-to-end serve tests: real sockets, real model, real bytes.

Each test stands up a :class:`PredictionServer` on an ephemeral port
inside ``asyncio.run``, drives it over HTTP with the loadgen client, and
shuts it down cleanly.  The headline assertions mirror the subsystem's
contract: served predictions are byte-identical to direct in-process
``predict`` calls, the cache actually hits, and `/metrics` reports it
all.
"""

import asyncio
import json

import pytest

from repro import FleetPredictionModel
from repro.serve import (
    HttpClient,
    PredictionServer,
    PredictionService,
    ServeConfig,
    build_workload,
    ingest_stream,
    render_predict_body,
    run_loadgen,
)

from tests.serve.conftest import commuter_base


def serve_test(fleet, config, scenario):
    """Run ``scenario(service, server, client)`` against a live server."""

    async def body():
        service = PredictionService(fleet, config)
        server = PredictionServer(service)
        await server.start()
        client = HttpClient("127.0.0.1", server.port)
        try:
            return await scenario(service, server, client)
        finally:
            await client.close()
            await server.close()

    return asyncio.run(body())


def new_day_window(history, length=4):
    """Fixes continuing the route on a fresh day after the history."""
    base = commuter_base()
    start = len(history)
    return [
        (start + i, float(base[i][0]) + 1.0, float(base[i][1]) + 1.0)
        for i in range(length)
    ]


class TestEndpoints:
    def test_healthz_and_objects(self, fleet, history):
        async def scenario(service, server, client):
            status, _, body = await client.request("GET", "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok", "objects": 1}

            status, _, body = await client.request("GET", "/objects")
            assert status == 200
            rows = json.loads(body)["objects"]
            assert rows[0]["object_id"] == "default"
            assert rows[0]["patterns"] > 0

        serve_test(fleet, ServeConfig(), scenario)

    def test_error_paths(self, fleet):
        async def scenario(service, server, client):
            status, _, body = await client.request("GET", "/nope")
            assert status == 404

            status, _, body = await client.request("GET", "/predict")
            assert status == 405

            status, _, body = await client.request("POST", "/predict", {})
            assert status == 400
            assert "query_time" in json.loads(body)["error"]

            status, _, body = await client.request(
                "POST",
                "/predict",
                {"object_id": "ghost", "query_time": 10_000,
                 "recent": [[9_990, 0.0, 0.0]]},
            )
            assert status == 404

            # Query time in the past of the window -> model ValueError -> 400.
            status, _, body = await client.request(
                "POST",
                "/predict",
                {"object_id": "default", "query_time": 1,
                 "recent": [[9_990, 0.0, 0.0]]},
            )
            assert status == 400

        serve_test(fleet, ServeConfig(), scenario)


class TestPredict:
    def test_served_bytes_match_direct_predict(self, fleet, history):
        """The acceptance bar: HTTP body == canonical direct-call bytes."""
        recent = new_day_window(history)
        query_time = recent[-1][0] + 3

        async def scenario(service, server, client):
            bodies = []
            for k in (None, 3):
                payload = {
                    "object_id": "default",
                    "recent": [list(f) for f in recent],
                    "query_time": query_time,
                }
                if k is not None:
                    payload["k"] = k
                status, headers, body = await client.request(
                    "POST", "/predict", payload
                )
                assert status == 200
                bodies.append((k, headers, body))
            return bodies

        bodies = serve_test(fleet, ServeConfig(update_after=None), scenario)
        from repro.trajectory.point import TimedPoint

        window = [TimedPoint(t, x, y) for t, x, y in recent]
        for k, headers, body in bodies:
            direct = fleet["default"].predict(window, query_time, k)
            assert body == render_predict_body("default", query_time, direct)
        # Pattern-based answers (not just motion fallback) went over the wire.
        assert b'"method":"fqp"' in bodies[0][2]

    def test_cache_hit_on_repeat_and_header(self, fleet, history):
        recent = new_day_window(history)
        payload = {
            "object_id": "default",
            "recent": [list(f) for f in recent],
            "query_time": recent[-1][0] + 3,
        }

        async def scenario(service, server, client):
            _, first_headers, first_body = await client.request(
                "POST", "/predict", payload
            )
            _, second_headers, second_body = await client.request(
                "POST", "/predict", payload
            )
            assert first_headers["x-cache"] == "miss"
            assert second_headers["x-cache"] == "hit"
            assert first_body == second_body
            assert service.cache.hits == 1

        serve_test(fleet, ServeConfig(), scenario)

    def test_batching_disabled_still_serves(self, fleet, history):
        recent = new_day_window(history)
        payload = {
            "object_id": "default",
            "recent": [list(f) for f in recent],
            "query_time": recent[-1][0] + 3,
        }

        async def scenario(service, server, client):
            status, _, body = await client.request("POST", "/predict", payload)
            assert status == 200
            assert service.batcher.batches == 0

        serve_test(
            fleet,
            ServeConfig(enable_batching=False, enable_cache=False),
            scenario,
        )


class TestIngest:
    def test_ingest_feeds_tracker_and_serves_windowless_predicts(
        self, fleet, history
    ):
        fixes = new_day_window(history, length=6)

        async def scenario(service, server, client):
            accepted = await ingest_stream(
                "127.0.0.1", server.port, "default", fixes, chunk=4
            )
            assert accepted == len(fixes)

            # Predict with no explicit window: the tracker supplies it.
            status, _, body = await client.request(
                "POST",
                "/predict",
                {"object_id": "default", "query_time": fixes[-1][0] + 3},
            )
            assert status == 200
            tracker = service.trackers["default"]
            assert tracker.pending_count == len(fixes)

            payload = json.loads(body)
            direct = fleet.predict(
                "default", tracker.window, fixes[-1][0] + 3
            )
            assert payload["predictions"][0]["x"] == direct[0].location.x

        serve_test(fleet, ServeConfig(update_after=None), scenario)

    def test_ingest_invalidates_cache(self, fleet, history):
        fixes = new_day_window(history, length=6)

        async def scenario(service, server, client):
            await ingest_stream(
                "127.0.0.1", server.port, "default", fixes[:4]
            )
            payload = {"object_id": "default", "query_time": fixes[-1][0] + 5}
            _, h1, _ = await client.request("POST", "/predict", payload)
            _, h2, _ = await client.request("POST", "/predict", payload)
            assert (h1["x-cache"], h2["x-cache"]) == ("miss", "hit")

            # New fixes shift the window: the cached answer must die.
            await ingest_stream(
                "127.0.0.1", server.port, "default", fixes[4:]
            )
            _, h3, _ = await client.request("POST", "/predict", payload)
            assert h3["x-cache"] == "miss"
            assert service.cache.invalidations > 0

        serve_test(fleet, ServeConfig(update_after=None), scenario)

    def test_background_refit_runs_when_due(self, fleet, history):
        fixes = new_day_window(history, length=12)

        async def scenario(service, server, client):
            status, _, body = await client.request(
                "POST",
                "/ingest",
                {"object_id": "default", "fixes": [list(f) for f in fixes]},
            )
            assert status == 200
            assert json.loads(body)["refit_scheduled"] is True
            await service.drain()
            tracker = service.trackers["default"]
            assert tracker.pending_count == 0  # flushed into the model
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_refits_total"]["value"] == 1
            assert snapshot["serve_refit_fixes_total"]["value"] == len(fixes)
            assert len(fleet["default"].history_) == len(history) + len(fixes)

        serve_test(fleet, ServeConfig(update_after=10), scenario)

    def test_out_of_order_fix_rejected(self, fleet, history):
        fixes = new_day_window(history, length=2)

        async def scenario(service, server, client):
            await ingest_stream("127.0.0.1", server.port, "default", fixes)
            status, _, body = await client.request(
                "POST",
                "/ingest",
                {"object_id": "default", "fixes": [list(fixes[0])]},
            )
            assert status == 400
            assert "not after" in json.loads(body)["error"]

        serve_test(fleet, ServeConfig(), scenario)


class TestLoadgenRoundTrip:
    def test_500_requests_with_cache_hits_and_metrics(self, fleet, history):
        """Acceptance: >= 500 predicts in one process, hit-rate > 0 at
        /metrics, and spot-checked byte-identical serving."""
        workload = build_workload(
            history, requests=500, window=4, max_horizon=5, distinct=40
        )

        async def scenario(service, server, client):
            report = await run_loadgen(
                "127.0.0.1", server.port, workload, concurrency=8
            )
            status, _, metrics_body = await client.request("GET", "/metrics")
            assert status == 200
            return report, metrics_body.decode("utf-8")

        report, metrics_text = serve_test(fleet, ServeConfig(), scenario)

        assert report.requests == 500
        assert report.errors == 0
        assert report.cache_hits > 0
        assert report.throughput > 0
        assert report.percentile(50) <= report.percentile(95)

        # Cache hits are reported at /metrics and match the client's view.
        metrics = {}
        for line in metrics_text.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.rpartition(" ")
                metrics[name] = float(value)
        assert metrics["serve_cache_hits_total"] == report.cache_hits
        assert metrics["serve_cache_hits_total"] > 0
        # Latency histograms counted every request and every model pass.
        assert metrics["serve_http_request_seconds_count"] >= 500
        assert metrics['serve_http_request_seconds_bucket{le="+Inf"}'] >= 500
        assert metrics["model_predict_seconds_count"] > 0
        assert (
            metrics["model_predict_seconds_count"]
            == metrics["fleet_predict_total"]
        )
        # Every served answer was either a cache hit or a model pass.
        assert (
            metrics["serve_cache_hits_total"]
            + metrics["serve_cache_misses_total"]
            == 500
        )

    def test_served_workload_matches_direct_calls(self, fleet, history):
        """Every distinct workload query byte-compares to a direct call."""
        workload = build_workload(
            history, requests=40, window=4, max_horizon=5, distinct=10
        )
        distinct = {q.recent: q for q in workload}.values()

        async def scenario(service, server, client):
            out = []
            for query in distinct:
                status, _, body = await client.request(
                    "POST", "/predict", query.payload()
                )
                assert status == 200
                out.append((query, body))
            return out

        from repro.trajectory.point import TimedPoint

        served = serve_test(fleet, ServeConfig(update_after=None), scenario)
        for query, body in served:
            window = [TimedPoint(t, x, y) for t, x, y in query.recent]
            direct = fleet["default"].predict(window, query.query_time, query.k)
            assert body == render_predict_body(
                query.object_id, query.query_time, direct
            )


class TestSnapshotWarmup:
    def test_from_snapshot_parallel_warmup(self, fleet, tmp_path):
        """from_snapshot with warm-up workers serves the same fleet."""
        from repro.core.persistence import save_fleet
        from repro.serve import PredictionService

        snapshot = tmp_path / "snapshot"
        save_fleet(fleet, snapshot)
        service = PredictionService.from_snapshot(snapshot, warmup_workers=2)
        assert service.fleet.object_ids() == fleet.object_ids()
        assert service.fleet.total_patterns() == fleet.total_patterns()
        assert service.metrics.gauge("serve_objects").value == len(fleet)
