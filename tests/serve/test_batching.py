"""Unit tests for batch-window coalescing."""

import asyncio

import pytest

from repro.serve.batching import RequestBatcher


class Recorder:
    """A batch executor that records every (key, requests) pass."""

    def __init__(self, fail=False):
        self.calls = []
        self.fail = fail

    def __call__(self, key, requests):
        self.calls.append((key, list(requests)))
        if self.fail:
            raise RuntimeError("boom")
        return [f"{key}:{r}" for r in requests]


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_distinct_requests_share_one_pass(self):
        recorder = Recorder()

        async def scenario():
            batcher = RequestBatcher(recorder, max_batch=10, max_delay=0.01)
            return await asyncio.gather(
                *(batcher.submit("obj", f"r{i}") for i in range(5))
            )

        results = run(scenario())
        assert results == [f"obj:r{i}" for i in range(5)]
        assert len(recorder.calls) == 1
        assert recorder.calls[0] == ("obj", [f"r{i}" for i in range(5)])

    def test_identical_requests_deduplicate(self):
        recorder = Recorder()

        async def scenario():
            batcher = RequestBatcher(recorder, max_batch=10, max_delay=0.01)
            results = await asyncio.gather(
                *(batcher.submit("obj", "same") for _ in range(8))
            )
            return batcher, results

        batcher, results = run(scenario())
        assert results == ["obj:same"] * 8
        # One unique request computed once; seven waiters coalesced.
        assert recorder.calls == [("obj", ["same"])]
        assert batcher.coalesced == 7
        assert batcher.submitted == 8

    def test_keys_batch_independently(self):
        recorder = Recorder()

        async def scenario():
            batcher = RequestBatcher(recorder, max_batch=10, max_delay=0.01)
            await asyncio.gather(
                batcher.submit("a", "r"), batcher.submit("b", "r")
            )

        run(scenario())
        assert sorted(key for key, _ in recorder.calls) == ["a", "b"]

    def test_max_batch_flushes_early(self):
        recorder = Recorder()

        async def scenario():
            batcher = RequestBatcher(recorder, max_batch=2, max_delay=60.0)
            # With a 60 s window, only the size bound can flush these.
            return await asyncio.wait_for(
                asyncio.gather(
                    batcher.submit("obj", "r1"), batcher.submit("obj", "r2")
                ),
                timeout=5.0,
            )

        assert run(scenario()) == ["obj:r1", "obj:r2"]
        assert len(recorder.calls) == 1

    def test_requests_after_flush_start_a_new_batch(self):
        recorder = Recorder()

        async def scenario():
            batcher = RequestBatcher(recorder, max_batch=10, max_delay=0.001)
            first = await batcher.submit("obj", "r1")
            second = await batcher.submit("obj", "r2")
            return first, second

        assert run(scenario()) == ("obj:r1", "obj:r2")
        assert len(recorder.calls) == 2

    def test_executor_failure_propagates_to_all_waiters(self):
        recorder = Recorder(fail=True)

        async def scenario():
            batcher = RequestBatcher(recorder, max_batch=10, max_delay=0.005)
            results = await asyncio.gather(
                batcher.submit("obj", "r1"),
                batcher.submit("obj", "r2"),
                return_exceptions=True,
            )
            return results

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            batcher = RequestBatcher(
                lambda key, requests: [], max_batch=10, max_delay=0.001
            )
            with pytest.raises(RuntimeError, match="returned 0 results"):
                await batcher.submit("obj", "r1")

        run(scenario())

    def test_drain_flushes_pending_batches(self):
        recorder = Recorder()

        async def scenario():
            batcher = RequestBatcher(recorder, max_batch=10, max_delay=60.0)
            pending = asyncio.ensure_future(batcher.submit("obj", "r1"))
            await asyncio.sleep(0)  # let submit enqueue
            await batcher.drain()
            return await pending

        assert run(scenario()) == "obj:r1"
        assert len(recorder.calls) == 1

    def test_validation(self):
        execute = lambda key, requests: []
        with pytest.raises(ValueError):
            RequestBatcher(execute, max_batch=0)
        with pytest.raises(ValueError):
            RequestBatcher(execute, max_delay=-1)
