"""Unit tests for the LRU + TTL prediction cache."""

import pytest

from repro.serve.cache import PredictionCache
from repro.serve.metrics import MetricsRegistry
from repro.trajectory.point import TimedPoint


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def window(*coords):
    return [TimedPoint(t, float(x), float(y)) for t, x, y in coords]


class TestKeys:
    def test_jitter_below_quantum_maps_to_same_key(self):
        cache = PredictionCache(quantum=10.0)
        a = cache.make_key("o", window((1, 100.0, 200.0)), 7, None)
        b = cache.make_key("o", window((1, 102.0, 198.0)), 7, None)
        assert a == b

    def test_distinct_dimensions_distinct_keys(self):
        cache = PredictionCache(quantum=1.0)
        base = window((1, 10.0, 10.0))
        key = cache.make_key("o", base, 7, None)
        assert cache.make_key("other", base, 7, None) != key
        assert cache.make_key("o", base, 8, None) != key
        assert cache.make_key("o", base, 7, 3) != key
        assert cache.make_key("o", window((2, 10.0, 10.0)), 7, None) != key


class TestLruTtl:
    def test_round_trip_and_hit_accounting(self):
        cache = PredictionCache(clock=FakeClock())
        key = cache.make_key("o", window((1, 0, 0)), 5, None)
        assert cache.get(key) is None
        cache.put(key, "answer")
        assert cache.get(key) == "answer"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = PredictionCache(max_entries=2, ttl=None)
        k1, k2, k3 = (("o", (), t, None) for t in (1, 2, 3))
        cache.put(k1, "a")
        cache.put(k2, "b")
        assert cache.get(k1) == "a"  # touch k1 so k2 becomes LRU
        cache.put(k3, "c")
        assert cache.get(k2) is None
        assert cache.get(k1) == "a"
        assert cache.get(k3) == "c"
        assert cache.evictions == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = PredictionCache(ttl=10.0, clock=clock)
        key = ("o", (), 5, None)
        cache.put(key, "answer")
        clock.advance(9.9)
        assert cache.get(key) == "answer"
        clock.advance(0.2)
        assert cache.get(key) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_invalidate_drops_only_that_object(self):
        cache = PredictionCache(ttl=None)
        cache.put(("a", (), 1, None), "x")
        cache.put(("a", (), 2, None), "y")
        cache.put(("b", (), 1, None), "z")
        assert cache.invalidate("a") == 2
        assert cache.get(("a", (), 1, None)) is None
        assert cache.get(("b", (), 1, None)) == "z"
        assert cache.invalidate("missing") == 0

    def test_metrics_wiring(self):
        registry = MetricsRegistry()
        cache = PredictionCache(max_entries=1, ttl=None, metrics=registry)
        cache.put(("a", (), 1, None), "x")
        cache.get(("a", (), 1, None))
        cache.get(("a", (), 2, None))
        cache.put(("a", (), 2, None), "y")  # evicts the first entry
        snap = registry.snapshot()
        assert snap["serve_cache_hits_total"]["value"] == 1
        assert snap["serve_cache_misses_total"]["value"] == 1
        assert snap["serve_cache_evictions_total"]["value"] == 1
        assert snap["serve_cache_entries"]["value"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionCache(max_entries=0)
        with pytest.raises(ValueError):
            PredictionCache(ttl=0)
        with pytest.raises(ValueError):
            PredictionCache(quantum=0)
