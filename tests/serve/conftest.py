"""Shared serve-suite fixtures: a small fitted commuter fleet.

The commuter history mirrors ``examples/quickstart.py`` — a daily
east-then-north route with mild GPS noise — small enough to fit in
milliseconds but rich enough that FQP/BQP answer most queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FleetPredictionModel, HPMConfig, Trajectory

PERIOD = 24


def commuter_base(period: int = PERIOD) -> np.ndarray:
    base = np.zeros((period, 2))
    for t in range(period):
        if t < period // 2:
            base[t] = [400.0 * t, 0.0]
        else:
            base[t] = [400.0 * (period // 2), 400.0 * (t - period // 2)]
    return base


def commuter_history(num_days: int = 40, period: int = PERIOD, seed: int = 7) -> Trajectory:
    rng = np.random.default_rng(seed)
    base = commuter_base(period)
    days = [base + rng.normal(0, 20.0, base.shape) for _ in range(num_days)]
    return Trajectory(np.vstack(days))


@pytest.fixture(scope="session")
def history() -> Trajectory:
    return commuter_history()


@pytest.fixture(scope="session")
def hpm_config() -> HPMConfig:
    return HPMConfig(
        period=PERIOD,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=8,
        recent_window=4,
    )


@pytest.fixture
def fleet(history, hpm_config) -> FleetPredictionModel:
    fleet = FleetPredictionModel(hpm_config)
    fleet.fit({"default": history})
    return fleet
