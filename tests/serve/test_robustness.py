"""Robustness suite: admission, deadlines, refit lifecycle, fault drills.

Covers the serve hardening layer end to end: the token-bucket /
watermark admission controller, HTTP read limits (431/413/idle reaping),
deadline propagation with the stale → motion → 503 degradation ladder,
the refit scheduler's retry/backoff/dead-letter lifecycle (including the
old drain/ingest race and the lost-pending-fixes bug), and the seeded
fault injector.  Anything that can be pinned deterministically is — fake
clocks, zero jitter, probability-1 fault plans.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.serve import (
    AdmissionController,
    ChaosConfig,
    FaultInjector,
    HttpClient,
    LoadReport,
    PredictionServer,
    PredictionService,
    RefitScheduler,
    ServeConfig,
    TokenBucket,
)
from repro.serve.chaos import ChaosError

from tests.serve.conftest import commuter_base


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def serve_test(fleet, config, scenario):
    """Run ``scenario(service, server, client)`` against a live server."""

    async def body():
        service = PredictionService(fleet, config)
        server = PredictionServer(service)
        await server.start()
        client = HttpClient("127.0.0.1", server.port)
        try:
            return await scenario(service, server, client)
        finally:
            await client.close()
            await server.close()

    return asyncio.run(body())


def new_day_window(history, length=4):
    base = commuter_base()
    start = len(history)
    return [
        (start + i, float(base[i][0]) + 1.0, float(base[i][1]) + 1.0)
        for i in range(length)
    ]


def predict_payload(history, **extra):
    recent = new_day_window(history)
    payload = {
        "object_id": "default",
        "recent": [list(f) for f in recent],
        "query_time": recent[-1][0] + 3,
    }
    payload.update(extra)
    return payload


def slow_execute(service, delay):
    """Make every model pass take ``delay`` seconds (executor-side)."""
    original = service.batcher.execute

    def slowed(object_id, requests):
        time.sleep(delay)
        return original(object_id, requests)

    service.batcher.execute = slowed
    return original


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# token bucket + admission controller (pure units, fake clock)
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, now=clock())
        assert [bucket.try_acquire(clock()) for _ in range(3)] == [0.0] * 3
        wait = bucket.try_acquire(clock())
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_acquire(clock()) == 0.0

    def test_does_not_exceed_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, now=clock())
        clock.advance(60.0)
        assert bucket.try_acquire(clock()) == 0.0
        assert bucket.try_acquire(clock()) == 0.0
        assert bucket.try_acquire(clock()) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0, now=0.0)


class TestAdmissionController:
    def test_class_capacity_sheds_with_503(self):
        controller = AdmissionController({"predict": 2})
        assert controller.try_acquire("predict").admitted
        assert controller.try_acquire("predict").admitted
        decision = controller.try_acquire("predict")
        assert not decision.admitted
        assert decision.status == 503
        assert decision.retry_after > 0
        assert controller.shed == 1
        controller.release("predict")
        assert controller.try_acquire("predict").admitted

    def test_watermark_hysteresis(self):
        controller = AdmissionController(
            {"predict": 100, "ingest": 100},
            high_watermark=4,
            low_watermark=2,
        )
        for _ in range(4):
            assert controller.try_acquire("predict").admitted
        # At the high watermark: lower-priority classes shed...
        assert not controller.try_acquire("ingest").admitted
        assert controller.shedding
        # ...while predict (highest priority) is still admitted.
        assert controller.try_acquire("predict").admitted
        # Draining below high but above low keeps shedding (hysteresis).
        controller.release("predict")
        controller.release("predict")
        assert controller.depth() == 3
        assert not controller.try_acquire("ingest").admitted
        # At the low watermark shedding clears.
        controller.release("predict")
        assert not controller.shedding
        assert controller.try_acquire("ingest").admitted

    def test_rate_limit_answers_429_with_exact_wait(self):
        clock = FakeClock()
        controller = AdmissionController(
            {}, client_rate=10.0, client_burst=1.0, clock=clock
        )
        assert controller.try_acquire("predict", "alice").admitted
        decision = controller.try_acquire("predict", "alice")
        assert not decision.admitted
        assert decision.status == 429
        assert decision.retry_after == pytest.approx(0.1)
        # Another client has their own bucket.
        assert controller.try_acquire("predict", "bob").admitted
        clock.advance(0.1)
        assert controller.try_acquire("predict", "alice").admitted
        assert controller.rate_limited == 1

    def test_client_table_is_lru_bounded(self):
        clock = FakeClock()
        controller = AdmissionController(
            {}, client_rate=1.0, client_burst=1.0, max_clients=2, clock=clock
        )
        for name in ("a", "b", "c"):
            controller.try_acquire("predict", name)
        assert len(controller._buckets) == 2
        # "a" was evicted: it gets a fresh (full) bucket again.
        assert controller.try_acquire("predict", "a").admitted

    def test_release_without_acquire_raises(self):
        controller = AdmissionController({})
        with pytest.raises(RuntimeError):
            controller.release("predict")

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            AdmissionController({}, high_watermark=4, low_watermark=4)


# ----------------------------------------------------------------------
# refit scheduler (pure asyncio units)
# ----------------------------------------------------------------------
class TestRefitScheduler:
    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_success_and_coalescing(self):
        async def body():
            calls = []
            release = asyncio.Event()

            async def execute(object_id, payload):
                if object_id == "blocker":
                    await release.wait()
                calls.append((object_id, payload))

            scheduler = RefitScheduler(
                execute, max_concurrency=1, jitter=0.0
            )
            assert scheduler.request("blocker", None) is True
            assert scheduler.request("bus", "p1") is True
            # "bus" is queued (the slot is taken): repeats are no-ops.
            assert scheduler.request("bus", "p2") is False
            release.set()
            await scheduler.drain()
            assert calls == [("blocker", None), ("bus", "p1")]
            assert scheduler.completed == 2
            assert scheduler.quiescent

        self.run(body())

    def test_dirty_rerun_when_requested_mid_flight(self):
        async def body():
            release = asyncio.Event()
            calls = []

            async def execute(object_id, payload):
                calls.append(payload)
                if len(calls) == 1:
                    await release.wait()

            scheduler = RefitScheduler(execute, jitter=0.0)
            scheduler.request("bus", "first")
            await asyncio.sleep(0)  # let the first run start
            assert scheduler.request("bus", "second") is True  # dirty mark
            release.set()
            await scheduler.drain()
            assert calls == ["first", "second"]
            assert scheduler.completed == 2

        self.run(body())

    def test_flaky_execute_retries_until_success(self):
        async def body():
            attempts = []

            async def execute(object_id, payload):
                attempts.append(object_id)
                if len(attempts) <= 2:
                    raise RuntimeError("transient")

            scheduler = RefitScheduler(
                execute, base_delay=0.005, jitter=0.0, max_retries=5
            )
            scheduler.request("bus", None)
            await scheduler.drain()
            assert len(attempts) == 3
            assert scheduler.retries == 2
            assert scheduler.completed == 1
            assert not scheduler.dead_letters

        self.run(body())

    def test_dead_letter_after_max_retries(self):
        async def body():
            attempts = []

            async def execute(object_id, payload):
                attempts.append(object_id)
                raise RuntimeError("permanent")

            scheduler = RefitScheduler(
                execute, base_delay=0.005, jitter=0.0, max_retries=3
            )
            scheduler.request("bus", None)
            await scheduler.drain()
            assert len(attempts) == 3
            assert scheduler.dead_letters == {"bus": 1}
            assert scheduler.quiescent
            # The next request starts a fresh attempt cycle.
            assert scheduler.request("bus", None) is True
            await scheduler.drain()
            assert scheduler.dead_letters == {"bus": 2}

        self.run(body())

    def test_bounded_concurrency(self):
        async def body():
            running = {"now": 0, "peak": 0}

            async def execute(object_id, payload):
                running["now"] += 1
                running["peak"] = max(running["peak"], running["now"])
                await asyncio.sleep(0.01)
                running["now"] -= 1

            scheduler = RefitScheduler(execute, max_concurrency=2, jitter=0.0)
            for i in range(6):
                scheduler.request(f"obj{i}", None)
            await scheduler.drain()
            assert scheduler.completed == 6
            assert running["peak"] <= 2

        self.run(body())

    def test_drain_waits_for_work_scheduled_during_drain(self):
        """The old race: an ingest racing drain() left an unawaited task."""

        async def body():
            calls = []

            async def execute(object_id, payload):
                calls.append(object_id)
                await asyncio.sleep(0.01)
                if object_id == "first":
                    # Work arrives *while drain is awaiting us* — drain
                    # must loop until this one finishes too.
                    scheduler.request("second", None)

            scheduler = RefitScheduler(execute, jitter=0.0)
            scheduler.request("first", None)
            await scheduler.drain()
            assert calls == ["first", "second"]
            assert scheduler.quiescent

        self.run(body())

    def test_no_unretrieved_task_exceptions(self):
        """A failing refit must never trip asyncio's unretrieved-exception
        reporter (the old fire-and-forget bug)."""

        async def body():
            unhandled = []
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda loop, context: unhandled.append(context)
            )

            async def execute(object_id, payload):
                raise RuntimeError("boom")

            scheduler = RefitScheduler(
                execute, base_delay=0.001, jitter=0.0, max_retries=2
            )
            scheduler.request("bus", None)
            await scheduler.drain()
            return unhandled

        unhandled = self.run(body())
        import gc

        gc.collect()  # unretrieved-exception reports fire on task GC
        assert unhandled == []

    def test_validation(self):
        async def noop(object_id, payload):
            pass

        with pytest.raises(ValueError):
            RefitScheduler(noop, max_concurrency=0)
        with pytest.raises(ValueError):
            RefitScheduler(noop, max_retries=0)
        with pytest.raises(ValueError):
            RefitScheduler(noop, base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RefitScheduler(noop, jitter=-1.0)


# ----------------------------------------------------------------------
# refit lifecycle through the service (the real flush_updates path)
# ----------------------------------------------------------------------
class TestServiceRefits:
    def test_flaky_flush_eventually_flushes(self, fleet, history):
        """Regression: a transient flush failure used to strand the
        tracker's pending fixes forever."""
        fixes = new_day_window(history, length=12)

        async def scenario(service, server, client):
            # First chunk stays under update_after: the tracker exists but
            # no refit is dispatched yet, so the flaky wrapper below is in
            # place before the scheduler ever calls flush_updates.
            status, _, body = await client.request(
                "POST",
                "/ingest",
                {"object_id": "default", "fixes": [list(f) for f in fixes[:5]]},
            )
            assert status == 200
            assert json.loads(body)["refit_scheduled"] is False
            tracker = service.trackers["default"]
            original = tracker.flush_updates
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise RuntimeError("transient store outage")
                return original()

            tracker.flush_updates = flaky
            status, _, body = await client.request(
                "POST",
                "/ingest",
                {"object_id": "default", "fixes": [list(f) for f in fixes[5:]]},
            )
            assert status == 200
            assert json.loads(body)["refit_scheduled"] is True
            await service.drain()
            assert calls["n"] == 3
            assert tracker.pending_count == 0  # flushed at last
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_refits_total"]["value"] == 1
            assert snapshot["serve_refit_retries_total"]["value"] == 2
            assert snapshot["serve_refit_errors_total"]["value"] == 2
            assert "serve_refit_dead_letter_total" not in snapshot

        # NOTE: the flaky wrapper is installed after ingest scheduled the
        # refit but before the executor ran it (drain hasn't started).
        serve_test(
            fleet,
            ServeConfig(
                update_after=10, refit_base_delay=0.005, refit_jitter=0.0
            ),
            scenario,
        )

    def test_dead_letter_visible_at_metrics(self, fleet, history):
        fixes = new_day_window(history, length=12)

        async def scenario(service, server, client):
            await client.request(
                "POST",
                "/ingest",
                {"object_id": "default", "fixes": [list(f) for f in fixes[:5]]},
            )
            tracker = service.trackers["default"]

            def always_fails():
                raise RuntimeError("permanent corruption")

            tracker.flush_updates = always_fails
            await client.request(
                "POST",
                "/ingest",
                {"object_id": "default", "fixes": [list(f) for f in fixes[5:]]},
            )
            await service.drain()
            assert tracker.pending_count == len(fixes)  # fixes retained
            assert service.refits.dead_letters == {"default": 1}
            status, _, body = await client.request("GET", "/metrics")
            text = body.decode("utf-8")
            assert "serve_refit_dead_letter_total 1" in text
            assert "serve_refit_retries_total 2" in text

        serve_test(
            fleet,
            ServeConfig(
                update_after=10,
                refit_base_delay=0.005,
                refit_jitter=0.0,
                refit_max_retries=3,
            ),
            scenario,
        )

    def test_ingest_during_drain_is_not_lost(self, fleet, history):
        """The service-level drain/ingest race: a refit scheduled while
        drain() is in flight still completes before drain returns."""
        fixes = new_day_window(history, length=24)

        async def scenario(service, server, client):
            first, second = fixes[:12], fixes[12:]
            await service.ingest("default", first)
            drain_task = asyncio.create_task(service.drain())
            await asyncio.sleep(0)  # drain is now awaiting the first refit
            await service.ingest("default", second)
            await drain_task
            tracker = service.trackers["default"]
            assert tracker.pending_count == 0
            assert service.refits.quiescent
            assert service.refits.completed >= 2

        serve_test(fleet, ServeConfig(update_after=10), scenario)


# ----------------------------------------------------------------------
# HTTP admission: shedding and rate limiting over real sockets
# ----------------------------------------------------------------------
class TestHttpAdmission:
    def test_predict_overload_sheds_503_with_retry_after(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            slow_execute(service, 0.15)
            other = HttpClient("127.0.0.1", server.port)
            try:
                first = asyncio.create_task(
                    client.request("POST", "/predict", payload)
                )
                await asyncio.sleep(0.05)  # first holds the only slot
                status, headers, body = await other.request(
                    "POST", "/predict", payload
                )
                assert status == 503
                assert headers["retry-after"] == "1"
                assert "queue full" in json.loads(body)["error"]
                status_first, _, _ = await first
                assert status_first == 200
            finally:
                await other.close()
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_shed_total"]["value"] == 1
            assert snapshot["serve_shed_total_predict"]["value"] == 1

        serve_test(
            fleet,
            ServeConfig(max_inflight_predict=1, enable_cache=False),
            scenario,
        )

    def test_rate_limit_by_client_id_header(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            statuses = []
            for _ in range(4):
                status, headers, _ = await client.request(
                    "POST",
                    "/predict",
                    payload,
                    headers={"X-Client-Id": "greedy"},
                )
                statuses.append(status)
                if status == 429:
                    assert float(headers["retry-after"]) > 0
            assert statuses.count(200) == 2
            assert statuses.count(429) == 2
            # A different client id is not throttled.
            status, _, _ = await client.request(
                "POST", "/predict", payload, headers={"X-Client-Id": "calm"}
            )
            assert status == 200
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_rate_limited_total"]["value"] == 2

        serve_test(
            fleet,
            ServeConfig(client_rate=0.001, client_burst=2.0),
            scenario,
        )

    def test_queue_depth_gauge_returns_to_zero(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            status, _, _ = await client.request("POST", "/predict", payload)
            assert status == 200
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_queue_depth"]["value"] == 0
            assert snapshot["serve_queue_depth_predict"]["value"] == 0

        serve_test(fleet, ServeConfig(), scenario)


# ----------------------------------------------------------------------
# HTTP hardening: header/body limits and the idle reaper
# ----------------------------------------------------------------------
class TestReadLimits:
    @staticmethod
    async def raw_exchange(port, raw_bytes):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(raw_bytes)
        await writer.drain()
        response = await reader.read(4096)
        writer.close()
        await writer.wait_closed()
        return response

    def test_oversized_header_answers_431(self, fleet):
        async def scenario(service, server, client):
            raw = (
                b"GET /healthz HTTP/1.1\r\n"
                b"X-Big: " + b"a" * 2048 + b"\r\n\r\n"
            )
            response = await self.raw_exchange(server.port, raw)
            assert response.startswith(b"HTTP/1.1 431 ")
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_http_limit_total_431"]["value"] == 1

        serve_test(fleet, ServeConfig(max_header_bytes=1024), scenario)

    def test_too_many_headers_answers_431(self, fleet):
        async def scenario(service, server, client):
            raw = b"GET /healthz HTTP/1.1\r\n"
            for i in range(12):
                raw += b"X-H%d: v\r\n" % i
            raw += b"\r\n"
            response = await self.raw_exchange(server.port, raw)
            assert response.startswith(b"HTTP/1.1 431 ")

        serve_test(fleet, ServeConfig(max_headers=10), scenario)

    def test_oversized_body_answers_413_without_reading_it(self, fleet):
        async def scenario(service, server, client):
            raw = (
                b"POST /predict HTTP/1.1\r\n"
                b"Content-Length: 1000000\r\n\r\n"
            )  # no body bytes sent at all
            response = await self.raw_exchange(server.port, raw)
            assert response.startswith(b"HTTP/1.1 413 ")
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_http_limit_total_413"]["value"] == 1

        serve_test(fleet, ServeConfig(max_body_bytes=4096), scenario)

    def test_bad_content_length_answers_400(self, fleet):
        async def scenario(service, server, client):
            raw = (
                b"POST /predict HTTP/1.1\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            response = await self.raw_exchange(server.port, raw)
            assert response.startswith(b"HTTP/1.1 400 ")

        serve_test(fleet, ServeConfig(), scenario)

    def test_slow_loris_is_reaped(self, fleet):
        async def scenario(service, server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # A request line that never finishes.
            writer.write(b"GET /healthz")
            await writer.drain()
            data = await asyncio.wait_for(reader.read(100), timeout=2.0)
            assert data == b""  # server closed on us, no response
            writer.close()
            await writer.wait_closed()
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_idle_timeouts_total"]["value"] == 1

        serve_test(fleet, ServeConfig(idle_timeout=0.1), scenario)

    def test_slow_but_complete_request_still_served(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            status, _, _ = await client.request(
                "POST", "/predict", payload, send_delay_s=0.05
            )
            assert status == 200

        serve_test(fleet, ServeConfig(idle_timeout=0.5), scenario)


# ----------------------------------------------------------------------
# deadlines and the degradation ladder
# ----------------------------------------------------------------------
class TestDeadlineDegradation:
    def test_bad_deadline_rejected(self, fleet, history):
        async def scenario(service, server, client):
            for bad in (0, -5, "soon", True):
                status, _, body = await client.request(
                    "POST",
                    "/predict",
                    predict_payload(history, deadline_ms=bad),
                )
                assert status == 400
                assert "deadline_ms" in json.loads(body)["error"]

        serve_test(fleet, ServeConfig(), scenario)

    def test_fast_request_with_deadline_is_byte_identical(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            _, _, plain = await client.request("POST", "/predict", payload)
            service.cache.clear()
            _, headers, with_deadline = await client.request(
                "POST", "/predict", dict(payload, deadline_ms=5000)
            )
            assert plain == with_deadline
            assert "x-degraded" not in headers

        serve_test(fleet, ServeConfig(), scenario)

    def test_stale_cache_rung(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            # Warm the cache with a full-quality answer.
            status, _, fresh_body = await client.request(
                "POST", "/predict", payload
            )
            assert status == 200
            # Let the entry expire, then make the model pass too slow.
            service.cache.clock = lambda: time.monotonic() + 3600.0
            slow_execute(service, 0.3)
            status, headers, body = await client.request(
                "POST", "/predict", dict(payload, deadline_ms=60)
            )
            assert status == 200
            assert headers["x-degraded"] == "true"
            assert headers["x-cache"] == "stale"
            degraded = json.loads(body)
            assert degraded["degraded"] is True
            fresh = json.loads(fresh_body)
            assert degraded["predictions"] == fresh["predictions"]
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_degraded_total_stale"]["value"] == 1
            assert snapshot["serve_deadline_timeouts_total"]["value"] == 1

        serve_test(fleet, ServeConfig(cache_ttl=30.0), scenario)

    def test_motion_only_rung(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            slow_execute(service, 0.3)
            status, headers, body = await client.request(
                "POST", "/predict", dict(payload, deadline_ms=60)
            )
            assert status == 200
            assert headers["x-degraded"] == "true"
            assert headers["x-cache"] == "miss"
            degraded = json.loads(body)
            assert degraded["degraded"] is True
            assert len(degraded["predictions"]) == 1
            assert degraded["predictions"][0]["method"] == "motion"
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_degraded_total_motion"]["value"] == 1

        serve_test(fleet, ServeConfig(enable_cache=False), scenario)

    def test_503_rung_when_object_lock_is_held(self, fleet, history):
        payload = predict_payload(history)

        async def scenario(service, server, client):
            slow_execute(service, 0.3)
            lock = service.fleet.object_lock("default")
            held = threading.Event()
            release = threading.Event()

            def hold_lock():
                with lock:
                    held.set()
                    release.wait(timeout=5.0)

            blocker = threading.Thread(target=hold_lock)
            blocker.start()
            held.wait(timeout=5.0)
            try:
                status, headers, body = await client.request(
                    "POST", "/predict", dict(payload, deadline_ms=60)
                )
                assert status == 503
                assert float(headers["retry-after"]) > 0
                assert "deadline exceeded" in json.loads(body)["error"]
            finally:
                release.set()
                blocker.join()

        serve_test(fleet, ServeConfig(enable_cache=False), scenario)

    def test_deadline_timeout_does_not_break_coalesced_twin(
        self, fleet, history
    ):
        """A deadline cancelling one waiter must not cancel the shared
        batch future out from under an identical coalesced request."""
        payload = predict_payload(history)

        async def scenario(service, server, client):
            slow_execute(service, 0.2)
            other = HttpClient("127.0.0.1", server.port)
            try:
                patient = asyncio.create_task(
                    client.request("POST", "/predict", payload)
                )
                await asyncio.sleep(0.01)
                status_hasty, headers_hasty, _ = await other.request(
                    "POST", "/predict", dict(payload, deadline_ms=50)
                )
                status_patient, headers_patient, _ = await patient
            finally:
                await other.close()
            assert status_hasty == 200
            assert headers_hasty.get("x-degraded") == "true"
            assert status_patient == 200
            assert "x-degraded" not in headers_patient

        serve_test(
            fleet,
            ServeConfig(enable_cache=False, batch_delay=0.05),
            scenario,
        )


# ----------------------------------------------------------------------
# chaos: the seeded fault injector
# ----------------------------------------------------------------------
class TestChaos:
    def test_plan_is_deterministic(self):
        plan = ChaosConfig(
            seed=42,
            latency_probability=0.3,
            error_probability=0.2,
            drop_probability=0.1,
        )

        def sample(injector):
            out = []
            for _ in range(50):
                out.append(injector.latency_s())
                out.append(injector.should_drop())
                try:
                    injector.raise_for_error()
                    out.append(False)
                except ChaosError:
                    out.append(True)
            return out

        assert sample(FaultInjector(plan)) == sample(FaultInjector(plan))

    def test_inert_by_default(self):
        config = ChaosConfig()
        assert not config.active
        injector = FaultInjector(config)
        assert injector.latency_s() == 0.0
        assert not injector.should_drop()
        injector.raise_for_error()  # must not raise

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(error_probability=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(latency_ms=-1.0)

    def test_injected_handler_errors_answer_500(self, fleet, history):
        payload = predict_payload(history)
        plan = ChaosConfig(seed=7, error_probability=1.0)

        async def scenario(service, server, client):
            status, _, body = await client.request("POST", "/predict", payload)
            assert status == 500
            assert "ChaosError" in json.loads(body)["error"]
            assert service.chaos.injected["error"] == 1
            snapshot = service.metrics.snapshot()
            assert snapshot["serve_chaos_injected_total_error"]["value"] == 1
            assert snapshot["serve_http_errors_total"]["value"] == 1

        serve_test(fleet, ServeConfig(chaos=plan), scenario)

    def test_injected_drops_close_the_connection(self, fleet, history):
        payload = predict_payload(history)
        plan = ChaosConfig(seed=7, drop_probability=1.0)

        async def scenario(service, server, client):
            with pytest.raises((ConnectionError, OSError)):
                await client.request("POST", "/predict", payload)
            assert service.chaos.injected["drop"] == 1

        serve_test(fleet, ServeConfig(chaos=plan), scenario)

    def test_chaos_off_service_has_no_injector(self, fleet):
        async def scenario(service, server, client):
            assert service.chaos is None

        serve_test(fleet, ServeConfig(), scenario)


# ----------------------------------------------------------------------
# load report breakdown
# ----------------------------------------------------------------------
class TestLoadReport:
    def make_report(self):
        return LoadReport(
            requests=10,
            errors=3,
            elapsed=1.0,
            cache_hits=2,
            latencies_ms=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            status_counts={200: 7, 503: 2, 429: 1},
            class_latencies_ms={"predict": [1.0, 2.0], "ingest": [10.0]},
            degraded=1,
            transport_errors=1,
            deadline_misses=2,
            good=5,
        )

    def test_breakdown_properties(self):
        report = self.make_report()
        assert report.shed == 2
        assert report.rate_limited == 1
        assert report.goodput_ratio == 0.5
        assert report.percentile(50, "ingest") == 10.0

    def test_format_is_self_describing(self):
        text = self.make_report().format()
        assert "status codes: 200:7 429:1 503:2" in text
        assert "shed=2" in text
        assert "rate_limited=1" in text
        assert "degraded=1" in text
        assert "goodput=50.0%" in text
        assert "ingest ms:" in text
