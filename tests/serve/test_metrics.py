"""Unit tests for the metrics registry: counters, gauges, histograms."""

import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("requests")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_thread_safety(self):
        c = Counter("x")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("objects")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4


class TestHistogram:
    def test_bucket_assignment_is_cumulative(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        counts = dict(h.bucket_counts())
        assert counts[1.0] == 2  # 0.5 and the boundary value 1.0
        assert counts[2.0] == 3
        assert counts[4.0] == 4
        assert counts[float("inf")] == 5
        assert h.count == 5
        assert h.total == pytest.approx(106.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=())

    def test_quantiles_interpolate(self):
        h = Histogram("lat", buckets=(10.0, 20.0, 40.0))
        for _ in range(50):
            h.observe(5.0)  # first bucket
        for _ in range(50):
            h.observe(15.0)  # second bucket
        # p50 sits at the first/second bucket boundary.
        assert h.quantile(0.5) == pytest.approx(10.0)
        # p99 interpolates inside (10, 20].
        assert 10.0 < h.quantile(0.99) <= 20.0
        p = h.percentiles()
        assert set(p) == {"p50", "p95", "p99"}
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_quantile_of_empty_histogram(self):
        assert Histogram("x", buckets=(1.0,)).quantile(0.95) == 0.0

    def test_overflow_quantile_reports_top_bound(self):
        h = Histogram("x", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert "a" in r

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_snapshot_shapes(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(7)
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = r.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"] == {"type": "gauge", "value": 7}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1

    def test_render_text_exposition(self):
        r = MetricsRegistry()
        r.counter("requests_total", help="total requests").inc(3)
        r.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = r.render_text()
        assert "# HELP requests_total total requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")
