"""Consistent-hash ring invariants the sharded stack leans on.

The ring is placement truth for the router, the workers, and snapshot
splitting, so these tests pin its contract: balanced distribution,
bounded remapping on grow/shrink (moved keys land only on the
added/removed shard), and bit-identical placement across interpreter
processes with different hash seeds.
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.serve.shard import HashRing

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

KEYS = [f"object-{i}" for i in range(4000)]


class TestDistribution:
    def test_uniform_within_tolerance(self):
        ring = HashRing(4)
        counts = ring.distribution(KEYS)
        mean = len(KEYS) / 4
        assert sum(counts) == len(KEYS)
        for count in counts:
            # 96 vnodes keeps shards within a few tens of percent.
            assert 0.5 * mean <= count <= 1.6 * mean, counts

    def test_assignments_cover_every_shard_and_key(self):
        ring = HashRing(8, replicas=16)
        groups = ring.assignments(KEYS[:500])
        assert sorted(groups) == list(range(8))
        regrouped = sorted(k for keys in groups.values() for k in keys)
        assert regrouped == sorted(KEYS[:500])

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert ring.distribution(KEYS[:100]) == [100]


class TestRemapping:
    def test_growing_moves_a_bounded_fraction_onto_the_new_shard(self):
        old = HashRing(4)
        new = HashRing(5)
        moved = old.moved_keys(new, KEYS)
        # Ideal is 1/5 of keys; allow generous slack for vnode variance.
        assert len(moved) <= 0.35 * len(KEYS), len(moved)
        assert moved, "growing a ring must move *some* keys"
        # Every moved key must land on the shard that was added —
        # traffic between surviving shards never reshuffles.
        assert {new.shard_for(k) for k in moved} == {4}

    def test_shrinking_moves_only_the_removed_shards_keys(self):
        big = HashRing(5)
        small = HashRing(4)
        for key in KEYS:
            if big.shard_for(key) != small.shard_for(key):
                assert big.shard_for(key) == 4
            else:
                assert big.shard_for(key) < 4

    def test_different_salts_are_independent_rings(self):
        a = HashRing(4, salt="ring-a")
        b = HashRing(4, salt="ring-b")
        assert a.moved_keys(b, KEYS[:1000]), "salts should change placement"


class TestDeterminism:
    def test_placement_is_stable_across_processes(self):
        """A router and a worker in different interpreters (different
        PYTHONHASHSEED) must compute identical placements."""
        keys = KEYS[:64]
        local = [HashRing(4).shard_for(k) for k in keys]
        script = (
            "from repro.serve.shard import HashRing\n"
            "ring = HashRing(4)\n"
            f"print(','.join(str(ring.shard_for(k)) for k in {keys!r}))\n"
        )
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": SRC_DIR},
                check=True,
            )
            remote = [int(s) for s in result.stdout.strip().split(",")]
            assert remote == local

    def test_repeated_construction_is_identical(self):
        a = HashRing(6, replicas=32)
        b = HashRing(6, replicas=32)
        assert not a.moved_keys(b, KEYS[:1000])


class TestValidation:
    def test_bad_arguments_raise(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(4, replicas=0)
