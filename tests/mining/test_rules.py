"""Tests for association-rule generation and the paper's pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import (
    AssociationRule,
    find_frequent_itemsets,
    generate_rules,
    generate_rules_unpruned,
)


class TestAssociationRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AssociationRule(frozenset(), frozenset("a"), 1, 0.5)
        with pytest.raises(ValueError):
            AssociationRule(frozenset("a"), frozenset(), 1, 0.5)
        with pytest.raises(ValueError):
            AssociationRule(frozenset("a"), frozenset("a"), 1, 0.5)
        with pytest.raises(ValueError):
            AssociationRule(frozenset("a"), frozenset("b"), 1, 1.5)

    def test_str(self):
        r = AssociationRule(frozenset(["a"]), frozenset(["b"]), 3, 0.75)
        assert "0.75" in str(r)


class TestPrunedGeneration:
    def test_single_consequence_is_max_item(self):
        itemsets = {
            frozenset([1]): 10,
            frozenset([2]): 8,
            frozenset([1, 2]): 6,
        }
        rules = generate_rules(itemsets, min_confidence=0.0, order_key=lambda i: i)
        assert len(rules) == 1
        (rule,) = rules
        assert rule.premise == frozenset([1])
        assert rule.consequence == frozenset([2])
        assert rule.confidence == pytest.approx(0.6)

    def test_time_monotonicity(self):
        """The consequence is always the latest item under order_key."""
        itemsets = {
            frozenset(["t3"]): 5,
            frozenset(["t1"]): 5,
            frozenset(["t1", "t3"]): 4,
        }
        rules = generate_rules(itemsets, 0.0, order_key=lambda s: int(s[1]))
        assert rules[0].premise == frozenset(["t1"])
        assert rules[0].consequence == frozenset(["t3"])

    def test_min_confidence_filters(self):
        itemsets = {frozenset([1]): 10, frozenset([2]): 9, frozenset([1, 2]): 3}
        assert (
            generate_rules(itemsets, min_confidence=0.5, order_key=lambda i: i) == []
        )

    def test_triple_produces_one_rule(self):
        itemsets = {
            frozenset([1]): 9,
            frozenset([2]): 9,
            frozenset([3]): 9,
            frozenset([1, 2]): 8,
            frozenset([1, 3]): 8,
            frozenset([2, 3]): 8,
            frozenset([1, 2, 3]): 7,
        }
        rules = generate_rules(itemsets, 0.0, order_key=lambda i: i)
        by_premise = {r.premise: r for r in rules}
        assert by_premise[frozenset([1, 2])].consequence == frozenset([3])
        # Exactly one rule per itemset of size >= 2.
        assert len(rules) == 4

    def test_inconsistent_itemsets_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            generate_rules({frozenset([1, 2]): 3}, 0.0, order_key=lambda i: i)

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            generate_rules({}, min_confidence=1.5, order_key=lambda i: i)


class TestUnprunedGeneration:
    def test_all_bipartitions(self):
        itemsets = {
            frozenset([1]): 10,
            frozenset([2]): 10,
            frozenset([1, 2]): 10,
        }
        rules = generate_rules_unpruned(itemsets, 0.0)
        pairs = {(tuple(sorted(r.premise)), tuple(sorted(r.consequence))) for r in rules}
        assert pairs == {((1,), (2,)), ((2,), (1,))}

    def test_triple_produces_six_rules(self):
        itemsets = {
            frozenset([1]): 9,
            frozenset([2]): 9,
            frozenset([3]): 9,
            frozenset([1, 2]): 9,
            frozenset([1, 3]): 9,
            frozenset([2, 3]): 9,
            frozenset([1, 2, 3]): 9,
        }
        rules = generate_rules_unpruned(itemsets, 0.0)
        from_triple = [r for r in rules if len(r.premise | r.consequence) == 3]
        assert len(from_triple) == 6  # 2^3 - 2

    def test_pruned_is_subset_of_unpruned(self):
        transactions = [["a", "b", "c"], ["a", "b"], ["a", "c"], ["a", "b", "c"]]
        itemsets = find_frequent_itemsets(transactions, 2)
        pruned = generate_rules(itemsets, 0.1, order_key=repr)
        unpruned = generate_rules_unpruned(itemsets, 0.1)
        pruned_set = {(r.premise, r.consequence) for r in pruned}
        unpruned_set = {(r.premise, r.consequence) for r in unpruned}
        assert pruned_set <= unpruned_set


class TestTheorem1:
    """Theorem 1: conf(s1 -> f1) >= conf(s1 -> f1 ∧ s2)."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 5), min_size=0, max_size=5),
            min_size=1,
            max_size=20,
        )
    )
    def test_multi_consequence_confidence_never_higher(self, transactions):
        itemsets = find_frequent_itemsets(transactions, 1)
        rules = generate_rules_unpruned(itemsets, 0.0)
        by_premise: dict[frozenset, list] = {}
        for r in rules:
            by_premise.setdefault(r.premise, []).append(r)
        for premise, group in by_premise.items():
            for rule in group:
                if len(rule.consequence) <= 1:
                    continue
                # Any single-item projection of the consequence has >= confidence.
                for item in rule.consequence:
                    single = next(
                        (
                            r
                            for r in group
                            if r.consequence == frozenset([item])
                        ),
                        None,
                    )
                    if single is not None:
                        assert single.confidence >= rule.confidence - 1e-12
