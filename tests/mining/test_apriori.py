"""Tests for the generic Apriori miner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import find_frequent_itemsets, itemset_support


class TestSmallExamples:
    def test_classic_example(self):
        transactions = [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
        result = find_frequent_itemsets(transactions, min_support=3)
        assert result[frozenset(["bread"])] == 4
        assert result[frozenset(["milk"])] == 4
        assert result[frozenset(["diapers"])] == 4
        assert result[frozenset(["beer"])] == 3
        assert result[frozenset(["milk", "diapers"])] == 3
        assert result[frozenset(["beer", "diapers"])] == 3
        assert frozenset(["bread", "beer"]) not in result  # support 2

    def test_three_itemset(self):
        transactions = [["a", "b", "c"]] * 3 + [["a", "b"], ["c"]]
        result = find_frequent_itemsets(transactions, min_support=3)
        assert result[frozenset(["a", "b", "c"])] == 3
        assert result[frozenset(["a", "b"])] == 4

    def test_duplicates_within_transaction_ignored(self):
        result = find_frequent_itemsets([["a", "a"], ["a"]], min_support=2)
        assert result[frozenset(["a"])] == 2

    def test_max_length(self):
        transactions = [["a", "b", "c"]] * 4
        result = find_frequent_itemsets(transactions, min_support=2, max_length=2)
        assert frozenset(["a", "b", "c"]) not in result
        assert frozenset(["a", "b"]) in result

    def test_candidate_filter(self):
        transactions = [["a", "b"], ["a", "b"], ["a", "c"]]
        # Forbid anything containing "b".
        result = find_frequent_itemsets(
            transactions, min_support=2, candidate_filter=lambda s: "b" not in s
        )
        assert frozenset(["b"]) not in result
        assert frozenset(["a", "b"]) not in result
        assert frozenset(["a"]) in result

    def test_empty_transactions(self):
        assert find_frequent_itemsets([], min_support=1) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            find_frequent_itemsets([["a"]], min_support=0)
        with pytest.raises(ValueError):
            find_frequent_itemsets([["a"]], min_support=1, max_length=0)

    def test_tuple_items(self):
        """Items may be any hashable — the pattern miner uses (offset, region)."""
        transactions = [[(0, "r0"), (1, "r1")], [(0, "r0"), (1, "r1")], [(0, "r0")]]
        result = find_frequent_itemsets(transactions, min_support=2)
        assert result[frozenset([(0, "r0"), (1, "r1")])] == 2

    def test_mixed_type_items(self):
        """Unorderable item mixes must mine fine (the repr-keyed canonical
        order replaced value sorting, which raised TypeError at k=2)."""
        transactions = [
            [1, "a", ("t", 2)],
            [1, "a"],
            [1, "a", ("t", 2)],
            ["a", ("t", 2)],
        ]
        expected = {
            frozenset([1]): 3,
            frozenset(["a"]): 4,
            frozenset([("t", 2)]): 3,
            frozenset([1, "a"]): 3,
            frozenset([1, ("t", 2)]): 2,
            frozenset(["a", ("t", 2)]): 3,
            frozenset([1, "a", ("t", 2)]): 2,
        }
        for backend in ("bitmap", "scan"):
            assert (
                find_frequent_itemsets(transactions, 2, backend=backend)
                == expected
            )

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            find_frequent_itemsets([["a"]], min_support=1, backend="vertical")


items = st.integers(min_value=0, max_value=8)
transactions_strategy = st.lists(
    st.lists(items, min_size=0, max_size=6), min_size=0, max_size=25
)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(transactions_strategy, st.integers(min_value=1, max_value=5))
    def test_supports_are_exact(self, transactions, min_support):
        result = find_frequent_itemsets(transactions, min_support)
        for itemset, support in result.items():
            assert support == itemset_support(itemset, transactions)
            assert support >= min_support

    @settings(max_examples=50, deadline=None)
    @given(transactions_strategy, st.integers(min_value=1, max_value=5))
    def test_downward_closure(self, transactions, min_support):
        """Every subset of a frequent itemset is frequent (and present)."""
        result = find_frequent_itemsets(transactions, min_support)
        for itemset in result:
            for item in itemset:
                if len(itemset) > 1:
                    assert itemset - {item} in result

    @settings(max_examples=50, deadline=None)
    @given(transactions_strategy, st.integers(min_value=1, max_value=5))
    def test_completeness_vs_bruteforce(self, transactions, min_support):
        """Apriori finds exactly the itemsets a brute-force scan finds."""
        from itertools import combinations

        result = find_frequent_itemsets(transactions, min_support)
        universe = sorted({i for t in transactions for i in t})
        expected = {}
        for size in range(1, min(len(universe), 4) + 1):
            for combo in combinations(universe, size):
                support = itemset_support(combo, transactions)
                if support >= min_support:
                    expected[frozenset(combo)] = support
        # Compare up to size 4 (brute force cap).
        got = {k: v for k, v in result.items() if len(k) <= 4}
        assert got == expected


class TestBackendEquivalence:
    """The bitmap backend must match the subset-scan oracle exactly —
    same itemsets, same supports — across parameter combinations."""

    @settings(max_examples=60, deadline=None)
    @given(
        transactions_strategy,
        st.integers(min_value=1, max_value=5),
        st.sampled_from([None, 1, 2, 3]),
        st.booleans(),
    )
    def test_bitmap_matches_scan(
        self, transactions, min_support, max_length, use_filter
    ):
        # An anti-monotone-safe filter: reject itemsets touching item 0.
        candidate_filter = (lambda s: 0 not in s) if use_filter else None
        bitmap = find_frequent_itemsets(
            transactions,
            min_support,
            max_length=max_length,
            candidate_filter=candidate_filter,
            backend="bitmap",
        )
        scan = find_frequent_itemsets(
            transactions,
            min_support,
            max_length=max_length,
            candidate_filter=candidate_filter,
            backend="scan",
        )
        assert bitmap == scan
        for itemset, support in bitmap.items():
            assert support == itemset_support(itemset, transactions)

    def test_bitmap_matches_scan_wide_transactions(self):
        # Deterministic deeper lattice: 12 transactions over 6 items with
        # correlated co-occurrence, mined to full depth.
        transactions = [
            [i for i in range(6) if (t >> (i % 4)) & 1 or i % (t + 1) == 0]
            for t in range(12)
        ]
        for min_support in (1, 2, 3, 5):
            assert find_frequent_itemsets(
                transactions, min_support, backend="bitmap"
            ) == find_frequent_itemsets(transactions, min_support, backend="scan")
