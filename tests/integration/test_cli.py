"""End-to-end CLI tests: synth -> mine -> predict -> evaluate."""

import pytest

from repro.cli import main
from repro.core.persistence import load_model
from repro.trajectory.io import load_trajectory


@pytest.fixture(scope="module")
def data_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "bike.csv"
    code = main(
        [
            "synth",
            "bike",
            "-o",
            str(path),
            "--subtrajectories",
            "20",
            "--period",
            "60",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_npz(data_csv, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    code = main(
        [
            "mine",
            str(data_csv),
            "-o",
            str(path),
            "--period",
            "60",
            "--eps",
            "30",
        ]
    )
    assert code == 0
    return path


class TestSynth:
    def test_writes_loadable_csv(self, data_csv):
        trajectory = load_trajectory(data_csv)
        assert len(trajectory) == 20 * 60

    def test_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        for out in (a, b):
            main(["synth", "cow", "-o", str(out), "--subtrajectories", "4",
                  "--period", "30", "--seed", "9"])
        assert a.read_text() == b.read_text()

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["synth", "submarine", "-o", str(tmp_path / "x.csv")])


class TestMine:
    def test_model_loadable(self, model_npz):
        model = load_model(model_npz)
        assert model.pattern_count > 0
        assert model.config.period == 60


class TestPredict:
    def test_predicts_from_saved_model(self, model_npz, data_csv, capsys):
        trajectory = load_trajectory(data_csv)
        t0 = 18 * 60  # a held-out-ish day
        recent = ",".join(
            f"{t0 + i}:{trajectory.positions[t0 + i][0]:.1f}"
            f":{trajectory.positions[t0 + i][1]:.1f}"
            for i in range(4)
        )
        code = main(
            [
                "predict",
                str(model_npz),
                "--recent",
                recent,
                "--time",
                str(t0 + 8),
                "-k",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("#1 (")
        assert "method=" in out

    def test_bad_recent_spec(self, model_npz):
        with pytest.raises(SystemExit, match="t:x:y"):
            main(["predict", str(model_npz), "--recent", "1:2", "--time", "99"])


class TestEvaluate:
    def test_reports_comparison(self, data_csv, capsys):
        code = main(
            [
                "evaluate",
                str(data_csv),
                "--period",
                "60",
                "--training",
                "15",
                "--length",
                "10",
                "--queries",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HPM: mean error" in out
        assert "RMF: mean error" in out


class TestFit:
    @pytest.fixture(scope="class")
    def fleet_csvs(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("fit")
        paths = []
        for scenario, seed in (("bike", 1), ("cow", 2)):
            path = directory / f"{scenario}.csv"
            code = main(
                ["synth", scenario, "-o", str(path), "--subtrajectories",
                 "15", "--period", "30", "--seed", str(seed)]
            )
            assert code == 0
            paths.append(path)
        return paths

    def test_writes_loadable_snapshot(self, fleet_csvs, tmp_path, capsys):
        from repro.core.persistence import load_fleet

        snapshot = tmp_path / "snapshot"
        code = main(
            ["fit", *map(str, fleet_csvs), "-o", str(snapshot), "--period",
             "30", "--workers", "2", "--executor", "thread"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[2/2]" in out  # progress hook reached the last object
        assert "2 object(s)" in out
        fleet = load_fleet(snapshot, max_workers=2)
        assert fleet.object_ids() == ["bike", "cow"]
        assert fleet.total_patterns() > 0

    def test_bad_trajectory_names_object(self, fleet_csvs, tmp_path, capsys):
        short = tmp_path / "stunted.csv"
        short.write_text("t,x,y\n0,0.0,0.0\n1,1.0,1.0\n")
        code = main(
            ["fit", str(fleet_csvs[0]), str(short), "-o",
             str(tmp_path / "snap"), "--period", "30", "--workers", "2",
             "--executor", "thread"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "stunted" in err
        assert not (tmp_path / "snap").exists()

    def test_duplicate_stems_rejected(self, fleet_csvs, tmp_path):
        with pytest.raises(SystemExit, match="unique"):
            main(
                ["fit", str(fleet_csvs[0]), str(fleet_csvs[0]), "-o",
                 str(tmp_path / "snap"), "--period", "30"]
            )


class TestSnapshotTools:
    @pytest.fixture(scope="class")
    def fleet_snapshot(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("snaptools")
        csv = directory / "bike.csv"
        assert main(
            ["synth", "bike", "-o", str(csv), "--subtrajectories", "15",
             "--period", "30", "--seed", "5"]
        ) == 0
        snapshot = directory / "snapshot"
        assert main(
            ["fit", str(csv), "-o", str(snapshot), "--period", "30",
             "--workers", "1", "--executor", "thread"]
        ) == 0
        return snapshot

    def test_stat_reports_v2(self, fleet_snapshot, capsys):
        import json

        assert main(["snapshot-stat", str(fleet_snapshot)]) == 0
        stat = json.loads(capsys.readouterr().out)
        assert stat["format_version"] == 2
        assert stat["objects"] == 1
        assert stat["total_block_bytes"] > 0

    def test_convert_round_trips(self, fleet_snapshot, tmp_path, capsys):
        import json

        from repro.core.persistence import load_fleet

        v1 = tmp_path / "v1"
        assert main(
            ["snapshot-convert", str(fleet_snapshot), "-o", str(v1), "--to", "1"]
        ) == 0
        assert "1 object(s) as format v1" in capsys.readouterr().out
        assert main(["snapshot-stat", str(v1)]) == 0
        assert json.loads(capsys.readouterr().out)["format_version"] == 1

        v2 = tmp_path / "v2"
        assert main(
            ["snapshot-convert", str(v1), "-o", str(v2), "--to", "2"]
        ) == 0
        original = load_fleet(fleet_snapshot)
        converted = load_fleet(v2)
        assert converted.object_ids() == original.object_ids()
        assert converted.total_patterns() == original.total_patterns()
