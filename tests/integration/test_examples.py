"""Smoke tests: the fast examples must run and print their headline facts.

The heavier scenario examples (commuter, wildlife, streaming, fleet) are
exercised implicitly by the integration/benchmark suites; the two quick
ones run here end-to-end.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_predicts(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "trajectory patterns" in out
        assert "near-future query" in out
        assert "distant-time query" in out
        # Both queries must be answered by patterns on this clean data.
        assert "via FQP" in out
        assert "via BQP" in out


class TestPaperWalkthrough:
    def test_reproduces_tables_and_scores(self, capsys):
        out = run_example("paper_walkthrough.py", capsys)
        # Table III keys, verbatim.
        assert "0100001" in out
        assert "1000011" in out
        assert "1000101" in out
        # The §VI-B ranking.
        assert "S_p = 0.500" in out
        assert "S_p = 0.133" in out
