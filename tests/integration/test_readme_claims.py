"""Integration checks for the README's quickstart claims.

The README promises a specific API surface; these tests pin it so doc
drift fails loudly.
"""

import numpy as np
import pytest


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        for name in (
            "HybridPredictionModel",
            "HPMConfig",
            "FleetPredictionModel",
            "Trajectory",
            "TimedPoint",
            "Point",
            "RecursiveMotionFunction",
            "LinearMotionFunction",
            "TrajectoryPattern",
            "TrajectoryPatternTree",
            "save_model",
            "load_model",
        ):
            assert hasattr(repro, name), f"README-advertised {name} missing"

    def test_readme_quickstart_compiles_and_runs(self):
        import repro
        from repro import HPMConfig, HybridPredictionModel, TimedPoint, Trajectory

        rng = np.random.default_rng(0)
        period = 20
        base = np.column_stack(
            [40.0 * np.arange(period), np.zeros(period)]
        )
        positions = np.vstack(
            [base + rng.normal(0, 1, base.shape) for _ in range(15)]
        )

        model = HybridPredictionModel(
            HPMConfig(
                period=period,
                eps=5.0,
                min_pts=4,
                min_confidence=0.3,
                distant_threshold=8,
            )
        )
        model.fit(Trajectory(positions))

        recent = [TimedPoint(300 + t, base[t][0], base[t][1]) for t in range(3)]
        predictions = model.predict(recent, 310, k=1)
        assert predictions[0].method in ("fqp", "bqp", "motion")
        assert hasattr(predictions[0].location, "x")

    def test_version_string(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_cli_module_invocable(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["synth", "bike", "-o", "/tmp/x.csv"])
        assert args.command == "synth"
