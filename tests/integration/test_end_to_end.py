"""Integration tests: full pipeline over the paper's scenario datasets.

These run the complete system — generator → region discovery → pattern
mining → TPT → FQP/BQP/fallback — at reduced scale and assert the paper's
qualitative claims.
"""

import numpy as np
import pytest

from repro.datagen import make_bike, make_car, make_dataset
from repro.evalx import (
    ExperimentScale,
    evaluate_hpm,
    evaluate_rmf,
    fit_model,
    generate_queries,
)


SCALE = ExperimentScale(
    dataset_subtrajectories=24,
    training_subtrajectories=16,
    num_queries=12,
    period=100,
)


@pytest.fixture(scope="module")
def bike():
    return make_bike(SCALE.dataset_subtrajectories, SCALE.period)


@pytest.fixture(scope="module")
def bike_model(bike):
    return fit_model(bike, SCALE)


class TestPipeline:
    def test_model_learns_regions_and_patterns(self, bike_model):
        assert len(bike_model.regions_) > 50
        assert bike_model.pattern_count > 100
        bike_model.tree_.validate()

    def test_near_queries_beat_rmf(self, bike, bike_model):
        workload = generate_queries(
            bike, 10, SCALE.num_queries, SCALE.training_subtrajectories,
            rng=np.random.default_rng(0),
        )
        hpm = evaluate_hpm(bike_model, workload)
        rmf = evaluate_rmf(workload)
        assert hpm.mean_error < rmf.mean_error

    def test_distant_queries_beat_rmf_decisively(self, bike, bike_model):
        """The paper's headline: distant-time prediction is where HPM wins."""
        workload = generate_queries(
            bike, 60, SCALE.num_queries, SCALE.training_subtrajectories,
            rng=np.random.default_rng(1),
        )
        hpm = evaluate_hpm(bike_model, workload)
        rmf = evaluate_rmf(workload)
        assert hpm.mean_error < rmf.mean_error / 3
        assert hpm.method_counts["bqp"] > 0

    def test_hpm_error_stays_flat_with_length(self, bike, bike_model):
        """Fig. 5 shape: HPM's error does not blow up with horizon."""
        errors = []
        for length in (10, 40, 70):
            workload = generate_queries(
                bike, length, SCALE.num_queries,
                SCALE.training_subtrajectories, rng=np.random.default_rng(length),
            )
            errors.append(evaluate_hpm(bike_model, workload).mean_error)
        assert max(errors) < 10 * max(min(errors), 20.0)

    def test_rmf_error_grows_with_length(self, bike):
        errors = []
        for length in (10, 70):
            workload = generate_queries(
                bike, length, SCALE.num_queries,
                SCALE.training_subtrajectories, rng=np.random.default_rng(length),
            )
            errors.append(evaluate_rmf(workload).mean_error)
        assert errors[1] > 2 * errors[0]


class TestCarScenario:
    def test_sharp_turns_defeat_rmf_not_hpm(self):
        """Fig. 5's Car observation: direction changes break extrapolation."""
        car = make_dataset("car", SCALE.dataset_subtrajectories, SCALE.period)
        model = fit_model(car, SCALE)
        workload = generate_queries(
            car, 40, SCALE.num_queries, SCALE.training_subtrajectories,
            rng=np.random.default_rng(2),
        )
        hpm = evaluate_hpm(model, workload)
        rmf = evaluate_rmf(workload)
        assert hpm.mean_error < rmf.mean_error


class TestMoreDataMoreAccuracy:
    def test_fig6_shape(self):
        """More training sub-trajectories -> more patterns and (weakly)
        better accuracy (Fig. 6)."""
        bike = make_bike(30, SCALE.period)
        few = fit_model(bike, ExperimentScale(30, 5, 10, SCALE.period))
        many = fit_model(bike, ExperimentScale(30, 22, 10, SCALE.period))
        assert many.pattern_count >= few.pattern_count
        workload = generate_queries(bike, 30, 12, 22, rng=np.random.default_rng(3))
        err_few = evaluate_hpm(few, workload).mean_error
        err_many = evaluate_hpm(many, workload).mean_error
        assert err_many <= err_few * 1.5  # never dramatically worse


class TestDynamicUpdate:
    def test_update_with_new_days_improves_or_holds(self, bike):
        scale_small = ExperimentScale(24, 8, 10, SCALE.period)
        model = fit_model(bike, scale_small)
        patterns_before = model.pattern_count
        # Feed four more observed periods.
        more = bike.trajectory.slice(
            8 * SCALE.period, 12 * SCALE.period
        ).positions
        model.update(more)
        assert model.pattern_count >= patterns_before * 0.5
        workload = generate_queries(
            bike, 20, 10, 16, rng=np.random.default_rng(4)
        )
        result = evaluate_hpm(model, workload)
        assert result.mean_error < 2000.0
