"""Tests for the uniform grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import GridIndex


class TestGridIndex:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((3, 3)), eps=1.0)

    def test_rejects_bad_eps(self):
        pts = np.zeros((3, 2))
        for eps in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                GridIndex(pts, eps=eps)

    def test_neighbors_includes_self(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        idx = GridIndex(pts, eps=1.0)
        assert 0 in idx.neighbors(0)

    def test_neighbors_radius_inclusive(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0001, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        nb = set(idx.neighbors(0).tolist())
        assert nb == {0, 1}

    def test_neighbors_index_bounds(self):
        idx = GridIndex(np.zeros((2, 2)), eps=1.0)
        with pytest.raises(IndexError):
            idx.neighbors(2)

    def test_neighbors_of_arbitrary_point(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0]])
        idx = GridIndex(pts, eps=2.0)
        assert set(idx.neighbors_of_point(0.5, 0.5).tolist()) == {0}
        assert idx.count_within(100.0, 100.0) == 0

    def test_negative_coordinates(self):
        pts = np.array([[-1.0, -1.0], [-1.5, -1.2], [3.0, 3.0]])
        idx = GridIndex(pts, eps=1.0)
        assert set(idx.neighbors(0).tolist()) == {0, 1}

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.5, max_value=30.0),
    )
    def test_matches_brute_force(self, pts, eps):
        arr = np.array(pts, dtype=np.float64)
        idx = GridIndex(arr, eps=eps)
        for i in range(len(arr)):
            got = set(idx.neighbors(i).tolist())
            for j in range(len(arr)):
                dist = float(np.linalg.norm(arr[i] - arr[j]))
                # Skip knife-edge pairs where the true distance and eps
                # differ by less than a float ulp — the grid prunes by
                # exact cell arithmetic while the norm rounds, so ties at
                # the boundary are implementation-defined.
                if abs(dist - eps) <= 1e-9 * max(1.0, eps):
                    continue
                if dist < eps:
                    assert j in got
                else:
                    assert j not in got
