"""Tests for the uniform grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import GridIndex


class TestGridIndex:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((3, 3)), eps=1.0)

    def test_rejects_bad_eps(self):
        pts = np.zeros((3, 2))
        for eps in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                GridIndex(pts, eps=eps)

    def test_neighbors_includes_self(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        idx = GridIndex(pts, eps=1.0)
        assert 0 in idx.neighbors(0)

    def test_neighbors_radius_inclusive(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0001, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        nb = set(idx.neighbors(0).tolist())
        assert nb == {0, 1}

    def test_neighbors_index_bounds(self):
        idx = GridIndex(np.zeros((2, 2)), eps=1.0)
        with pytest.raises(IndexError):
            idx.neighbors(2)

    def test_neighbors_of_arbitrary_point(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0]])
        idx = GridIndex(pts, eps=2.0)
        assert set(idx.neighbors_of_point(0.5, 0.5).tolist()) == {0}
        assert idx.count_within(100.0, 100.0) == 0

    def test_negative_coordinates(self):
        pts = np.array([[-1.0, -1.0], [-1.5, -1.2], [3.0, 3.0]])
        idx = GridIndex(pts, eps=1.0)
        assert set(idx.neighbors(0).tolist()) == {0, 1}

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.5, max_value=30.0),
    )
    def test_matches_brute_force(self, pts, eps):
        arr = np.array(pts, dtype=np.float64)
        idx = GridIndex(arr, eps=eps)
        for i in range(len(arr)):
            got = set(idx.neighbors(i).tolist())
            for j in range(len(arr)):
                dist = float(np.linalg.norm(arr[i] - arr[j]))
                # Skip knife-edge pairs where the true distance and eps
                # differ by less than a float ulp — the grid prunes by
                # exact cell arithmetic while the norm rounds, so ties at
                # the boundary are implementation-defined.
                if abs(dist - eps) <= 1e-9 * max(1.0, eps):
                    continue
                if dist < eps:
                    assert j in got
                else:
                    assert j not in got


class TestNegativeCoordinates:
    """Queries straddling cell 0: floor-based cell maths must keep
    negative coordinates in their own cells, not mirror them onto the
    positive side (the int() truncation bug)."""

    def test_neighbors_across_the_origin(self):
        # (-0.3, 0) lives in cell (-1, 0), (0.3, 0) in cell (0, 0);
        # they are 0.6 < eps apart and must see each other.
        pts = np.array([[-0.3, 0.0], [0.3, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        assert set(idx.neighbors(0).tolist()) == {0, 1}
        assert set(idx.neighbors(1).tolist()) == {0, 1}

    def test_neighbors_of_point_near_negative_boundary(self):
        pts = np.array([[-0.3, 0.0], [0.3, 0.0], [-1.9, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        # Query just left of the origin: both straddling points, not the
        # far-left one (distance 1.899 > eps).
        got = set(idx.neighbors_of_point(-0.001, 0.0).tolist())
        assert got == {0, 1}

    def test_count_within_negative_quadrant(self):
        pts = np.array([[-0.5, -0.5], [-1.5, -1.5], [0.5, 0.5]])
        idx = GridIndex(pts, eps=1.0)
        assert idx.count_within(-0.5, -0.5) == 1
        assert idx.count_within(-1.0, -1.0) == 2

    def test_point_exactly_on_negative_cell_edge(self):
        pts = np.array([[-1.0, 0.0], [-0.1, 0.0], [-1.9, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        got = set(idx.neighbors(0).tolist())
        assert got == {0, 1, 2}

    def test_mirrored_points_are_not_conflated(self):
        # (-1.4, 0) is 1.8 from (0.4, 0): with floor-based cells they are
        # two cells apart and correctly invisible to each other, whereas
        # truncation would fold cell -1 onto 0 and bring them in range.
        pts = np.array([[-1.4, 0.0], [0.4, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        assert set(idx.neighbors(0).tolist()) == {0}
        assert set(idx.neighbors(1).tolist()) == {1}
