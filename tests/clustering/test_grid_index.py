"""Tests for the uniform grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import GridIndex


class TestGridIndex:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((3, 3)), eps=1.0)

    def test_rejects_bad_eps(self):
        pts = np.zeros((3, 2))
        for eps in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                GridIndex(pts, eps=eps)

    def test_neighbors_includes_self(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        idx = GridIndex(pts, eps=1.0)
        assert 0 in idx.neighbors(0)

    def test_neighbors_radius_inclusive(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0001, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        nb = set(idx.neighbors(0).tolist())
        assert nb == {0, 1}

    def test_neighbors_index_bounds(self):
        idx = GridIndex(np.zeros((2, 2)), eps=1.0)
        with pytest.raises(IndexError):
            idx.neighbors(2)

    def test_neighbors_of_arbitrary_point(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0]])
        idx = GridIndex(pts, eps=2.0)
        assert set(idx.neighbors_of_point(0.5, 0.5).tolist()) == {0}
        assert idx.count_within(100.0, 100.0) == 0

    def test_negative_coordinates(self):
        pts = np.array([[-1.0, -1.0], [-1.5, -1.2], [3.0, 3.0]])
        idx = GridIndex(pts, eps=1.0)
        assert set(idx.neighbors(0).tolist()) == {0, 1}

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.5, max_value=30.0),
    )
    def test_matches_brute_force(self, pts, eps):
        arr = np.array(pts, dtype=np.float64)
        idx = GridIndex(arr, eps=eps)
        for i in range(len(arr)):
            got = set(idx.neighbors(i).tolist())
            for j in range(len(arr)):
                dist = float(np.linalg.norm(arr[i] - arr[j]))
                # Skip knife-edge pairs where the true distance and eps
                # differ by less than a float ulp — the grid prunes by
                # exact cell arithmetic while the norm rounds, so ties at
                # the boundary are implementation-defined.
                if abs(dist - eps) <= 1e-9 * max(1.0, eps):
                    continue
                if dist < eps:
                    assert j in got
                else:
                    assert j not in got


class TestInputValidation:
    """NaN/inf coordinates must be rejected up front: floor-of-NaN would
    silently hash every bad point into one garbage bucket and corrupt the
    neighbourhood answers for the whole index."""

    def test_rejects_nan_points(self):
        pts = np.array([[0.0, 0.0], [float("nan"), 1.0], [2.0, 2.0]])
        with pytest.raises(ValueError, match="finite coordinates.*point 1"):
            GridIndex(pts, eps=1.0)

    def test_rejects_inf_points(self):
        pts = np.array([[0.0, float("inf")]])
        with pytest.raises(ValueError, match="finite coordinates"):
            GridIndex(pts, eps=1.0)

    def test_rejects_nonpositive_and_nonfinite_eps(self):
        pts = np.array([[0.0, 0.0]])
        for eps in (0.0, -2.5, float("nan"), float("-inf")):
            with pytest.raises(ValueError, match="eps must be"):
                GridIndex(pts, eps=eps)

    def test_empty_input_is_fine(self):
        idx = GridIndex(np.empty((0, 2)), eps=1.0)
        assert len(idx) == 0
        indptr, indices = idx.neighborhoods()
        assert indptr.tolist() == [0]
        assert indices.size == 0


class TestNeighborhoodsCSR:
    """The batched CSR adjacency must agree with the per-point probe —
    same members, same within-row order."""

    def _assert_rows_match(self, idx):
        indptr, indices = idx.neighborhoods()
        assert indptr.shape == (len(idx) + 1,)
        assert indptr[0] == 0 and indptr[-1] == indices.shape[0]
        for i in range(len(idx)):
            row = indices[indptr[i] : indptr[i + 1]]
            expected = idx.neighbors(i)
            assert row.tolist() == expected.tolist(), f"row {i} diverged"

    def test_matches_probe_small(self):
        pts = np.array(
            [[0.0, 0.0], [0.5, 0.0], [0.9, 0.9], [5.0, 5.0], [-0.3, 0.2]]
        )
        self._assert_rows_match(GridIndex(pts, eps=1.0))

    def test_matches_probe_with_duplicates(self):
        pts = np.array([[1.0, 1.0]] * 4 + [[1.4, 1.0], [9.0, 9.0]])
        self._assert_rows_match(GridIndex(pts, eps=0.5))

    def test_matches_probe_single_dense_cell(self):
        # Every point in one cell: the worst-case n^2 candidate block,
        # exercising the chunked pair expansion.
        rng = np.random.default_rng(3)
        pts = rng.uniform(0.0, 0.9, size=(200, 2))
        self._assert_rows_match(GridIndex(pts, eps=1000.0))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
            ),
            min_size=0,
            max_size=80,
        ),
        st.floats(min_value=0.5, max_value=20.0),
    )
    def test_matches_probe_random(self, pts, eps):
        arr = np.array(pts, dtype=np.float64).reshape(-1, 2)
        self._assert_rows_match(GridIndex(arr, eps=eps))


class TestNegativeCoordinates:
    """Queries straddling cell 0: floor-based cell maths must keep
    negative coordinates in their own cells, not mirror them onto the
    positive side (the int() truncation bug)."""

    def test_neighbors_across_the_origin(self):
        # (-0.3, 0) lives in cell (-1, 0), (0.3, 0) in cell (0, 0);
        # they are 0.6 < eps apart and must see each other.
        pts = np.array([[-0.3, 0.0], [0.3, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        assert set(idx.neighbors(0).tolist()) == {0, 1}
        assert set(idx.neighbors(1).tolist()) == {0, 1}

    def test_neighbors_of_point_near_negative_boundary(self):
        pts = np.array([[-0.3, 0.0], [0.3, 0.0], [-1.9, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        # Query just left of the origin: both straddling points, not the
        # far-left one (distance 1.899 > eps).
        got = set(idx.neighbors_of_point(-0.001, 0.0).tolist())
        assert got == {0, 1}

    def test_count_within_negative_quadrant(self):
        pts = np.array([[-0.5, -0.5], [-1.5, -1.5], [0.5, 0.5]])
        idx = GridIndex(pts, eps=1.0)
        assert idx.count_within(-0.5, -0.5) == 1
        assert idx.count_within(-1.0, -1.0) == 2

    def test_point_exactly_on_negative_cell_edge(self):
        pts = np.array([[-1.0, 0.0], [-0.1, 0.0], [-1.9, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        got = set(idx.neighbors(0).tolist())
        assert got == {0, 1, 2}

    def test_mirrored_points_are_not_conflated(self):
        # (-1.4, 0) is 1.8 from (0.4, 0): with floor-based cells they are
        # two cells apart and correctly invisible to each other, whereas
        # truncation would fold cell -1 onto 0 and bring them in range.
        pts = np.array([[-1.4, 0.0], [0.4, 0.0]])
        idx = GridIndex(pts, eps=1.0)
        assert set(idx.neighbors(0).tolist()) == {0}
        assert set(idx.neighbors(1).tolist()) == {1}
