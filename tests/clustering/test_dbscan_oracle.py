"""Randomized equivalence suite: CSR DBSCAN vs a brute-force oracle.

The fast path (batched CSR neighbourhoods + level-synchronous BFS) claims
*identical* labels to the classic one-point-at-a-time algorithm.  The
oracle here is the textbook formulation computed from an O(n²) distance
matrix with a FIFO queue — no grid, no CSR, no batching — so any ordering
or reachability bug in the fast path shows up as a label mismatch.
"""

from collections import deque

import numpy as np
import pytest

from repro.clustering import NOISE, dbscan

_UNVISITED = -2


def brute_force_dbscan(points: np.ndarray, eps: float, min_pts: int) -> np.ndarray:
    """Classic DBSCAN over an O(n²) distance matrix (the oracle)."""
    n = points.shape[0]
    labels = np.full(n, _UNVISITED, dtype=np.int64)
    if n == 0:
        return labels
    diffs = points[:, None, :] - points[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diffs, diffs)
    neighborhoods = [np.nonzero(dist2[i] <= eps * eps)[0] for i in range(n)]
    core = np.array([len(nb) >= min_pts for nb in neighborhoods], dtype=bool)

    cluster_id = 0
    for seed in range(n):
        if labels[seed] != _UNVISITED:
            continue
        if not core[seed]:
            labels[seed] = NOISE
            continue
        labels[seed] = cluster_id
        queue = deque(int(j) for j in neighborhoods[seed])
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster_id
            if labels[j] != _UNVISITED:
                continue
            labels[j] = cluster_id
            if core[j]:
                queue.extend(int(k) for k in neighborhoods[j])
        cluster_id += 1

    labels[labels == _UNVISITED] = NOISE
    return labels


def assert_identical(points, eps, min_pts):
    points = np.asarray(points, dtype=np.float64)
    result = dbscan(points, eps=eps, min_pts=min_pts)
    expected = brute_force_dbscan(points, eps=eps, min_pts=min_pts)
    assert result.labels.tolist() == expected.tolist()
    assert result.num_clusters == (expected.max() + 1 if expected.size else 0)


class TestOracleEdgeCases:
    def test_empty(self):
        result = dbscan(np.empty((0, 2)), eps=1.0, min_pts=2)
        assert result.labels.size == 0 and result.num_clusters == 0

    def test_all_noise(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        assert_identical(pts, eps=1.0, min_pts=2)
        assert dbscan(pts, eps=1.0, min_pts=2).num_clusters == 0

    def test_min_pts_one_every_point_is_core(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [10.2, 0.0]])
        assert_identical(pts, eps=1.0, min_pts=1)
        result = dbscan(pts, eps=1.0, min_pts=1)
        assert NOISE not in result.labels

    def test_duplicate_points(self):
        pts = np.array([[1.0, 1.0]] * 5 + [[8.0, 8.0]] * 2 + [[20.0, 20.0]])
        assert_identical(pts, eps=0.5, min_pts=3)

    def test_border_point_tie_goes_to_earliest_cluster(self):
        # Two core points at x=0 and x=2, with a non-core border point at
        # x=1 within eps of both (its own neighbourhood is only 3 < 4, so
        # it cannot bridge the clusters).  The earliest-discovered cluster
        # (seeded at index 0) must claim it — in the classic loop and in
        # the BFS alike.
        pts = np.array(
            [
                [0.0, 0.0], [0.0, 0.1], [0.0, -0.1],   # cluster around x=0
                [2.0, 0.0], [2.0, 0.1], [2.0, -0.1],   # cluster around x=2
                [1.0, 0.0],                            # shared border point
            ]
        )
        assert_identical(pts, eps=1.0, min_pts=4)
        result = dbscan(pts, eps=1.0, min_pts=4)
        assert not result.core_mask[6]
        assert result.num_clusters == 2
        assert result.labels[6] == result.labels[0] == 0
        assert result.labels[3] == 1

    def test_chain_of_cores_single_cluster(self):
        pts = np.array([[float(i) * 0.9, 0.0] for i in range(30)])
        assert_identical(pts, eps=1.0, min_pts=2)
        assert dbscan(pts, eps=1.0, min_pts=2).num_clusters == 1

    def test_single_point(self):
        assert_identical(np.array([[3.0, 4.0]]), eps=1.0, min_pts=1)
        assert_identical(np.array([[3.0, 4.0]]), eps=1.0, min_pts=2)


@pytest.mark.parametrize("seed", range(10))
def test_randomized_uniform(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 120))
    pts = rng.uniform(-30, 30, size=(n, 2))
    eps = float(rng.uniform(0.5, 8.0))
    min_pts = int(rng.integers(1, 7))
    assert_identical(pts, eps=eps, min_pts=min_pts)


@pytest.mark.parametrize("seed", range(10))
def test_randomized_blobs(seed):
    rng = np.random.default_rng(1000 + seed)
    centers = rng.uniform(-20, 20, size=(int(rng.integers(1, 5)), 2))
    pts = np.vstack(
        [c + rng.normal(0, 1.5, size=(int(rng.integers(3, 30)), 2)) for c in centers]
    )
    assert_identical(pts, eps=float(rng.uniform(0.8, 4.0)), min_pts=int(rng.integers(2, 6)))


@pytest.mark.parametrize("seed", range(6))
def test_randomized_with_duplicates(seed):
    rng = np.random.default_rng(2000 + seed)
    base = rng.uniform(-10, 10, size=(int(rng.integers(2, 25)), 2))
    # Sample with replacement: guaranteed duplicate coordinates.
    pts = base[rng.integers(0, base.shape[0], size=60)]
    assert_identical(pts, eps=float(rng.uniform(0.5, 3.0)), min_pts=int(rng.integers(1, 6)))


@pytest.mark.parametrize("seed", range(6))
def test_randomized_grid_ties(seed):
    # Integer-lattice points at exactly eps spacing: every neighbourhood
    # boundary is a tie, stressing the <= eps comparison consistency.
    rng = np.random.default_rng(3000 + seed)
    xs, ys = np.meshgrid(np.arange(6, dtype=np.float64), np.arange(6, dtype=np.float64))
    lattice = np.column_stack([xs.ravel(), ys.ravel()])
    pts = lattice[rng.random(lattice.shape[0]) < 0.7]
    assert_identical(pts, eps=1.0, min_pts=int(rng.integers(1, 5)))
