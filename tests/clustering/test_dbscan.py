"""Tests for the from-scratch DBSCAN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import NOISE, dbscan


def blob(rng, center, n, sigma=0.3):
    return rng.normal(center, sigma, (n, 2))


class TestBasics:
    def test_empty_input(self):
        res = dbscan(np.empty((0, 2)), eps=1.0, min_pts=3)
        assert res.num_clusters == 0
        assert res.labels.size == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 3)), eps=1.0, min_pts=2)

    def test_rejects_bad_min_pts(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 2)), eps=1.0, min_pts=0)

    def test_single_point_is_noise_with_min_pts_2(self):
        res = dbscan(np.array([[0.0, 0.0]]), eps=1.0, min_pts=2)
        assert res.num_clusters == 0
        assert res.labels[0] == NOISE

    def test_single_point_cluster_with_min_pts_1(self):
        res = dbscan(np.array([[0.0, 0.0]]), eps=1.0, min_pts=1)
        assert res.num_clusters == 1
        assert res.labels[0] == 0

    def test_two_separated_blobs(self):
        rng = np.random.default_rng(0)
        pts = np.vstack([blob(rng, [0, 0], 20), blob(rng, [100, 100], 20)])
        res = dbscan(pts, eps=2.0, min_pts=4)
        assert res.num_clusters == 2
        assert set(res.labels[:20].tolist()) == {res.labels[0]}
        assert set(res.labels[20:].tolist()) == {res.labels[20]}
        assert res.labels[0] != res.labels[20]

    def test_outlier_is_noise(self):
        rng = np.random.default_rng(1)
        pts = np.vstack([blob(rng, [0, 0], 20), [[500.0, 500.0]]])
        res = dbscan(pts, eps=2.0, min_pts=4)
        assert res.labels[-1] == NOISE

    def test_chain_is_density_connected(self):
        # A line of points each within eps of the next forms one cluster.
        pts = np.column_stack([np.arange(30) * 0.9, np.zeros(30)])
        res = dbscan(pts, eps=1.0, min_pts=3)
        assert res.num_clusters == 1
        assert np.all(res.labels == 0)

    def test_members_and_noise_accessors(self):
        rng = np.random.default_rng(2)
        pts = np.vstack([blob(rng, [0, 0], 10), [[99.0, 99.0]]])
        res = dbscan(pts, eps=2.0, min_pts=3)
        assert set(res.members(0).tolist()) == set(range(10))
        assert res.noise().tolist() == [10]
        with pytest.raises(ValueError):
            res.members(5)

    def test_core_points_have_dense_neighborhoods(self):
        rng = np.random.default_rng(3)
        pts = np.vstack([blob(rng, [0, 0], 20), [[50.0, 50.0]]])
        res = dbscan(pts, eps=2.0, min_pts=4)
        for i, is_core in enumerate(res.core_mask):
            count = int(
                (np.linalg.norm(pts - pts[i], axis=1) <= 2.0).sum()
            )
            assert is_core == (count >= 4)

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 20, (100, 2))
        a = dbscan(pts, eps=2.0, min_pts=3)
        b = dbscan(pts, eps=2.0, min_pts=3)
        assert np.array_equal(a.labels, b.labels)


coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(coords, coords), min_size=1, max_size=80),
        st.floats(min_value=0.5, max_value=10.0),
        st.integers(min_value=1, max_value=6),
    )
    def test_invariants(self, pts, eps, min_pts):
        arr = np.array(pts, dtype=np.float64)
        res = dbscan(arr, eps=eps, min_pts=min_pts)
        labels = res.labels
        # Labels are contiguous 0..k-1 or NOISE.
        clusters = set(labels.tolist()) - {NOISE}
        assert clusters == set(range(res.num_clusters))
        # Every core point is in a cluster, never noise.
        assert not np.any(res.core_mask & (labels == NOISE))
        # Each cluster contains at least one core point and >= min_pts
        # points (core's own neighbourhood joins the cluster).
        for c in clusters:
            members = np.nonzero(labels == c)[0]
            assert res.core_mask[members].any()
            assert len(members) >= min(min_pts, len(arr))
        # Noise points are not within eps of any core point.
        for i in np.nonzero(labels == NOISE)[0]:
            dists = np.linalg.norm(arr - arr[i], axis=1)
            near_core = (dists <= eps) & res.core_mask
            assert not near_core.any()

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.tuples(coords, coords), min_size=4, max_size=60),
        st.floats(min_value=0.5, max_value=10.0),
    )
    def test_min_pts_monotone(self, pts, eps):
        """Raising min_pts never increases the number of core points."""
        arr = np.array(pts, dtype=np.float64)
        low = dbscan(arr, eps=eps, min_pts=2)
        high = dbscan(arr, eps=eps, min_pts=5)
        assert high.core_mask.sum() <= low.core_mask.sum()


class TestBorderPoints:
    """Edge cases around border points (non-core members of a cluster)."""

    # Two four-point square clusters whose cores sit > eps apart, plus a
    # single border point within eps of exactly one core in each: its
    # neighbourhood is {self, a2, b1} = 3 < min_pts=4, so it is a border
    # point reachable from *both* clusters but can density-merge neither.
    A = [(0.0, 0.0), (0.6, 0.0), (0.0, 0.6), (0.6, 0.6)]
    B = [(2.4, 0.0), (3.0, 0.0), (2.4, 0.6), (3.0, 0.6)]
    P = (1.5, 0.0)

    def test_shared_border_point_goes_to_first_discovered_cluster(self):
        res = dbscan(np.array(self.A + self.B + [self.P]), eps=1.0, min_pts=4)
        assert res.num_clusters == 2
        p = len(self.A) + len(self.B)
        assert not res.core_mask[p]
        # A's seed (index 0) expands first, so cluster 0 claims P.
        assert res.labels[p] == 0
        assert set(res.labels[: len(self.A)]) == {0}
        assert set(res.labels[len(self.A) : p]) == {1}

    def test_claim_is_deterministic_under_reordering(self):
        """Whichever cluster is discovered first owns the shared border."""
        res = dbscan(np.array(self.B + self.A + [self.P]), eps=1.0, min_pts=4)
        p = len(self.A) + len(self.B)
        # B now seeds cluster 0 and claims P.
        assert res.labels[p] == 0
        assert set(res.labels[: len(self.B)]) == {0}
        assert set(res.labels[len(self.B) : p]) == {1}

    def test_noise_to_border_relabel(self):
        """A border point visited before its cluster's cores is first
        marked NOISE by the seed loop, then relabelled during expansion."""
        far_noise = (50.0, 50.0)
        pts = np.array([self.P, far_noise] + self.A + self.B)
        res = dbscan(pts, eps=1.0, min_pts=4)
        assert res.num_clusters == 2
        assert not res.core_mask[0]
        assert res.labels[0] == 0  # relabelled from provisional NOISE
        assert res.labels[1] == NOISE  # genuine noise stays noise

    def test_relabel_path_matches_core_first_ordering(self):
        """Point order must not change the partition, only cluster ids."""
        first = dbscan(np.array(self.A + self.B + [self.P]), eps=1.0, min_pts=4)
        last = dbscan(np.array([self.P] + self.A + self.B), eps=1.0, min_pts=4)
        # Same member sets for the cluster that owns A and P.
        a_cluster_first = {tuple((self.A + self.B + [self.P])[i])
                           for i in first.members(0)}
        a_cluster_last = {tuple(([self.P] + self.A + self.B)[i])
                          for i in last.members(0)}
        assert a_cluster_first == a_cluster_last == set(self.A) | {self.P}
