"""Tests for the top-k accuracy runner."""

import pytest

from repro.datagen import make_dataset
from repro.evalx import ExperimentScale, run_top_k


@pytest.fixture(scope="module")
def tiny():
    scale = ExperimentScale(
        dataset_subtrajectories=16,
        training_subtrajectories=10,
        num_queries=6,
        period=60,
    )
    return make_dataset("cow", 16, 60), scale


class TestRunTopK:
    def test_monotone_in_k(self, tiny):
        dataset, scale = tiny
        rows = run_top_k(dataset, [1, 3, 5], scale, prediction_length=20)
        errors = [r["error_at_k"] for r in rows]
        assert [r["k"] for r in rows] == [1, 3, 5]
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_sorts_unordered_ks(self, tiny):
        dataset, scale = tiny
        rows = run_top_k(dataset, [5, 1], scale, prediction_length=20)
        assert [r["k"] for r in rows] == [1, 5]

    def test_validation(self, tiny):
        dataset, scale = tiny
        with pytest.raises(ValueError):
            run_top_k(dataset, [], scale)
        with pytest.raises(ValueError):
            run_top_k(dataset, [0], scale)
