"""Tests for the evaluation harness."""

import numpy as np
import pytest

from repro.evalx import (
    evaluate_hpm,
    evaluate_linear,
    evaluate_motion_function,
    evaluate_rmf,
    generate_queries,
)
from repro.core import HPMConfig, HybridPredictionModel
from repro.motion import LinearMotionFunction
from repro.trajectory import Trajectory, TrajectoryDataset


@pytest.fixture(scope="module")
def small_world():
    """A tiny but patterned dataset with a fitted model and a workload."""
    rng = np.random.default_rng(0)
    period = 20
    base = np.column_stack(
        [50.0 * np.arange(period), 25.0 * np.arange(period)]
    )
    blocks = [base + rng.normal(0, 1.0, base.shape) for _ in range(20)]
    dataset = TrajectoryDataset(
        "line", Trajectory(np.vstack(blocks)), period=period
    )
    config = HPMConfig(
        period=period, eps=6.0, min_pts=4, distant_threshold=8, recent_window=4
    )
    model = HybridPredictionModel(config).fit(dataset.training_split(15))
    workload = generate_queries(
        dataset, 5, 15, 15, recent_window=4, rng=np.random.default_rng(1)
    )
    return model, workload


class TestEvaluateHPM:
    def test_result_fields(self, small_world):
        model, workload = small_world
        result = evaluate_hpm(model, workload)
        assert result.predictor == "hpm"
        assert len(result.errors) == len(workload)
        assert result.mean_error == pytest.approx(
            sum(result.errors) / len(result.errors)
        )
        assert result.mean_query_ms >= 0
        assert sum(result.method_counts.values()) == len(workload)

    def test_patterned_data_yields_low_error(self, small_world):
        model, workload = small_world
        result = evaluate_hpm(model, workload)
        assert result.mean_error < 50.0

    def test_accepts_raw_query_list(self, small_world):
        model, workload = small_world
        result = evaluate_hpm(model, list(workload.queries)[:3])
        assert len(result.errors) == 3


class TestEvaluateMotion:
    def test_rmf_on_linear_data_is_accurate(self, small_world):
        _, workload = small_world
        result = evaluate_rmf(workload)
        assert result.predictor == "rmf"
        assert result.mean_error < 60.0  # linear motion is RMF's easy case

    def test_linear_baseline(self, small_world):
        _, workload = small_world
        result = evaluate_linear(workload)
        assert result.predictor == "linear"
        assert result.mean_error < 60.0

    def test_short_window_falls_back_to_linear(self, small_world):
        """RMF needs retrospect+2 samples; the harness degrades gracefully."""
        _, workload = small_world
        queries = [
            type(q)(recent=q.recent[-2:], query_time=q.query_time, truth=q.truth)
            for q in workload.queries[:5]
        ]
        result = evaluate_rmf(queries)
        assert len(result.errors) == 5

    def test_custom_factory_name(self, small_world):
        _, workload = small_world
        result = evaluate_motion_function(
            LinearMotionFunction, workload, name="mine"
        )
        assert result.predictor == "mine"

    def test_str(self, small_world):
        _, workload = small_world
        assert "mean_error" in str(evaluate_linear(workload))
