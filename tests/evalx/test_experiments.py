"""Tests for the experiment runners (small-scale smoke + contract checks)."""

import numpy as np
import pytest

from repro.datagen import make_dataset
from repro.evalx import (
    ExperimentScale,
    run_confidence,
    run_eps,
    run_minpts,
    run_prediction_length,
    run_pruning_ablation,
    run_query_time,
    run_subtrajectories,
    run_tpt_scaling,
    run_weight_functions,
    synthesize_patterns,
    synthesize_regions,
)
from repro.evalx.reporting import format_series, format_table


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale(
        dataset_subtrajectories=16,
        training_subtrajectories=10,
        num_queries=5,
        period=60,
    )


@pytest.fixture(scope="module")
def tiny_bike(tiny_scale):
    return make_dataset("bike", tiny_scale.dataset_subtrajectories, tiny_scale.period)


class TestScale:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(dataset_subtrajectories=5, training_subtrajectories=5)


class TestRunners:
    def test_prediction_length_rows(self, tiny_bike, tiny_scale):
        rows = run_prediction_length(tiny_bike, [5, 20], tiny_scale)
        assert [r["prediction_length"] for r in rows] == [5, 20]
        for row in rows:
            assert row["hpm_error"] >= 0
            assert row["rmf_error"] >= 0
            assert sum(row["hpm_methods"].values()) == tiny_scale.num_queries

    def test_subtrajectories_rows(self, tiny_bike, tiny_scale):
        rows = run_subtrajectories(
            tiny_bike, [6, 10], tiny_scale, prediction_length=10
        )
        assert [r["num_subtrajectories"] for r in rows] == [6, 10]
        assert all(r["num_patterns"] >= 0 for r in rows)

    def test_eps_rows_pattern_monotonicity(self, tiny_bike, tiny_scale):
        """More Eps -> at least as many frequent regions -> typically more
        patterns (paper Fig. 7a's growth)."""
        rows = run_eps(tiny_bike, [10.0, 40.0], tiny_scale, prediction_length=10)
        assert rows[0]["num_patterns"] <= rows[1]["num_patterns"]

    def test_minpts_rows_pattern_monotonicity(self, tiny_bike, tiny_scale):
        rows = run_minpts(tiny_bike, [3, 8], tiny_scale, prediction_length=10)
        assert rows[0]["num_patterns"] >= rows[1]["num_patterns"]

    def test_confidence_rows_decreasing_patterns(self, tiny_bike, tiny_scale):
        rows = run_confidence(
            tiny_bike, [0.0, 0.5, 0.99], tiny_scale, prediction_length=10
        )
        counts = [r["num_patterns"] for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_query_time_rows(self, tiny_bike, tiny_scale):
        rows = run_query_time(
            tiny_bike, [10], tiny_scale, prediction_length=10, num_queries=5
        )
        assert rows[0]["hpm_ms"] > 0
        assert rows[0]["rmf_ms"] > 0

    def test_pruning_ablation(self, tiny_bike, tiny_scale):
        row = run_pruning_ablation(tiny_bike, tiny_scale)
        assert row["unpruned_rules"] >= row["pruned_patterns"]
        assert 0.0 <= row["reduction_pct"] <= 100.0

    def test_pruning_ablation_counts_match_mask_free_oracle(
        self, tiny_bike, tiny_scale
    ):
        """Routing the ablation through precomputed/rebuilt bitmap masks
        must not change its rule counts vs a from-scratch recount."""
        from repro.core.patterns import count_rules_unpruned
        from repro.evalx.experiments import fit_model

        row = run_pruning_ablation(tiny_bike, tiny_scale)
        model = fit_model(tiny_bike, tiny_scale)
        expected = count_rules_unpruned(
            model.patterns_,
            model.regions_,
            tiny_scale.training_subtrajectories,
            model.config.min_confidence,
            masks=None,
        )
        assert row["pruned_patterns"] == model.pattern_count
        assert row["unpruned_rules"] == expected

    def test_weight_functions(self, tiny_bike, tiny_scale):
        rows = run_weight_functions(tiny_bike, tiny_scale, prediction_length=10)
        assert [r["weight_function"] for r in rows] == [
            "linear",
            "quadratic",
            "exponential",
            "factorial",
        ]


class TestTPTScaling:
    def test_synthesize_regions(self):
        regions = synthesize_regions(40, period=100, rng=np.random.default_rng(0))
        assert len(regions) == 40
        offsets = {r.offset for r in regions}
        assert len(offsets) > 20  # spread over the period

    def test_synthesize_patterns_valid(self):
        rng = np.random.default_rng(1)
        regions = synthesize_regions(30, 100, rng)
        patterns = synthesize_patterns(regions, 200, rng)
        assert len(patterns) == 200
        for p in patterns:
            assert p.premise_offsets[-1] < p.consequence_offset
            assert 0.3 <= p.confidence <= 1.0

    def test_run_tpt_scaling_rows(self):
        rows = run_tpt_scaling([200, 400], [30], period=60, num_queries=20)
        assert len(rows) == 2
        small, large = rows
        assert large["storage_mb"] > small["storage_mb"]
        assert large["tpt_ms"] >= 0
        assert large["brute_ms"] >= 0


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "value"], [[1, 2.345], [10, 20.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.3" in lines[2]

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_has_title(self):
        out = format_series("Fig. 5", ["x"], [[1]])
        assert "Fig. 5" in out
