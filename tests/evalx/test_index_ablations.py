"""Tests for the index-design ablation runners."""

import pytest

from repro.evalx import run_chooseleaf_ablation, run_fanout_ablation
from repro.signature import SignatureTree


class TestSearchStats:
    def test_counts_nodes_and_matches_search(self):
        tree = SignatureTree(max_entries=4)
        for i in range(100):
            tree.insert(1 << (i % 12), i)
        predicate = lambda sig: sig & 0b1 != 0  # noqa: E731
        hits, visited = tree.search_stats(predicate)
        assert sorted(e.payload for e in hits) == sorted(
            e.payload for e in tree.search(predicate)
        )
        assert visited >= 1
        stats = tree.stats()
        assert visited <= stats.node_count


class TestChooseLeafAblation:
    def test_policies_agree_on_results(self):
        row = run_chooseleaf_ablation(
            num_patterns=1500, num_regions=80, num_queries=30
        )
        assert row["algorithm1_hits"] == row["generic_hits"]
        assert row["algorithm1_nodes_per_query"] > 0
        assert row["generic_nodes_per_query"] > 0


class TestFanoutAblation:
    def test_height_decreases_with_fanout(self):
        rows = run_fanout_ablation(
            [8, 64], num_patterns=1500, num_regions=80, num_queries=20
        )
        assert rows[0]["height"] >= rows[1]["height"]
        for r in rows:
            assert r["build_s"] > 0
            assert r["storage_mb"] > 0
