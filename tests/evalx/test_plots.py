"""Tests for ASCII chart rendering."""

import pytest

from repro.evalx.plots import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart(
            "demo", [0, 1, 2], {"a": [0.0, 1.0, 2.0], "b": [2.0, 1.0, 0.0]}
        )
        assert "demo" in out
        assert "o a" in out and "x b" in out
        assert "o" in out and "x" in out

    def test_extremes_on_border_rows(self):
        out = ascii_chart("t", [0, 1], {"s": [0.0, 10.0]})
        lines = out.splitlines()
        plot_rows = [l for l in lines if "|" in l]
        assert "o" in plot_rows[0]  # max on top row
        assert "o" in plot_rows[-1]  # min on bottom row

    def test_axis_labels(self):
        out = ascii_chart("t", [5, 50], {"s": [1.0, 100.0]})
        assert "100" in out
        assert "1" in out
        assert "50" in out

    def test_log_scale(self):
        out = ascii_chart("t", [0, 1, 2], {"s": [1.0, 100.0, 10000.0]}, log_y=True)
        assert "(log y)" in out
        lines = [l for l in out.splitlines() if "|" in l]
        # In log space the midpoint lands mid-chart.
        mid_rows = lines[len(lines) // 3 : 2 * len(lines) // 3 + 1]
        assert any("o" in l for l in mid_rows)

    def test_constant_series_ok(self):
        out = ascii_chart("t", [0, 1], {"s": [5.0, 5.0]})
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart("t", [0, 1], {})
        with pytest.raises(ValueError):
            ascii_chart("t", [0], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart("t", [1, 0], {"s": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_chart("t", [0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart("t", [0, 1], {"s": [1.0, 2.0]}, width=5)

    def test_many_series_cycle_markers(self):
        series = {f"s{i}": [float(i), float(i + 1)] for i in range(10)}
        out = ascii_chart("t", [0, 1], series)
        assert "s9" in out
