"""Tests for the extra prediction baselines."""

import numpy as np
import pytest

from repro.evalx import LastPositionPredictor, PeriodicMeanPredictor, evaluate_baseline
from repro.evalx.workloads import PredictiveQuery
from repro.trajectory import Point, TimedPoint, Trajectory


def periodic_history(period=10, subs=8, seed=0, sigma=0.5):
    rng = np.random.default_rng(seed)
    base = np.column_stack([10.0 * np.arange(period), np.zeros(period)])
    blocks = [base + rng.normal(0, sigma, base.shape) for _ in range(subs)]
    return Trajectory(np.vstack(blocks)), base


class TestPeriodicMean:
    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicMeanPredictor(0)
        pred = PeriodicMeanPredictor(10)
        with pytest.raises(RuntimeError):
            pred.predict([], 5)
        with pytest.raises(ValueError):
            pred.fit(Trajectory(np.zeros((5, 2))))

    def test_predicts_offset_mean(self):
        history, base = periodic_history()
        pred = PeriodicMeanPredictor(10).fit(history)
        for offset in range(10):
            p = pred.predict([], 1000 + offset)
            assert abs(p.x - base[(1000 + offset) % 10][0]) < 1.0

    def test_recent_is_ignored(self):
        history, _ = periodic_history()
        pred = PeriodicMeanPredictor(10).fit(history)
        a = pred.predict([], 23)
        b = pred.predict([TimedPoint(20, 999.0, 999.0)], 23)
        assert a == b

    def test_partial_last_period_ok(self):
        history, _ = periodic_history()
        longer = Trajectory(
            np.vstack([history.positions, history.positions[:3]])
        )
        pred = PeriodicMeanPredictor(10).fit(longer)
        assert pred.is_fitted

    def test_unobserved_offsets_borrow_neighbors(self):
        # Period 10 but only 7 samples: offsets 7-9 unobserved.
        traj = Trajectory(np.column_stack([np.arange(12.0), np.zeros(12)]))
        pred = PeriodicMeanPredictor(10).fit(traj)
        p = pred.predict([], 8)
        assert np.isfinite(p.x)


class TestLastPosition:
    def test_returns_last(self):
        pred = LastPositionPredictor()
        recent = [TimedPoint(0, 1.0, 1.0), TimedPoint(1, 2.0, 3.0)]
        assert pred.predict(recent, 100) == Point(2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LastPositionPredictor().predict([], 5)


class TestEvaluateBaseline:
    def test_evaluates_over_queries(self):
        history, base = periodic_history()
        pred = PeriodicMeanPredictor(10).fit(history)
        queries = [
            PredictiveQuery(
                recent=(TimedPoint(100, 0.0, 0.0),),
                query_time=103,
                truth=Point(base[3][0], base[3][1]),
            )
        ]
        result = evaluate_baseline(pred, queries, "periodic_mean")
        assert result.predictor == "periodic_mean"
        assert result.mean_error < 1.0
