"""Additional reporting-format tests."""

from repro.evalx.reporting import format_series, format_table


class TestFormatting:
    def test_floats_one_decimal(self):
        out = format_table(["v"], [[3.14159]])
        assert "3.1" in out
        assert "3.14" not in out

    def test_bools_rendered_as_words(self):
        out = format_table(["flag"], [[True], [False]])
        assert "True" in out and "False" in out

    def test_right_alignment(self):
        out = format_table(["n"], [[1], [100]])
        lines = out.splitlines()
        assert lines[2].endswith("  1") or lines[2].strip() == "1"
        assert lines[3].strip() == "100"

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2

    def test_series_bar_length(self):
        out = format_series("T", ["a"], [[1]])
        lines = [l for l in out.splitlines() if l]
        assert set(lines[1]) == {"="}
