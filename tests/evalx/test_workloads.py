"""Tests for query-workload generation."""

import numpy as np
import pytest

from repro.evalx import generate_queries
from repro.evalx.workloads import PredictiveQuery
from repro.trajectory import Point, TimedPoint, Trajectory, TrajectoryDataset


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return TrajectoryDataset(
        name="toy",
        trajectory=Trajectory(rng.uniform(0, 100, (500, 2))),
        period=50,
    )


class TestPredictiveQuery:
    def test_validation(self):
        recent = (TimedPoint(5, 0.0, 0.0),)
        with pytest.raises(ValueError):
            PredictiveQuery(recent=(), query_time=10, truth=Point(0, 0))
        with pytest.raises(ValueError):
            PredictiveQuery(recent=recent, query_time=5, truth=Point(0, 0))

    def test_derived_fields(self):
        q = PredictiveQuery(
            recent=(TimedPoint(5, 0.0, 0.0), TimedPoint(6, 1.0, 0.0)),
            query_time=16,
            truth=Point(0, 0),
        )
        assert q.current_time == 6
        assert q.prediction_length == 10


class TestGeneration:
    def test_workload_shape(self, dataset):
        wl = generate_queries(
            dataset, prediction_length=10, num_queries=25,
            num_training_subtrajectories=6, recent_window=5,
            rng=np.random.default_rng(1),
        )
        assert len(wl) == 25
        assert wl.dataset_name == "toy"
        assert wl.prediction_length == 10

    def test_queries_respect_protocol(self, dataset):
        wl = generate_queries(
            dataset, 10, 30, 6, recent_window=5, rng=np.random.default_rng(2)
        )
        for q in wl.queries:
            # Recent window is contiguous and ends at tc.
            times = [p.t for p in q.recent]
            assert times == list(range(times[0], times[0] + 5))
            assert q.prediction_length == 10
            # Queries come from held-out data (after 6 training periods).
            assert times[0] >= 6 * 50
            # tq stays within the same period as tc (Definition 2: tq < T).
            assert q.query_time // 50 == q.current_time // 50

    def test_truth_matches_trajectory(self, dataset):
        wl = generate_queries(
            dataset, 7, 10, 6, recent_window=3, rng=np.random.default_rng(3)
        )
        for q in wl.queries:
            assert q.truth == dataset.trajectory.at(q.query_time)
            for p in q.recent:
                assert p.point == dataset.trajectory.at(p.t)

    def test_deterministic_with_seed(self, dataset):
        a = generate_queries(dataset, 10, 5, 6, rng=np.random.default_rng(7))
        b = generate_queries(dataset, 10, 5, 6, rng=np.random.default_rng(7))
        assert a == b

    def test_validation(self, dataset):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_queries(dataset, 0, 5, 6, rng=rng)
        with pytest.raises(ValueError):
            generate_queries(dataset, 10, 0, 6, rng=rng)
        with pytest.raises(ValueError):
            generate_queries(dataset, 10, 5, 6, recent_window=1, rng=rng)

    def test_too_long_prediction_rejected(self, dataset):
        with pytest.raises(ValueError, match="does not fit"):
            generate_queries(dataset, 48, 5, 6, recent_window=5)

    def test_no_heldout_data_rejected(self, dataset):
        with pytest.raises(ValueError, match="held-out"):
            generate_queries(dataset, 10, 5, 10)
