"""Tests for query explanation."""

import pytest

from repro.core.config import HPMConfig
from repro.core.explain import explain_query
from repro.core.keys import KeyCodec
from repro.core.prediction import HybridPredictor
from repro.core.tpt import TrajectoryPatternTree
from repro.trajectory import TimedPoint


@pytest.fixture
def predictor(jane_region_set, jane_patterns):
    codec = KeyCodec.from_patterns(jane_region_set, jane_patterns)
    tree = TrajectoryPatternTree(codec, max_entries=4)
    tree.bulk_load_patterns(jane_patterns)
    config = HPMConfig(
        period=3, eps=5.0, distant_threshold=2, time_relaxation=1, recent_window=3
    )
    return HybridPredictor(jane_region_set, codec, tree, config)


def at_home_then_city(t0=30):
    return [TimedPoint(t0, 0.0, 0.0), TimedPoint(t0 + 1, 100.0, 0.0)]


class TestExplainFQP:
    def test_matches_paper_worked_example(self, predictor):
        """The §VI-B query: Work scores 0.5, Beach 0.4/3 ≈ 0.133."""
        report = explain_query(predictor, at_home_then_city(), 32)
        assert report.method == "fqp"
        assert report.recent_regions == ("R_0^0", "R_1^0")
        assert len(report.candidates) == 2
        top, second = report.candidates
        assert top.pattern.consequence.label == "R_2^0"
        assert top.score == pytest.approx(0.5)
        assert top.premise_similarity == pytest.approx(1.0)
        assert top.consequence_similarity is None
        assert second.score == pytest.approx(0.4 / 3)

    def test_matched_breakdown(self, predictor):
        report = explain_query(predictor, at_home_then_city(), 32)
        top = report.candidates[0]
        # Work's premise home∧city: both matched, weights 1/3 and 2/3.
        assert top.matched_regions == ("R_0^0", "R_1^0")
        assert top.matched_weights == pytest.approx((1 / 3, 2 / 3))
        second = report.candidates[1]
        # Beach's premise home∧shopping: only home matched (weight 1/3).
        assert second.matched_regions == ("R_0^0",)
        assert second.matched_weights == pytest.approx((1 / 3,))

    def test_explanation_matches_live_ranking(self, predictor):
        report = explain_query(predictor, at_home_then_city(), 32)
        live = predictor.forward_query(at_home_then_city(), 32, k=2)
        assert [c.pattern for c in report.candidates] == [
            r.pattern for r in live
        ]
        assert [c.score for c in report.candidates] == pytest.approx(
            [r.score for r in live]
        )

    def test_does_not_touch_stats(self, predictor):
        before = dict(predictor.stats)
        explain_query(predictor, at_home_then_city(), 32)
        assert predictor.stats == before

    def test_str_rendering(self, predictor):
        text = str(explain_query(predictor, at_home_then_city(), 32))
        assert "FQP query" in text
        assert "S_p=0.500" in text
        assert "matched: R_0^0" in text


class TestExplainBQPAndMotion:
    def test_bqp_explanation(self, predictor):
        report = explain_query(predictor, [TimedPoint(30, 0.0, 0.0)], 32)
        assert report.method == "bqp"
        assert all(c.consequence_similarity is not None for c in report.candidates)
        live = predictor.backward_query([TimedPoint(30, 0.0, 0.0)], 32, k=4)
        assert [c.score for c in report.candidates] == pytest.approx(
            [r.score for r in live]
        )

    def test_motion_fallback_explained(self, predictor):
        recent = [TimedPoint(30, 999.0, 999.0), TimedPoint(31, 999.0, 999.0)]
        report = explain_query(predictor, recent, 32)
        assert report.method == "motion"
        assert report.candidates == ()
        assert "motion function answers" in str(report)

    def test_validation(self, predictor):
        with pytest.raises(ValueError):
            explain_query(predictor, [], 10)
        with pytest.raises(ValueError):
            explain_query(predictor, at_home_then_city(), 31)
        with pytest.raises(ValueError):
            explain_query(predictor, at_home_then_city(), 35, max_candidates=0)

    def test_max_candidates_caps(self, predictor):
        report = explain_query(
            predictor, [TimedPoint(30, 0.0, 0.0)], 32, max_candidates=2
        )
        assert len(report.candidates) == 2
