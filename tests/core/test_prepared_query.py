"""Prepared-query plans and the query-path caches.

The PR-4 contract: every cache on the query path (prepared plans, the
premise-weight tables, the TPT consequence-offset index, the locate memo,
the RMF walk frontier) must leave answers **byte-identical** to the
straightforward per-call computation.  These tests pin that down by
comparing against legacy-shaped oracles: tree descents, uncached
similarity, full sorts and fresh per-query predictors.
"""

import pickle

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.keys import KeyCodec
from repro.core.model import HybridPredictionModel
from repro.core.patterns import (
    count_rules_unpruned,
    mine_trajectory_patterns,
    region_visit_masks,
)
from repro.core.plan import PreparedQuery
from repro.core.prediction import HybridPredictor
from repro.core.similarity import (
    PremiseScorer,
    bqp_score,
    consequence_similarity,
    fqp_score,
    premise_similarity,
)
from repro.core.tpt import TrajectoryPatternTree
from repro.motion.rmf import RecursiveMotionFunction
from repro.trajectory import Point, TimedPoint, Trajectory


@pytest.fixture(scope="module")
def world():
    """A fitted model with a rich FQP/BQP/motion query mix."""
    rng = np.random.default_rng(0)
    period = 16
    base = np.column_stack([70.0 * np.arange(period), 35.0 * np.arange(period)])
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(25)]
    cfg = HPMConfig(
        period=period, eps=5.0, min_pts=4, distant_threshold=6, recent_window=3
    )
    model = HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks)))
    return model, base


@pytest.fixture(scope="module")
def pattern_free_model():
    """A fitted model whose history yields no frequent region at all."""
    rng = np.random.default_rng(7)
    period = 8
    positions = rng.uniform(0, 1e6, size=(period * 6, 2))
    cfg = HPMConfig(period=period, eps=1.0, min_pts=4, distant_threshold=3)
    model = HybridPredictionModel(cfg).fit(Trajectory(positions))
    assert model.predictor_ is None  # genuinely pattern-free
    return model


def predictions_equal(a, b):
    assert len(a) == len(b)
    for pa, pb in zip(a, b):
        assert pa.location == pb.location
        assert pa.method == pb.method
        assert pa.score == pb.score  # exact — byte-identity, not approx
        assert pa.pattern == pb.pattern


# ----------------------------------------------------------------------
# plan answers == per-call answers
# ----------------------------------------------------------------------
class TestPreparedPlanEquivalence:
    def test_one_plan_many_query_times(self, world):
        model, base = world
        t0 = 25 * 16
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        plan = model.prepare(recent)
        for tq in range(t0 + 3, t0 + 40):
            for k in (1, 2, 5):
                predictions_equal(
                    model.predict_prepared(plan, tq, k),
                    model.predict(recent, tq, k),
                )

    def test_plan_validation_matches_predict(self, world):
        model, base = world
        t0 = 25 * 16
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        plan = model.prepare(recent)
        with pytest.raises(ValueError, match="after the current time"):
            plan.predict(t0 + 2)
        with pytest.raises(ValueError, match="k must be"):
            plan.predict(t0 + 5, k=0)
        with pytest.raises(ValueError, match="non-empty"):
            model.prepare([])

    def test_forward_backward_query_paths(self, world):
        model, base = world
        predictor = model.predictor_
        t0 = 25 * 16
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        plan = predictor.prepare(recent)
        predictions_equal(
            plan.forward(t0 + 4, 3), predictor.forward_query(recent, t0 + 4, 3)
        )
        predictions_equal(
            plan.backward(t0 + 12, 3), predictor.backward_query(recent, t0 + 12, 3)
        )


# ----------------------------------------------------------------------
# the legacy oracle: descent + uncached similarity + full sort
# ----------------------------------------------------------------------
def legacy_forward(predictor, recent, query_time, k):
    recent_regions = predictor.map_recent_to_regions(recent)
    query_key = predictor.codec.encode_query(
        recent_regions, query_time % predictor.config.period
    )
    candidates = predictor.tree.search_candidates_descent(query_key)
    if not candidates:
        return None
    scored = []
    for pattern, key in candidates:
        sr = premise_similarity(
            key.premise_key, query_key.premise_key, predictor.config.weight_function
        )
        scored.append((fqp_score(sr, pattern.confidence), pattern))
    scored.sort(key=lambda sp: (-sp[0], -sp[1].confidence, -sp[1].support))
    return [
        (score, pattern.consequence.center, pattern)
        for score, pattern in scored[:k]
    ]


def legacy_backward(predictor, recent, query_time, k):
    tc = recent[-1].t
    recent_regions = predictor.map_recent_to_regions(recent)
    query_key = predictor.codec.encode_query(
        recent_regions, query_time % predictor.config.period
    )
    t_eps = predictor.config.time_relaxation
    i = 1
    while True:
        relaxation = i * t_eps
        offsets = {
            t % predictor.config.period
            for t in range(query_time - relaxation, query_time + relaxation + 1)
        }
        mask = predictor.codec.consequence_mask(offsets)
        candidates = predictor.tree.search_by_consequence_descent(mask)
        if candidates:
            horizon = query_time - tc
            scored = []
            for pattern, key in candidates:
                sr = premise_similarity(
                    key.premise_key,
                    query_key.premise_key,
                    predictor.config.weight_function,
                )
                sc = consequence_similarity(
                    predictor._offset_distance(pattern.consequence_offset, query_time),
                    relaxation,
                )
                score = bqp_score(
                    sr,
                    sc,
                    pattern.confidence,
                    predictor.config.distant_threshold,
                    horizon,
                )
                scored.append((score, pattern))
            scored.sort(key=lambda sp: (-sp[0], -sp[1].confidence, -sp[1].support))
            return [
                (score, pattern.consequence.center, pattern)
                for score, pattern in scored[:k]
            ]
        i += 1
        if query_time - i * t_eps <= tc:
            return None


class TestLegacyOracle:
    def test_fqp_byte_identical(self, world):
        model, base = world
        predictor = model.predictor_
        t0 = 25 * 16
        for start in range(0, 12):
            recent = [TimedPoint(t0 + start + j, *base[(start + j) % 16]) for j in range(3)]
            for horizon in range(1, predictor.config.distant_threshold):
                tq = recent[-1].t + horizon
                expected = legacy_forward(predictor, recent, tq, 4)
                got = predictor.forward_query(recent, tq, 4)
                if expected is None:
                    assert got[0].method == "motion"
                    continue
                assert [(p.score, p.location, p.pattern) for p in got] == expected

    def test_bqp_byte_identical(self, world):
        model, base = world
        predictor = model.predictor_
        t0 = 25 * 16
        for start in range(0, 8):
            recent = [TimedPoint(t0 + start + j, *base[(start + j) % 16]) for j in range(3)]
            for horizon in (6, 7, 11, 19, 33):
                tq = recent[-1].t + horizon
                expected = legacy_backward(predictor, recent, tq, 4)
                got = predictor.backward_query(recent, tq, 4)
                if expected is None:
                    assert got[0].method == "motion"
                    continue
                assert [(p.score, p.location, p.pattern) for p in got] == expected


# ----------------------------------------------------------------------
# TPT consequence-offset index == descent
# ----------------------------------------------------------------------
class TestConsequenceIndex:
    def test_matches_descent_everywhere(self, world):
        model, _ = world
        tree = model.tree_
        codec = model.codec_
        full = (1 << codec.consequence_length) - 1
        for mask in list(1 << i for i in range(codec.consequence_length)) + [
            full,
            0b101 & full,
            full >> 1,
        ]:
            assert tree.search_by_consequence(mask) == (
                tree.search_by_consequence_descent(mask)
            )

    def test_fqp_search_matches_descent(self, world):
        model, base = world
        tree = model.tree_
        codec = model.codec_
        predictor = model.predictor_
        t0 = 25 * 16
        for start in range(0, 16):
            recent = [TimedPoint(t0 + start + j, *base[(start + j) % 16]) for j in range(3)]
            regions = predictor.map_recent_to_regions(recent)
            for offset in range(16):
                qk = codec.encode_query(regions, offset)
                assert tree.search_candidates(qk) == tree.search_candidates_descent(qk)

    def test_index_invalidated_by_mutation(
        self, jane_region_set, jane_patterns
    ):
        codec = KeyCodec.from_patterns(jane_region_set, jane_patterns)
        tree = TrajectoryPatternTree(codec, max_entries=4)
        tree.bulk_load_patterns(jane_patterns[:2])
        full = (1 << codec.consequence_length) - 1
        before = tree.search_by_consequence(full)
        assert before == tree.search_by_consequence_descent(full)
        tree.insert_pattern(jane_patterns[2])
        tree.insert_pattern(jane_patterns[3])
        after = tree.search_by_consequence(full)
        assert len(after) == 4
        assert after == tree.search_by_consequence_descent(full)
        tree.remove_pattern(jane_patterns[0])
        assert tree.search_by_consequence(full) == (
            tree.search_by_consequence_descent(full)
        )

    def test_mask_validation(self, world):
        model, _ = world
        with pytest.raises(ValueError):
            model.tree_.search_by_consequence(-1)
        assert model.tree_.search_by_consequence(0) == []


# ----------------------------------------------------------------------
# expire_patterns: rebuild path
# ----------------------------------------------------------------------
class TestExpireRebuild:
    def _tree(self, world):
        model, _ = world
        codec = model.codec_
        tree = TrajectoryPatternTree(codec, max_entries=8)
        tree.bulk_load_patterns(model.patterns_)
        return tree, model.patterns_

    def test_bulk_expiry_rebuilds(self, world):
        tree, patterns = self._tree(world)
        assert len(patterns) >= TrajectoryPatternTree._REBUILD_MIN_DOOMED * 2
        doomed = {
            (p.premise, p.consequence)
            for p in patterns[: len(patterns) // 2]
        }
        removed = tree.expire_patterns(
            lambda p: (p.premise, p.consequence) in doomed
        )
        assert removed == len(doomed)
        survivors = [
            p for p in patterns if (p.premise, p.consequence) not in doomed
        ]
        assert sorted(map(str, tree.all_patterns())) == sorted(map(str, survivors))
        assert len(tree) == len(survivors)
        tree.validate()
        # The rebuilt tree still answers searches identically to descent.
        full = (1 << tree.codec.consequence_length) - 1
        assert tree.search_by_consequence(full) == (
            tree.search_by_consequence_descent(full)
        )

    def test_expire_everything(self, world):
        tree, patterns = self._tree(world)
        assert tree.expire_patterns(lambda p: True) == len(patterns)
        assert len(tree) == 0
        assert tree.all_patterns() == []
        tree.validate()

    def test_small_expiry_uses_deletion(self, world):
        tree, patterns = self._tree(world)
        target = patterns[0]
        removed = tree.expire_patterns(
            lambda p: p.premise == target.premise
            and p.consequence == target.consequence
        )
        assert removed == 1
        assert len(tree) == len(patterns) - 1
        tree.validate()

    def test_no_matches(self, world):
        tree, patterns = self._tree(world)
        assert tree.expire_patterns(lambda p: False) == 0
        assert len(tree) == len(patterns)


# ----------------------------------------------------------------------
# similarity scorer and weight caches
# ----------------------------------------------------------------------
class TestPremiseScorer:
    @pytest.mark.parametrize(
        "kind", ["linear", "quadratic", "exponential", "factorial"]
    )
    def test_matches_premise_similarity_exactly(self, kind):
        rng = np.random.default_rng(42)
        scorer = PremiseScorer(kind)
        for _ in range(300):
            rk = int(rng.integers(0, 1 << 20))
            rkq = int(rng.integers(0, 1 << 20))
            assert scorer.score(rk, rkq) == premise_similarity(rk, rkq, kind)

    def test_tables_are_cached(self):
        scorer = PremiseScorer()
        assert scorer.table(0b1011) is scorer.table(0b1011)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown weight function"):
            PremiseScorer("cubic")

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            PremiseScorer().score(-1, 3)

    def test_scorer_survives_pickle(self):
        scorer = PremiseScorer("quadratic")
        scorer.score(0b111, 0b101)
        clone = pickle.loads(pickle.dumps(scorer))
        assert clone.score(0b111, 0b101) == scorer.score(0b111, 0b101)


# ----------------------------------------------------------------------
# RegionSet.locate memo
# ----------------------------------------------------------------------
class TestLocateMemo:
    def test_cached_equals_uncached(self, world):
        model, base = world
        regions = model.regions_
        rng = np.random.default_rng(5)
        for _ in range(200):
            offset = int(rng.integers(0, regions.period))
            xy = (float(rng.uniform(-50, 1200)), float(rng.uniform(-50, 700)))
            assert regions.locate(xy, offset) == regions.locate_uncached(xy, offset)
            # Second call is the cache hit; must agree too.
            assert regions.locate(xy, offset) == regions.locate_uncached(xy, offset)

    def test_point_and_tuple_share_cache_key(self, world):
        model, base = world
        regions = model.regions_
        p = Point(float(base[3][0]), float(base[3][1]))
        assert regions.locate(p, 3) == regions.locate((p.x, p.y), 3)

    def test_invalid_offset_still_raises(self, world):
        model, _ = world
        with pytest.raises(ValueError):
            model.regions_.locate((0.0, 0.0), model.regions_.period)

    def test_cache_dropped_on_pickle(self, world):
        model, base = world
        regions = model.regions_
        regions.locate((float(base[0][0]), float(base[0][1])), 0)
        clone = pickle.loads(pickle.dumps(regions))
        assert len(clone._locate_cache) == 0
        assert clone.locate((float(base[0][0]), float(base[0][1])), 0) == (
            regions.locate((float(base[0][0]), float(base[0][1])), 0)
        )

    def test_cache_is_bounded(self, world):
        model, _ = world
        regions = model.regions_
        limit = regions._LOCATE_CACHE_SIZE
        for i in range(limit + 50):
            regions.locate((float(i), 0.0), 0)
        assert len(regions._locate_cache) <= limit


# ----------------------------------------------------------------------
# RMF frontier resume
# ----------------------------------------------------------------------
class TestRmfFrontier:
    def _window(self):
        rng = np.random.default_rng(11)
        return [
            TimedPoint(100 + i, float(10 * i + rng.normal(0, 0.1)), float(5 * i))
            for i in range(9)
        ]

    def test_resumed_walk_identical_to_fresh(self):
        window = self._window()
        resumed = RecursiveMotionFunction().fit(window)
        for t in [108 + h for h in (1, 2, 30, 7, 120, 121, 300)]:
            fresh = RecursiveMotionFunction().fit(window)
            assert resumed.predict(t) == fresh.predict(t)

    def test_refit_resets_frontier(self):
        window = self._window()
        func = RecursiveMotionFunction().fit(window)
        func.predict(140)
        func.fit(window[:-1])
        assert func._frontier is None
        fresh = RecursiveMotionFunction().fit(window[:-1])
        assert func.predict(120) == fresh.predict(120)


# ----------------------------------------------------------------------
# satellite 3: FQP->BQP transition and motion edge cases
# ----------------------------------------------------------------------
class TestTrajectorySweepIdentity:
    def test_sweep_crosses_distant_threshold(self, world):
        model, base = world
        t0 = 25 * 16
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        tc = recent[-1].t
        d = model.config.distant_threshold
        # Sweep from well inside FQP range to well past the threshold.
        sweep = model.predict_trajectory(recent, tc + 1, tc + 2 * d + 5)
        methods = [p.method for _, p in sweep]
        assert "fqp" in methods and "bqp" in methods
        for t, prediction in sweep:
            independent = model.predict_one(recent, t)
            assert prediction.location == independent.location
            assert prediction.method == independent.method
            assert prediction.score == independent.score
            assert prediction.pattern == independent.pattern
            # Definition 2 dispatch holds at every step.
            expected_method = prediction.method
            if expected_method != "motion":
                assert (expected_method == "bqp") == (t - tc >= d)

    def test_empty_corpus_sweep(self, pattern_free_model):
        model = pattern_free_model
        t0 = model.history_.start_time + len(model.history_)
        recent = [
            TimedPoint(t0 + i, float(100 * i), float(50 * i)) for i in range(10)
        ]
        sweep = model.predict_trajectory(recent, t0 + 10, t0 + 30)
        assert all(p.method == "motion" for _, p in sweep)
        for t, prediction in sweep:
            independent = model.predict_one(recent, t)
            assert prediction.location == independent.location

    def test_window_shorter_than_rmf_retrospect(self, pattern_free_model):
        model = pattern_free_model
        # Two samples: RMF (retrospect 5) cannot fit, linear can.
        recent = [TimedPoint(500, 0.0, 0.0), TimedPoint(501, 10.0, 0.0)]
        sweep = model.predict_trajectory(recent, 502, 506)
        for t, prediction in sweep:
            assert prediction.method == "motion"
            assert prediction.location == Point(10.0 * (t - 500), 0.0)
            independent = model.predict_one(recent, t)
            assert prediction.location == independent.location

    def test_single_sample_stationary(self, pattern_free_model):
        model = pattern_free_model
        recent = [TimedPoint(500, 7.0, -3.0)]
        sweep = model.predict_trajectory(recent, 501, 505)
        for _t, prediction in sweep:
            assert prediction.method == "motion"
            assert prediction.location == Point(7.0, -3.0)

    def test_fitted_model_motion_edge_cases_match_pointwise(self, world):
        model, _ = world
        # A window far from every frequent region: FQP/BQP may fall back.
        recent = [
            TimedPoint(9000 + i, 1e5 + 3.0 * i, -1e5) for i in range(2)
        ]
        sweep = model.predict_trajectory(recent, 9002, 9030)
        for t, prediction in sweep:
            independent = model.predict_one(recent, t)
            assert prediction.location == independent.location
            assert prediction.method == independent.method


# ----------------------------------------------------------------------
# satellite 6: precomputed region masks
# ----------------------------------------------------------------------
class TestRegionMaskPlumbing:
    def test_mining_stats_carry_masks(self, world):
        model, _ = world
        stats = model.mining_stats_
        assert stats.region_masks == region_visit_masks(
            model.regions_, stats.num_transactions
        )

    def test_count_rules_unpruned_accepts_masks(self, world):
        model, _ = world
        stats = model.mining_stats_
        without = count_rules_unpruned(
            model.patterns_,
            model.regions_,
            stats.num_transactions,
            model.config.min_confidence,
        )
        with_masks = count_rules_unpruned(
            model.patterns_,
            model.regions_,
            stats.num_transactions,
            model.config.min_confidence,
            masks=stats.region_masks,
        )
        assert with_masks == without

    def test_mine_accepts_precomputed_masks(self, world):
        model, _ = world
        stats = model.mining_stats_
        cfg = model.config
        masks = region_visit_masks(model.regions_, stats.num_transactions)
        a = mine_trajectory_patterns(
            model.regions_,
            num_subtrajectories=stats.num_transactions,
            min_support=cfg.effective_min_support,
            min_confidence=cfg.min_confidence,
            max_premise_length=cfg.max_premise_length,
            max_premise_span=cfg.max_premise_span,
            max_consequence_gap=cfg.effective_max_consequence_gap,
            far_premise_stride=cfg.far_premise_stride,
        )
        b = mine_trajectory_patterns(
            model.regions_,
            num_subtrajectories=stats.num_transactions,
            min_support=cfg.effective_min_support,
            min_confidence=cfg.min_confidence,
            max_premise_length=cfg.max_premise_length,
            max_premise_span=cfg.max_premise_span,
            max_consequence_gap=cfg.effective_max_consequence_gap,
            far_premise_stride=cfg.far_premise_stride,
            region_masks=masks,
        )
        assert a == b


# ----------------------------------------------------------------------
# satellite 2: predictor path counters in metrics
# ----------------------------------------------------------------------
class TestPathCounters:
    def test_predict_paths_counted(self, world):
        from repro.serve.metrics import MetricsRegistry

        model, base = world
        registry = MetricsRegistry()
        model.bind_metrics(registry)
        try:
            t0 = 25 * 16
            recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
            tc = recent[-1].t
            model.predict(recent, tc + 1)  # fqp
            model.predict(recent, tc + 20)  # bqp
            lost = [TimedPoint(9000, 1e6, 1e6)]
            model.predict(lost, 9001)  # motion
            snapshot = registry.snapshot()
            assert snapshot["predict_path_total_fqp"]["value"] == 1
            assert snapshot["predict_path_total_bqp"]["value"] == 1
            assert snapshot["predict_path_total_motion"]["value"] == 1
            assert snapshot["model_predict_total"]["value"] == 3
        finally:
            model.bind_metrics(None)

    def test_trajectory_sweep_counts_each_step(self, world):
        from repro.serve.metrics import MetricsRegistry

        model, base = world
        registry = MetricsRegistry()
        model.bind_metrics(registry)
        try:
            t0 = 25 * 16
            recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
            tc = recent[-1].t
            results = model.predict_trajectory(recent, tc + 1, tc + 10)
            snapshot = registry.snapshot()
            assert snapshot["model_predict_total"]["value"] == len(results)
            per_path = sum(
                snapshot[f"predict_path_total_{m}"]["value"]
                for m in ("fqp", "bqp", "motion")
                if f"predict_path_total_{m}" in snapshot
            )
            assert per_path == len(results)
        finally:
            model.bind_metrics(None)


# ----------------------------------------------------------------------
# heap ranking ties
# ----------------------------------------------------------------------
class TestRankingTies:
    def test_tied_candidates_keep_tree_order(self, jane_region_set, jane_patterns):
        from repro.core.patterns import TrajectoryPattern

        # Two patterns with identical premise, confidence and support —
        # every rank key ties; the stable top-k must keep candidate order.
        home = jane_patterns[0].premise[0]
        city = jane_patterns[0].consequence
        shopping = jane_patterns[1].consequence
        twins = [
            TrajectoryPattern((home,), city, support=5, confidence=0.7),
            TrajectoryPattern((home,), shopping, support=5, confidence=0.7),
        ]
        codec = KeyCodec.from_patterns(jane_region_set, twins)
        tree = TrajectoryPatternTree(codec, max_entries=4)
        tree.bulk_load_patterns(twins)
        config = HPMConfig(
            period=3, eps=5.0, min_pts=2, distant_threshold=2, recent_window=3
        )
        predictor = HybridPredictor(
            regions=jane_region_set, codec=codec, tree=tree, config=config
        )
        recent = [TimedPoint(30, 0.0, 0.0)]
        results = predictor.forward_query(recent, 31, 2)
        assert [p.score for p in results] == [0.7, 0.7]
        # Order equals the candidate (tree traversal) order.
        expected_order = [
            pattern for pattern, _ in tree.search_candidates_descent(
                codec.encode_query([home], 1)
            )
        ]
        assert [p.pattern for p in results] == expected_order
