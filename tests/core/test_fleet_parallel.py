"""Tests for the parallel fleet training pipeline.

The contract under test: ``fit(histories, max_workers=N)`` and
``predict_all(..., max_workers=N)`` produce results byte-identical to
the serial paths in every executor mode, isolate per-object failures
into a :class:`FleetFitError`, report progress, feed the fleet metrics,
and ship models across the pickle boundary with metrics handles
dropped.
"""

import pickle

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.fleet import FleetFitError, FleetPredictionModel
from repro.serve.metrics import MetricsRegistry
from repro.trajectory import TimedPoint, Trajectory

PERIOD = 10


def make_history(route_y: float, num_subs=15, period=PERIOD, seed=0):
    """An object moving east along y = route_y each period."""
    rng = np.random.default_rng(seed)
    base = np.column_stack(
        [80.0 * np.arange(period), np.full(period, route_y)]
    )
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(num_subs)]
    return Trajectory(np.vstack(blocks))


@pytest.fixture(scope="module")
def histories():
    return {f"obj{i}": make_history(400.0 * i, seed=i) for i in range(4)}


@pytest.fixture(scope="module")
def recents(histories):
    return {
        f"obj{i}": [TimedPoint(200 + t, 80.0 * t, 400.0 * i) for t in range(3)]
        for i in range(len(histories))
    }


def fresh_fleet() -> FleetPredictionModel:
    return FleetPredictionModel(
        HPMConfig(
            period=PERIOD, eps=5.0, min_pts=4, distant_threshold=4, recent_window=3
        )
    )


def fingerprint(fleet, recents, query_time=205, k=3) -> bytes:
    """Byte-exact rendering of every object's predictions."""
    chunks = []
    for object_id in fleet.object_ids():
        predictions = fleet.predict(object_id, recents[object_id], query_time, k)
        chunks.append(f"{object_id}:{predictions!r}")
    return "\n".join(chunks).encode()


@pytest.fixture(scope="module")
def serial_fleet(histories):
    return fresh_fleet().fit(histories)


class TestParallelFitDeterminism:
    def test_thread_matches_serial(self, histories, recents, serial_fleet):
        fleet = fresh_fleet().fit(histories, max_workers=4, executor="thread")
        assert fingerprint(fleet, recents) == fingerprint(serial_fleet, recents)

    def test_process_matches_serial(self, histories, recents, serial_fleet):
        fleet = fresh_fleet().fit(histories, max_workers=2, executor="process")
        assert fingerprint(fleet, recents) == fingerprint(serial_fleet, recents)

    def test_max_workers_one_is_serial(self, histories, recents, serial_fleet):
        fleet = fresh_fleet().fit(histories, max_workers=1)
        assert fingerprint(fleet, recents) == fingerprint(serial_fleet, recents)

    def test_bad_executor_rejected(self, histories):
        with pytest.raises(ValueError, match="executor"):
            fresh_fleet().fit(histories, max_workers=2, executor="rayon")

    def test_bad_worker_count_rejected(self, histories):
        with pytest.raises(ValueError, match="max_workers"):
            fresh_fleet().fit(histories, max_workers=0)


class TestFailureIsolation:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_one_bad_trajectory_names_itself(self, histories, executor):
        bad = dict(histories)
        bad["broken"] = Trajectory(np.zeros((3, 2)))  # shorter than one period
        fleet = fresh_fleet()
        with pytest.raises(FleetFitError, match="broken") as excinfo:
            fleet.fit(bad, max_workers=2, executor=executor)
        assert set(excinfo.value.failures) == {"broken"}
        assert isinstance(excinfo.value.failures["broken"], ValueError)
        # Every healthy object was still installed and answers queries.
        assert fleet.object_ids() == sorted(histories)
        assert "broken" not in fleet
        # The failed object leaves no lock-table residue either.
        with pytest.raises(KeyError):
            fleet.object_lock("broken")

    def test_fit_object_failure_leaves_no_lock(self):
        fleet = fresh_fleet()
        with pytest.raises(ValueError):
            fleet.fit_object("stub", Trajectory(np.zeros((2, 2))))
        assert "stub" not in fleet
        with pytest.raises(KeyError):
            fleet.object_lock("stub")


class TestHooks:
    def test_progress_reports_every_object(self, histories):
        seen = []
        fresh_fleet().fit(
            histories,
            max_workers=2,
            executor="thread",
            progress=lambda oid, done, total: seen.append((oid, done, total)),
        )
        assert sorted(oid for oid, _, _ in seen) == sorted(histories)
        assert [done for _, done, _ in seen] == list(range(1, len(histories) + 1))
        assert all(total == len(histories) for _, _, total in seen)

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_fit_metrics(self, histories, executor):
        fleet = fresh_fleet()
        registry = MetricsRegistry()
        fleet.bind_metrics(registry)
        fleet.fit(histories, max_workers=2, executor=executor)
        assert registry.counter("fleet_fit_objects_total").value == len(histories)
        histogram = registry.histogram("fleet_fit_seconds")
        assert histogram.count == len(histories)
        assert histogram.total > 0.0


class TestParallelPredictAll:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_matches_serial(self, serial_fleet, recents, executor):
        serial = serial_fleet.predict_all(recents, 205)
        parallel = serial_fleet.predict_all(
            recents, 205, max_workers=3, executor=executor
        )
        assert list(parallel) == list(serial)
        assert repr(parallel) == repr(serial)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_unknown_object_raises(self, serial_fleet, recents, executor):
        augmented = dict(recents)
        augmented["ghost"] = recents["obj0"]
        with pytest.raises(KeyError, match="ghost"):
            serial_fleet.predict_all(
                augmented, 205, max_workers=2, executor=executor
            )


class TestPickleSafety:
    def test_fitted_model_roundtrip_drops_metrics(self, serial_fleet, recents):
        registry = MetricsRegistry()
        serial_fleet.bind_metrics(registry)
        model = serial_fleet["obj0"]
        clone = pickle.loads(pickle.dumps(model))
        assert clone._metrics is None
        assert repr(clone.predict(recents["obj0"], 205, k=3)) == repr(
            model._predict(recents["obj0"], 205, k=3)
        )
        serial_fleet.bind_metrics(None)

    def test_adoption_rebinds_metrics(self, serial_fleet):
        registry = MetricsRegistry()
        fleet = fresh_fleet()
        fleet.bind_metrics(registry)
        clone = pickle.loads(pickle.dumps(serial_fleet["obj1"]))
        fleet.adopt_object("adopted", clone)
        assert clone._metrics is registry
