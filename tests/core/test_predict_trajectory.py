"""Tests for the trajectory-range prediction extension."""

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.model import HybridPredictionModel
from repro.trajectory import Point, TimedPoint, Trajectory


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(0)
    period = 16
    base = np.column_stack(
        [70.0 * np.arange(period), 35.0 * np.arange(period)]
    )
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(25)]
    cfg = HPMConfig(
        period=period, eps=5.0, min_pts=4, distant_threshold=6, recent_window=3
    )
    model = HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks)))
    return model, base


class TestPredictTrajectory:
    def test_range_and_stride(self, world):
        model, base = world
        t0 = 25 * 16
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        results = model.predict_trajectory(recent, t0 + 4, t0 + 12, step=2)
        assert [t for t, _ in results] == [t0 + 4, t0 + 6, t0 + 8, t0 + 10, t0 + 12]

    def test_transitions_fqp_to_bqp(self, world):
        model, base = world
        t0 = 25 * 16
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        results = model.predict_trajectory(recent, t0 + 3, t0 + 12)
        methods = [p.method for _, p in results]
        # Horizon crosses d=6 relative to tc=t0+2: first few FQP, rest BQP.
        assert "fqp" in methods and "bqp" in methods
        assert methods.index("bqp") > 0
        # Methods are monotone: once distant, stays distant.
        first_bqp = methods.index("bqp")
        assert all(m == "bqp" for m in methods[first_bqp:])

    def test_predictions_track_route(self, world):
        model, base = world
        t0 = 25 * 16
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        results = model.predict_trajectory(recent, t0 + 3, t0 + 12)
        for t, prediction in results:
            truth = Point(*base[t % 16])
            assert prediction.location.distance_to(truth) < 10.0

    def test_validation(self, world):
        model, base = world
        t0 = 25 * 16
        recent = [TimedPoint(t0, *base[0])]
        with pytest.raises(ValueError):
            model.predict_trajectory(recent, t0 + 5, t0 + 3)
        with pytest.raises(ValueError):
            model.predict_trajectory(recent, t0 + 1, t0 + 3, step=0)

    def test_pattern_free_mode_uses_motion(self):
        rng = np.random.default_rng(1)
        traj = Trajectory(rng.uniform(0, 10000, (160, 2)))
        model = HybridPredictionModel(
            HPMConfig(period=16, eps=5.0, min_pts=9, distant_threshold=6)
        ).fit(traj)
        assert model.pattern_count == 0
        recent = [TimedPoint(200 + i, 10.0 * i, 0.0) for i in range(8)]
        results = model.predict_trajectory(recent, 210, 214)
        assert all(p.method == "motion" for _, p in results)
