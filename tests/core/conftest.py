"""Shared fixtures: the paper's Fig. 3 scenario (Jane's movements).

Frequent regions: Home R_0^0, City R_1^0, Shopping center R_1^1,
Work place R_2^0, Beach R_2^1.  Trajectory patterns (Fig. 3 right):

    P0: R_0^0 --0.9--> R_1^0
    P1: R_0^0 --0.8--> R_1^1
    P2: R_0^0 ∧ R_1^0 --0.5--> R_2^0
    P3: R_0^0 ∧ R_1^1 --0.4--> R_2^1
"""

import numpy as np
import pytest

from repro.core.keys import KeyCodec
from repro.core.patterns import TrajectoryPattern
from repro.core.regions import FrequentRegion, RegionSet
from repro.trajectory.point import BoundingBox, Point


def make_region(offset: int, index: int, cx: float, cy: float, n: int = 4) -> FrequentRegion:
    """A small synthetic frequent region centred at (cx, cy)."""
    offsets = np.linspace(-1.0, 1.0, n)
    points = np.column_stack([cx + offsets, cy + offsets])
    return FrequentRegion(
        offset=offset,
        index=index,
        center=Point(cx, cy),
        points=points,
        bbox=BoundingBox(cx - 1.0, cy - 1.0, cx + 1.0, cy + 1.0),
        subtrajectory_ids=tuple(range(n)),
    )


@pytest.fixture
def jane_regions() -> dict[str, FrequentRegion]:
    return {
        "home": make_region(0, 0, 0.0, 0.0),
        "city": make_region(1, 0, 100.0, 0.0),
        "shopping": make_region(1, 1, 0.0, 100.0),
        "work": make_region(2, 0, 200.0, 0.0),
        "beach": make_region(2, 1, 0.0, 200.0),
    }


@pytest.fixture
def jane_region_set(jane_regions) -> RegionSet:
    return RegionSet(list(jane_regions.values()), period=3, eps=5.0)


@pytest.fixture
def jane_patterns(jane_regions) -> list[TrajectoryPattern]:
    home = jane_regions["home"]
    city = jane_regions["city"]
    shopping = jane_regions["shopping"]
    work = jane_regions["work"]
    beach = jane_regions["beach"]
    return [
        TrajectoryPattern((home,), city, support=9, confidence=0.9),
        TrajectoryPattern((home,), shopping, support=8, confidence=0.8),
        TrajectoryPattern((home, city), work, support=5, confidence=0.5),
        TrajectoryPattern((home, shopping), beach, support=4, confidence=0.4),
    ]


@pytest.fixture
def jane_codec(jane_region_set, jane_patterns) -> KeyCodec:
    return KeyCodec.from_patterns(jane_region_set, jane_patterns)
