"""Tests for similarity measures — including the paper's worked examples."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import (
    WEIGHT_FUNCTIONS,
    bqp_score,
    consequence_similarity,
    fqp_score,
    premise_similarity,
    premise_weights,
)

keys = st.integers(min_value=0, max_value=2**32 - 1)
kinds = st.sampled_from(sorted(WEIGHT_FUNCTIONS))


class TestPaperExamples:
    """Worked numbers from Section VI-A/VI-B."""

    def test_identical_premise_keys_similarity_one(self):
        # "the premise similarity between rk = 00011 and rkq = 00011 is 1"
        assert premise_similarity(0b00011, 0b00011, "linear") == pytest.approx(1.0)

    def test_partial_match_two_thirds(self):
        # "the similarity between rk = 00011 and rkq = 00010 is 2/3"
        assert premise_similarity(0b00011, 0b00010, "linear") == pytest.approx(2 / 3)

    def test_linear_weights_example(self):
        # "for premise key 00011, the '1' at position 2 has a larger weight
        # (2/3) than that of the '1' at position 1 (1/3)"
        assert premise_weights(2, "linear") == pytest.approx([1 / 3, 2 / 3])

    def test_fqp_example_winning_pattern(self):
        # Sp(1000011, 1000011) = 1 x 0.5 = 0.5
        sr = premise_similarity(0b00011, 0b00011, "linear")
        assert fqp_score(sr, 0.5) == pytest.approx(0.5)

    def test_fqp_example_losing_pattern(self):
        # Sp(1000101, 1000011) = 0.33 x 0.4 = 0.132
        sr = premise_similarity(0b00101, 0b00011, "linear")
        assert sr == pytest.approx(1 / 3)
        assert fqp_score(sr, 0.4) == pytest.approx(0.4 / 3)


class TestWeightFunctions:
    def test_families_exist(self):
        assert set(WEIGHT_FUNCTIONS) == {
            "linear",
            "quadratic",
            "exponential",
            "factorial",
        }

    def test_quadratic(self):
        assert premise_weights(2, "quadratic") == pytest.approx([1 / 5, 4 / 5])

    def test_exponential(self):
        assert premise_weights(3, "exponential") == pytest.approx(
            [2 / 14, 4 / 14, 8 / 14]
        )

    def test_factorial(self):
        total = 1 + 2 + 6
        assert premise_weights(3, "factorial") == pytest.approx(
            [1 / total, 2 / total, 6 / total]
        )

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown weight function"):
            premise_weights(2, "cubic")

    def test_zero_ones(self):
        assert premise_weights(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            premise_weights(-1)

    @given(st.integers(1, 20), kinds)
    def test_weights_sum_to_one(self, n, kind):
        assert sum(premise_weights(n, kind)) == pytest.approx(1.0)

    @given(st.integers(2, 20), kinds)
    def test_weights_increase_with_position(self, n, kind):
        w = premise_weights(n, kind)
        assert all(b > a for a, b in zip(w, w[1:]))


class TestPremiseSimilarity:
    def test_empty_pattern_premise(self):
        assert premise_similarity(0, 0b111) == 0.0

    def test_no_overlap(self):
        assert premise_similarity(0b110, 0b001) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            premise_similarity(-1, 0)

    def test_recent_bit_weighs_more(self):
        """Property 1: the higher '1' is closer to the consequence."""
        rk = 0b101
        low_match = premise_similarity(rk, 0b001)
        high_match = premise_similarity(rk, 0b100)
        assert high_match > low_match

    @given(keys, keys, kinds)
    def test_bounds(self, rk, rkq, kind):
        s = premise_similarity(rk, rkq, kind)
        assert 0.0 <= s <= 1.0 + 1e-12

    @given(keys, kinds)
    def test_self_similarity_is_one(self, rk, kind):
        if rk:
            assert premise_similarity(rk, rk, kind) == pytest.approx(1.0)

    @given(keys, keys, keys, kinds)
    def test_monotone_in_query_bits(self, rk, rkq, extra, kind):
        """Adding bits to the query never lowers similarity."""
        assert premise_similarity(rk, rkq | extra, kind) >= premise_similarity(
            rk, rkq, kind
        ) - 1e-12


class TestQuerySimilarity:
    def test_full_key_convenience_matches_premise_parts(self):
        from repro.core.keys import PatternKey
        from repro.core.similarity import query_similarity

        pk = PatternKey(0b10_00011, 5, 2)
        qk = PatternKey(0b10_00010, 5, 2)
        assert query_similarity(pk, qk, "linear") == pytest.approx(
            premise_similarity(0b00011, 0b00010, "linear")
        )


class TestConsequenceSimilarity:
    def test_exact_offset(self):
        assert consequence_similarity(0, 2) == pytest.approx(1.0)

    def test_paper_formula(self):
        # Sc = 1 - |tq - t| / (t_eps + 1)
        assert consequence_similarity(1, 2) == pytest.approx(1 - 1 / 3)
        assert consequence_similarity(2, 2) == pytest.approx(1 - 2 / 3)

    def test_clamped_at_zero(self):
        assert consequence_similarity(10, 2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            consequence_similarity(-1, 2)
        with pytest.raises(ValueError):
            consequence_similarity(1, -1)

    @given(st.integers(0, 50), st.integers(0, 50))
    def test_bounds(self, dist, relax):
        assert 0.0 <= consequence_similarity(dist, relax) <= 1.0

    @given(st.integers(0, 20), st.integers(0, 20), st.integers(1, 10))
    def test_monotone_decreasing_in_distance(self, d1, d2, relax):
        lo, hi = sorted((d1, d2))
        assert consequence_similarity(lo, relax) >= consequence_similarity(hi, relax)


class TestScores:
    def test_fqp_score_is_product(self):
        assert fqp_score(0.5, 0.8) == pytest.approx(0.4)

    def test_fqp_validation(self):
        with pytest.raises(ValueError):
            fqp_score(1.5, 0.5)
        with pytest.raises(ValueError):
            fqp_score(0.5, -0.1)

    def test_bqp_equation_5(self):
        # Sp = (Sr * d/(tq - tc) + Sc) * c
        score = bqp_score(
            premise_sim=0.5,
            consequence_sim=0.8,
            confidence=0.6,
            distant_threshold=60,
            horizon=120,
        )
        assert score == pytest.approx((0.5 * 0.5 + 0.8) * 0.6)

    def test_bqp_penalty_capped_at_one(self):
        """d/(tq-tc) <= 1 per the paper's constraint on Eq. 5."""
        near = bqp_score(1.0, 0.0, 1.0, distant_threshold=60, horizon=30)
        assert near == pytest.approx(1.0)

    def test_bqp_validation(self):
        with pytest.raises(ValueError):
            bqp_score(0.5, 0.5, 0.5, 60, 0)
        with pytest.raises(ValueError):
            bqp_score(0.5, 0.5, 0.5, 0, 10)

    @given(
        st.floats(0, 1),
        st.floats(0, 1),
        st.floats(0, 1),
        st.integers(1, 100),
        st.integers(1, 300),
    )
    def test_bqp_bounds(self, sr, sc, c, d, horizon):
        score = bqp_score(sr, sc, c, d, horizon)
        assert 0.0 <= score <= 2.0

    @given(st.floats(0, 1), st.floats(0, 1), st.integers(1, 50))
    def test_bqp_premise_penalised_with_horizon(self, sr, c, d):
        """Longer horizons weigh the premise less (Section VI-C)."""
        near = bqp_score(sr, 0.5, c, d, horizon=d + 1)
        far = bqp_score(sr, 0.5, c, d, horizon=10 * d)
        assert near >= far - 1e-12
