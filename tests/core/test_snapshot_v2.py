"""Fleet snapshot format v2: packed columnar blocks, mmap loads.

The contract: a v2 load — mmap or materialised, whole fleet or ring
slice, direct or converted from v1 — yields models whose state AND
prediction fingerprints are byte-identical to the v1 reload of the same
fleet, with the score-kernel cache already primed; and a delta refit on
a v2-loaded model stays byte-identical to a fit from scratch.
"""

import json
import shutil

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import HPMConfig
from repro.core.fingerprint import model_fingerprint, prediction_fingerprint
from repro.core.fleet import FleetPredictionModel
from repro.core.model import HybridPredictionModel
from repro.core.persistence import convert_snapshot, load_fleet, save_fleet
from repro.core.snapshot2 import snapshot_stat
from repro.trajectory import TimedPoint, Trajectory

PERIOD = 12


def make_config(**overrides) -> HPMConfig:
    params = dict(
        period=PERIOD, eps=5.0, min_pts=4, distant_threshold=5, recent_window=4
    )
    params.update(overrides)
    return HPMConfig(**params)


def make_route(num_blocks: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = np.column_stack(
        [70.0 * np.arange(PERIOD), 20.0 * np.arange(PERIOD)]
    )
    return np.vstack(
        [base + rng.normal(0, 0.6, base.shape) for _ in range(num_blocks)]
    )


def queries(model):
    positions = np.asarray(model.history_.positions)
    window = model.config.recent_window
    n = positions.shape[0]
    out = []
    for start in (0, n // 3):
        recent = [
            TimedPoint(
                n + t,
                float(positions[start + t, 0]),
                float(positions[start + t, 1]),
            )
            for t in range(window)
        ]
        t_now = recent[-1].t
        out.append((recent, t_now + 2))
        out.append((recent, t_now + model.config.distant_threshold + 3))
    return out


def fleet_fingerprints(fleet) -> list[tuple[str, str, str]]:
    return [
        (
            oid,
            model_fingerprint(fleet[oid]),
            prediction_fingerprint(fleet[oid], queries(fleet[oid])),
        )
        for oid in fleet.object_ids()
    ]


@pytest.fixture(scope="module")
def fitted_fleet():
    fleet = FleetPredictionModel(make_config())
    fleet.fit(
        {
            f"obj{i}": Trajectory(make_route(12, seed=i), 0)
            for i in range(3)
        }
    )
    return fleet


@pytest.fixture(scope="module")
def snapshots(fitted_fleet, tmp_path_factory):
    root = tmp_path_factory.mktemp("snapshots")
    save_fleet(fitted_fleet, root / "v1", format=1)
    save_fleet(fitted_fleet, root / "v2", format=2)
    return root


class TestRoundTripIdentity:
    def test_v2_matches_v1_and_original(self, fitted_fleet, snapshots):
        reference = fleet_fingerprints(fitted_fleet)
        assert fleet_fingerprints(load_fleet(snapshots / "v1")) == reference
        assert fleet_fingerprints(load_fleet(snapshots / "v2")) == reference

    def test_mmap_matches_materialized(self, fitted_fleet, snapshots):
        mmapped = load_fleet(snapshots / "v2", mmap=True)
        materialized = load_fleet(snapshots / "v2", mmap=False)
        assert fleet_fingerprints(mmapped) == fleet_fingerprints(materialized)

    def test_kernel_primed_on_load(self, fitted_fleet, snapshots):
        kind = fitted_fleet.config.weight_function
        fleet = load_fleet(snapshots / "v2")
        for oid in fleet.object_ids():
            tree = fleet[oid].tree_
            assert tree is not None
            assert tree._score_kernels.get(kind) is not None

    def test_region_points_are_mmap_views(self, snapshots):
        fleet = load_fleet(snapshots / "v2", mmap=True)
        model = fleet[fleet.object_ids()[0]]
        points = np.asarray(model.regions_[0].points)
        base = points
        while isinstance(getattr(base, "base", None), np.ndarray):
            base = base.base
        assert isinstance(base, np.memmap)

    def test_subset_load(self, fitted_fleet, snapshots):
        wanted = fitted_fleet.object_ids()[:2]
        fleet = load_fleet(snapshots / "v2", object_ids=wanted)
        assert fleet.object_ids() == wanted
        with pytest.raises(ValueError, match="not in the snapshot manifest"):
            load_fleet(snapshots / "v2", object_ids=["nope"])

    def test_parallel_save_identical_to_serial(
        self, fitted_fleet, snapshots, tmp_path
    ):
        save_fleet(fitted_fleet, tmp_path / "par", format=2, max_workers=3)
        serial = sorted((snapshots / "v2").iterdir())
        parallel = sorted((tmp_path / "par").iterdir())
        assert [p.name for p in serial] == [p.name for p in parallel]
        for a, b in zip(serial, parallel):
            assert a.read_bytes() == b.read_bytes(), a.name

    def test_snapshot_stat(self, snapshots):
        stat = snapshot_stat(snapshots / "v2")
        assert stat["format_version"] == 2
        assert stat["objects"] == 3
        assert stat["kernel_objects"] == 3
        assert stat["total_block_bytes"] > 0
        assert snapshot_stat(snapshots / "v1")["format_version"] == 1


class TestConvert:
    def test_v1_to_v2_identity(self, fitted_fleet, snapshots, tmp_path):
        count = convert_snapshot(snapshots / "v1", tmp_path / "conv", format=2)
        assert count == 3
        assert fleet_fingerprints(
            load_fleet(tmp_path / "conv")
        ) == fleet_fingerprints(fitted_fleet)

    def test_v2_to_v1_identity(self, fitted_fleet, snapshots, tmp_path):
        convert_snapshot(snapshots / "v2", tmp_path / "back", format=1)
        manifest = json.loads((tmp_path / "back" / "manifest.json").read_text())
        assert manifest["format_version"] == 1
        assert fleet_fingerprints(
            load_fleet(tmp_path / "back")
        ) == fleet_fingerprints(fitted_fleet)


class TestCorruptionPaths:
    def _copy(self, snapshots, tmp_path):
        dest = tmp_path / "snap"
        shutil.copytree(snapshots / "v2", dest)
        return dest

    def test_unknown_format_version_rejected(self, snapshots, tmp_path):
        dest = self._copy(snapshots, tmp_path)
        manifest_path = dest / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported fleet format"):
            load_fleet(dest)

    def test_truncated_block_rejected(self, snapshots, tmp_path):
        dest = self._copy(snapshots, tmp_path)
        block = dest / "block_pattern_rows.npy"
        block.write_bytes(block.read_bytes()[: block.stat().st_size // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_fleet(dest)

    def test_missing_block_rejected(self, snapshots, tmp_path):
        dest = self._copy(snapshots, tmp_path)
        (dest / "block_region_points.npy").unlink()
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_fleet(dest)

    def test_manifest_shape_mismatch_rejected(self, snapshots, tmp_path):
        dest = self._copy(snapshots, tmp_path)
        manifest_path = dest / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["blocks"]["history"][0] += 7
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="does not match"):
            load_fleet(dest)


class TestCopyOnWriteRefit:
    def test_mmap_blocks_are_readonly(self, snapshots):
        fleet = load_fleet(snapshots / "v2", mmap=True)
        model = fleet[fleet.object_ids()[0]]
        points = np.asarray(model.regions_[0].points)
        with pytest.raises((ValueError, RuntimeError)):
            points[0, 0] = 1.0

    def test_delta_refit_on_v2_model_matches_scratch(self, tmp_path):
        config = make_config()
        positions = make_route(12, seed=7)
        prefix, tail = positions[: 9 * PERIOD], positions[9 * PERIOD :]

        fleet = FleetPredictionModel(config)
        fleet.fit({"obj": Trajectory(prefix.copy(), 0)})
        save_fleet(fleet, tmp_path / "snap", format=2)

        reloaded = load_fleet(tmp_path / "snap", mmap=True)["obj"]
        reloaded.update(tail, refit="delta")

        oracle = HybridPredictionModel(config).fit(
            Trajectory(positions.copy(), 0)
        )
        assert model_fingerprint(reloaded) == model_fingerprint(oracle)
        q = queries(oracle)
        assert prediction_fingerprint(reloaded, q) == prediction_fingerprint(
            oracle, q
        )


class TestProperty:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_blocks=st.integers(min_value=8, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_convert_roundtrip_identity(self, tmp_path_factory, num_blocks, seed):
        tmp_path = tmp_path_factory.mktemp("prop")
        fleet = FleetPredictionModel(make_config())
        fleet.fit({"obj": Trajectory(make_route(num_blocks, seed=seed), 0)})
        save_fleet(fleet, tmp_path / "v1", format=1)
        convert_snapshot(tmp_path / "v1", tmp_path / "v2", format=2)
        reference = fleet_fingerprints(fleet)
        assert fleet_fingerprints(load_fleet(tmp_path / "v1")) == reference
        assert fleet_fingerprints(load_fleet(tmp_path / "v2")) == reference
