"""Tests for model save/load."""

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.model import HybridPredictionModel
from repro.core.persistence import load_model, save_model
from repro.trajectory import TimedPoint, Trajectory


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(0)
    period = 14
    base = np.column_stack(
        [60.0 * np.arange(period), 30.0 * np.arange(period)]
    )
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(20)]
    cfg = HPMConfig(
        period=period, eps=5.0, min_pts=4, distant_threshold=5, recent_window=3
    )
    model = HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks)))
    return model, base


class TestRoundTrip:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_model(
                HybridPredictionModel(period=10, distant_threshold=4),
                tmp_path / "m.npz",
            )

    def test_state_preserved(self, fitted_model, tmp_path):
        model, _ = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)

        assert loaded.config == model.config
        assert len(loaded.history_) == len(model.history_)
        assert len(loaded.regions_) == len(model.regions_)
        assert loaded.pattern_count == model.pattern_count
        # Patterns match as multisets of (premise labels, consequence, conf).
        def keys(m):
            return sorted(
                (
                    tuple(r.label for r in p.premise),
                    p.consequence.label,
                    round(p.confidence, 9),
                    p.support,
                )
                for p in m.patterns_
            )

        assert keys(loaded) == keys(model)
        loaded.tree_.validate()

    def test_predictions_identical(self, fitted_model, tmp_path):
        model, base = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)

        t0 = 20 * 14
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        for horizon in (4, 6, 8, 11):
            a = model.predict_one(recent, t0 + horizon)
            b = loaded.predict_one(recent, t0 + horizon)
            assert a.method == b.method
            assert a.location == b.location
            assert a.score == pytest.approx(b.score) if a.score else b.score is None

    def test_update_works_after_reload(self, fitted_model, tmp_path):
        model, base = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        rng = np.random.default_rng(4)
        loaded.update(base + rng.normal(0, 0.8, base.shape))
        assert len(loaded.history_) == len(model.history_) + len(base)

    def test_version_check(self, fitted_model, tmp_path):
        import json

        model, _ = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        # Corrupt the version field.
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        meta["format_version"] = 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="unsupported model format"):
            load_model(path)

    def test_pattern_free_model_round_trip(self, tmp_path):
        rng = np.random.default_rng(5)
        traj = Trajectory(rng.uniform(0, 10000, (140, 2)))
        model = HybridPredictionModel(
            HPMConfig(period=14, eps=5.0, min_pts=9, distant_threshold=5)
        ).fit(traj)
        assert model.pattern_count == 0
        path = tmp_path / "empty.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.pattern_count == 0
        recent = [TimedPoint(200 + i, float(i), 0.0) for i in range(8)]
        assert loaded.predict_one(recent, 212).method == "motion"


class TestFleetSnapshot:
    def test_round_trip(self, fitted_model, tmp_path):
        from repro.core.fleet import FleetPredictionModel
        from repro.core.persistence import load_fleet, save_fleet

        model, base = fitted_model
        fleet = FleetPredictionModel(model.config)
        fleet.adopt_object("a/b weird id", model)
        fleet.adopt_object("other", model)
        snapshot = tmp_path / "fleet"
        save_fleet(fleet, snapshot)
        assert (snapshot / "manifest.json").is_file()

        loaded = load_fleet(snapshot)
        assert loaded.object_ids() == fleet.object_ids()
        assert loaded.total_patterns() == fleet.total_patterns()

        now = len(model.history_) + 2
        recent = [
            TimedPoint(now + i, float(base[i][0]), float(base[i][1]))
            for i in range(3)
        ]
        direct = model.predict(recent, now + 6)
        via_snapshot = loaded.predict("a/b weird id", recent, now + 6)
        assert via_snapshot[0].location == direct[0].location
        assert via_snapshot[0].method == direct[0].method

    def test_empty_fleet_rejected(self, tmp_path):
        from repro.core.fleet import FleetPredictionModel
        from repro.core.persistence import save_fleet

        with pytest.raises(ValueError, match="empty fleet"):
            save_fleet(
                FleetPredictionModel(period=10, distant_threshold=4),
                tmp_path / "fleet",
            )

    def test_not_a_snapshot_rejected(self, tmp_path):
        from repro.core.persistence import load_fleet

        with pytest.raises(ValueError, match="not a fleet snapshot"):
            load_fleet(tmp_path)

    def test_adopt_requires_fitted(self):
        from repro.core.fleet import FleetPredictionModel
        from repro.core.model import HybridPredictionModel

        fleet = FleetPredictionModel(period=10, distant_threshold=4)
        with pytest.raises(ValueError, match="unfitted"):
            fleet.adopt_object("x", HybridPredictionModel(period=10, distant_threshold=4))
