"""Tests for model save/load."""

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.model import HybridPredictionModel
from repro.core.persistence import load_model, save_model
from repro.trajectory import TimedPoint, Trajectory


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(0)
    period = 14
    base = np.column_stack(
        [60.0 * np.arange(period), 30.0 * np.arange(period)]
    )
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(20)]
    cfg = HPMConfig(
        period=period, eps=5.0, min_pts=4, distant_threshold=5, recent_window=3
    )
    model = HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks)))
    return model, base


class TestRoundTrip:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_model(
                HybridPredictionModel(period=10, distant_threshold=4),
                tmp_path / "m.npz",
            )

    def test_state_preserved(self, fitted_model, tmp_path):
        model, _ = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)

        assert loaded.config == model.config
        assert len(loaded.history_) == len(model.history_)
        assert len(loaded.regions_) == len(model.regions_)
        assert loaded.pattern_count == model.pattern_count
        # Patterns match as multisets of (premise labels, consequence, conf).
        def keys(m):
            return sorted(
                (
                    tuple(r.label for r in p.premise),
                    p.consequence.label,
                    round(p.confidence, 9),
                    p.support,
                )
                for p in m.patterns_
            )

        assert keys(loaded) == keys(model)
        loaded.tree_.validate()

    def test_predictions_identical(self, fitted_model, tmp_path):
        model, base = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)

        t0 = 20 * 14
        recent = [TimedPoint(t0 + t, *base[t]) for t in range(3)]
        for horizon in (4, 6, 8, 11):
            a = model.predict_one(recent, t0 + horizon)
            b = loaded.predict_one(recent, t0 + horizon)
            assert a.method == b.method
            assert a.location == b.location
            assert a.score == pytest.approx(b.score) if a.score else b.score is None

    def test_update_works_after_reload(self, fitted_model, tmp_path):
        model, base = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        rng = np.random.default_rng(4)
        loaded.update(base + rng.normal(0, 0.8, base.shape))
        assert len(loaded.history_) == len(model.history_) + len(base)

    def test_version_check(self, fitted_model, tmp_path):
        import json

        model, _ = fitted_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        # Corrupt the version field.
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        meta["format_version"] = 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="unsupported model format"):
            load_model(path)

    def test_pattern_free_model_round_trip(self, tmp_path):
        rng = np.random.default_rng(5)
        traj = Trajectory(rng.uniform(0, 10000, (140, 2)))
        model = HybridPredictionModel(
            HPMConfig(period=14, eps=5.0, min_pts=9, distant_threshold=5)
        ).fit(traj)
        assert model.pattern_count == 0
        path = tmp_path / "empty.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.pattern_count == 0
        recent = [TimedPoint(200 + i, float(i), 0.0) for i in range(8)]
        assert loaded.predict_one(recent, 212).method == "motion"
