"""Regression tests for the fleet concurrency contract.

One test per fixed bug:

* unknown-id operations must not mint (and leak) lock-table entries;
* registry read paths (``len``, ``in``, ``summary``, ``total_patterns``)
  must survive a concurrent ``drop_object``;
* concurrent refits of the same object must serialise fit-and-install,
  so a staler fit can never overwrite a fresher one.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.fleet import FleetPredictionModel
from repro.core.model import HybridPredictionModel
from repro.trajectory import TimedPoint, Trajectory

PERIOD = 10


def make_history(route_y: float, num_subs=15, period=PERIOD, seed=0):
    rng = np.random.default_rng(seed)
    base = np.column_stack(
        [80.0 * np.arange(period), np.full(period, route_y)]
    )
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(num_subs)]
    return Trajectory(np.vstack(blocks))


@pytest.fixture
def fleet():
    fleet = FleetPredictionModel(
        HPMConfig(
            period=PERIOD, eps=5.0, min_pts=4, distant_threshold=4, recent_window=3
        )
    )
    fleet.fit({f"obj{i}": make_history(400.0 * i, seed=i) for i in range(3)})
    return fleet


class TestLockTableLeak:
    def test_unknown_id_operations_leave_lock_table_unchanged(self, fleet):
        before = dict(fleet._object_locks)
        recent = [TimedPoint(t, 80.0 * t, 0.0) for t in range(3)]
        with pytest.raises(KeyError, match="ghost"):
            fleet.predict("ghost", recent, 5)
        with pytest.raises(KeyError, match="ghost"):
            fleet.update_object("ghost", [[0.0, 0.0]])
        with pytest.raises(KeyError, match="ghost"):
            fleet.object_lock("ghost")
        with pytest.raises(KeyError, match="ghost"):
            fleet.predict_all({"ghost": recent}, 5)
        assert fleet._object_locks == before

    def test_misbehaving_client_storm_does_not_grow_lock_table(self, fleet):
        before = len(fleet._object_locks)
        for i in range(500):
            with pytest.raises(KeyError):
                fleet.object_lock(f"bogus-{i}")
        assert len(fleet._object_locks) == before

    def test_registered_objects_still_get_locks(self, fleet):
        lock = fleet.object_lock("obj0")
        assert fleet.object_lock("obj0") is lock
        assert fleet.object_lock("obj1") is not lock


class TestReadPathsUnderDrop:
    def test_summary_during_concurrent_drop_does_not_raise(self, fleet):
        """Drop/re-adopt in one thread while another summarises."""
        model = fleet["obj0"]
        for i in range(50):
            fleet.adopt_object(f"extra{i:03d}", model)
        errors = []
        stop = threading.Event()

        def churn():
            try:
                for _ in range(20):
                    for i in range(50):
                        fleet.drop_object(f"extra{i:03d}")
                    for i in range(50):
                        fleet.adopt_object(f"extra{i:03d}", model)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    rows = fleet.summary()
                    assert all(r["num_patterns"] >= 0 for r in rows)
                    assert fleet.total_patterns() >= 0
                    assert len(fleet) >= 3
                    assert "obj0" in fleet
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestRefitSerialisation:
    def test_concurrent_same_object_refits_never_interleave(
        self, fleet, monkeypatch
    ):
        """Two refits of one object must run fit+install back to back.

        Pre-fix, both fits ran concurrently outside the lock and the
        one that *finished* last won the install — so a slow, staler
        fit silently overwrote a fresher model.  Post-fix the whole
        fit-and-install serialises on the object lock.
        """
        events = []
        events_lock = threading.Lock()
        first_entered = threading.Event()
        real_fit = HybridPredictionModel.fit

        def instrumented_fit(self, trajectory):
            with events_lock:
                events.append(("start", id(self)))
            if not first_entered.is_set():
                first_entered.set()
                time.sleep(0.15)  # slow first fit: pre-fix, it loses the race
            result = real_fit(self, trajectory)
            with events_lock:
                events.append(("end", id(self)))
            return result

        monkeypatch.setattr(HybridPredictionModel, "fit", instrumented_fit)

        slow = make_history(0.0, seed=11)
        fast = make_history(0.0, seed=22)
        installed = {}

        def refit(name, trajectory):
            installed[name] = fleet.fit_object("obj0", trajectory)

        t_slow = threading.Thread(target=refit, args=("slow", slow))
        t_slow.start()
        first_entered.wait()
        t_fast = threading.Thread(target=refit, args=("fast", fast))
        t_fast.start()
        t_slow.join()
        t_fast.join()

        # Strictly serialised: start/end pairs never interleave.
        assert [kind for kind, _ in events] == ["start", "end", "start", "end"]
        assert events[0][1] == events[1][1]
        assert events[2][1] == events[3][1]
        # The installed model is the one whose fit ran last — never a
        # staler fit that merely finished later.
        assert id(fleet["obj0"]) == events[3][1]

    def test_different_objects_fit_concurrently(self, fleet, monkeypatch):
        """The per-object serialisation must not globalise fitting."""
        active = {"now": 0, "max": 0}
        gauge_lock = threading.Lock()
        real_fit = HybridPredictionModel.fit

        def gauged_fit(self, trajectory):
            with gauge_lock:
                active["now"] += 1
                active["max"] = max(active["max"], active["now"])
            time.sleep(0.05)
            try:
                return real_fit(self, trajectory)
            finally:
                with gauge_lock:
                    active["now"] -= 1

        monkeypatch.setattr(HybridPredictionModel, "fit", gauged_fit)
        threads = [
            threading.Thread(
                target=fleet.fit_object,
                args=(f"obj{i}", make_history(400.0 * i, seed=30 + i)),
            )
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert active["max"] >= 2
