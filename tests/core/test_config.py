"""Tests for HPMConfig validation and derived values."""

import pytest

from repro.core.config import HPMConfig


class TestValidation:
    def test_defaults_are_papers(self):
        cfg = HPMConfig()
        assert cfg.period == 300
        assert cfg.eps == 30.0
        assert cfg.min_pts == 4
        assert cfg.min_confidence == 0.3
        assert cfg.distant_threshold == 60
        assert cfg.top_k == 1
        assert cfg.weight_function == "linear"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("period", 0),
            ("eps", 0.0),
            ("eps", -5.0),
            ("min_pts", 0),
            ("min_confidence", 1.5),
            ("min_confidence", -0.1),
            ("min_support", 0),
            ("distant_threshold", 0),
            ("distant_threshold", 300),  # must be < period
            ("time_relaxation", 0),
            ("top_k", 0),
            ("weight_function", "cubic"),
            ("max_premise_length", 0),
            ("max_premise_span", 0),
            ("max_consequence_gap", 0),
            ("far_premise_stride", 0),
            ("recent_window", 1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            HPMConfig(**{field: value})

    def test_frozen(self):
        cfg = HPMConfig()
        with pytest.raises(AttributeError):
            cfg.eps = 50.0  # type: ignore[misc]


class TestDerived:
    def test_effective_min_support_defaults_to_min_pts(self):
        assert HPMConfig(min_pts=6).effective_min_support == 6
        assert HPMConfig(min_pts=6, min_support=3).effective_min_support == 3

    def test_effective_max_consequence_gap(self):
        cfg = HPMConfig(distant_threshold=60, recent_window=10)
        assert cfg.effective_max_consequence_gap == 70
        assert HPMConfig(max_consequence_gap=99).effective_max_consequence_gap == 99

    def test_with_overrides_validates(self):
        cfg = HPMConfig()
        assert cfg.with_overrides(eps=25.0).eps == 25.0
        with pytest.raises(ValueError):
            cfg.with_overrides(eps=-1.0)

    def test_with_overrides_preserves_others(self):
        cfg = HPMConfig(min_pts=7).with_overrides(eps=20.0)
        assert cfg.min_pts == 7
