"""Tests for the HybridPredictionModel facade."""

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.model import HybridPredictionModel
from repro.trajectory import Point, TimedPoint, Trajectory


def route_trajectory(num_subs=30, period=12, sigma=0.8, seed=0):
    """Periodic movement along a bent path with Gaussian jitter."""
    rng = np.random.default_rng(seed)
    base = np.zeros((period, 2))
    for t in range(period):
        if t < period // 2:
            base[t] = [60.0 * t, 0.0]
        else:
            base[t] = [60.0 * (period // 2), 60.0 * (t - period // 2)]
    blocks = [base + rng.normal(0, sigma, base.shape) for _ in range(num_subs)]
    return Trajectory(np.vstack(blocks)), base


@pytest.fixture
def fitted():
    traj, base = route_trajectory()
    cfg = HPMConfig(
        period=12, eps=5.0, min_pts=4, distant_threshold=5, recent_window=3
    )
    model = HybridPredictionModel(cfg).fit(traj)
    return model, base


class TestConstruction:
    def test_overrides_build_config(self):
        model = HybridPredictionModel(period=40, eps=9.0, distant_threshold=10)
        assert model.config.period == 40
        assert model.config.eps == 9.0

    def test_config_plus_overrides(self):
        model = HybridPredictionModel(HPMConfig(period=40, distant_threshold=10), eps=7.0)
        assert model.config.period == 40
        assert model.config.eps == 7.0

    def test_unfitted_accessors_raise(self):
        model = HybridPredictionModel(period=10, distant_threshold=5)
        assert not model.is_fitted
        for accessor in ("regions_", "patterns_", "tree_", "history_"):
            with pytest.raises(RuntimeError):
                getattr(model, accessor)
        with pytest.raises(RuntimeError):
            model.predict([TimedPoint(0, 0, 0)], 5)

    def test_fit_requires_full_period(self):
        model = HybridPredictionModel(period=100, distant_threshold=40)
        with pytest.raises(ValueError, match="shorter than one period"):
            model.fit(Trajectory(np.zeros((50, 2))))


class TestFit:
    def test_pipeline_artifacts(self, fitted):
        model, _ = fitted
        assert model.is_fitted
        assert len(model.regions_) == 12
        assert model.pattern_count > 0
        assert model.codec_ is not None
        assert model.tree_ is not None
        assert len(model.tree_) == model.pattern_count
        model.tree_.validate()

    def test_mining_stats(self, fitted):
        model, _ = fitted
        stats = model.mining_stats_
        assert stats.num_frequent_items == 12
        assert stats.num_patterns == model.pattern_count

    def test_near_prediction_accuracy(self, fitted):
        model, base = fitted
        # Object is on the route at offsets 0..2 of some period.
        t0 = 30 * 12  # continue after training history
        recent = [
            TimedPoint(t0 + t, base[t][0], base[t][1]) for t in range(3)
        ]
        pred = model.predict_one(recent, t0 + 4)
        truth = Point(*base[4])
        assert pred.method == "fqp"
        assert pred.location.distance_to(truth) < 5.0

    def test_distant_prediction_accuracy(self, fitted):
        model, base = fitted
        t0 = 30 * 12
        recent = [TimedPoint(t0 + t, base[t][0], base[t][1]) for t in range(3)]
        pred = model.predict_one(recent, t0 + 10)
        truth = Point(*base[10])
        assert pred.method == "bqp"
        assert pred.location.distance_to(truth) < 5.0

    def test_top_k(self, fitted):
        model, base = fitted
        t0 = 30 * 12
        recent = [TimedPoint(t0 + t, base[t][0], base[t][1]) for t in range(3)]
        results = model.predict(recent, t0 + 4, k=3)
        assert 1 <= len(results) <= 3
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)


class TestPatternFreeMode:
    def test_random_data_degrades_to_motion(self):
        rng = np.random.default_rng(5)
        traj = Trajectory(rng.uniform(0, 10000, (240, 2)))
        model = HybridPredictionModel(
            HPMConfig(period=12, eps=5.0, min_pts=8, distant_threshold=5)
        ).fit(traj)
        assert model.pattern_count == 0
        assert model.tree_ is None
        recent = [TimedPoint(300 + i, float(i), 0.0) for i in range(8)]
        pred = model.predict_one(recent, 312)
        assert pred.method == "motion"

    def test_pattern_free_rejects_empty_recent(self):
        rng = np.random.default_rng(6)
        traj = Trajectory(rng.uniform(0, 10000, (240, 2)))
        model = HybridPredictionModel(
            HPMConfig(period=12, eps=5.0, min_pts=8, distant_threshold=5)
        ).fit(traj)
        with pytest.raises(ValueError):
            model.predict([], 10)


class TestUpdate:
    def test_update_appends_history(self, fitted):
        model, base = fitted
        before = len(model.history_)
        rng = np.random.default_rng(9)
        model.update(base + rng.normal(0, 0.8, base.shape))
        assert len(model.history_) == before + len(base)

    def test_update_same_geometry_keeps_tree_instance(self, fitted):
        model, base = fitted
        tree_before = model.tree_
        rng = np.random.default_rng(10)
        model.update(base + rng.normal(0, 0.8, base.shape))
        # Same region universe: incremental insertion path keeps the tree.
        assert model.tree_ is tree_before
        model.tree_.validate()

    def test_update_refreshes_stale_confidences(self, fitted):
        """After an update, every indexed pattern carries its re-mined
        confidence (stale entries are replaced, not duplicated)."""
        model, base = fitted
        rng = np.random.default_rng(13)
        model.update(base + rng.normal(0, 0.8, base.shape))
        assert model.tree_ is not None
        indexed = {
            (p.premise, p.consequence): p.confidence
            for p in model.tree_.all_patterns()
        }
        mined = {
            (p.premise, p.consequence): p.confidence for p in model.patterns_
        }
        assert indexed == mined
        assert len(model.tree_) == model.pattern_count

    def test_update_new_region_rebuilds(self, fitted):
        model, _ = fitted
        rng = np.random.default_rng(11)
        tree_before = model.tree_
        # Five periods at a brand-new location create new frequent regions.
        new_route = np.tile(np.array([[5000.0, 5000.0]]), (12, 1))
        blocks = [
            new_route + rng.normal(0, 0.5, new_route.shape) for _ in range(6)
        ]
        model.update(np.vstack(blocks))
        assert model.tree_ is not tree_before
        model.tree_.validate()

    def test_update_requires_fit(self):
        model = HybridPredictionModel(period=12, distant_threshold=5)
        with pytest.raises(RuntimeError):
            model.update(np.zeros((12, 2)))

    def test_prediction_still_works_after_update(self, fitted):
        model, base = fitted
        rng = np.random.default_rng(12)
        model.update(base + rng.normal(0, 0.8, base.shape))
        t0 = len(model.history_)
        recent = [TimedPoint(t0 + t, base[t][0], base[t][1]) for t in range(3)]
        pred = model.predict_one(recent, t0 + 4)
        assert pred.location.distance_to(Point(*base[4])) < 10.0


class TestRepr:
    def test_reprs(self, fitted):
        model, _ = fitted
        assert "patterns=" in repr(model)
        assert "unfitted" in repr(HybridPredictionModel(period=10, distant_threshold=5))
