"""Tests for the streaming OnlineTracker."""

import threading

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.model import HybridPredictionModel
from repro.core.online import OnlineTracker
from repro.trajectory import Point, Trajectory


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(0)
    period = 12
    base = np.column_stack(
        [70.0 * np.arange(period), 20.0 * np.arange(period)]
    )
    blocks = [base + rng.normal(0, 0.6, base.shape) for _ in range(20)]
    cfg = HPMConfig(
        period=period, eps=5.0, min_pts=4, distant_threshold=5, recent_window=4
    )
    return HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks))), base


class TestObserve:
    def test_requires_fitted_model(self):
        with pytest.raises(ValueError, match="fitted"):
            OnlineTracker(HybridPredictionModel(period=12, distant_threshold=5))

    def test_window_is_bounded(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        for t in range(10):
            tracker.observe(240 + t, *base[t % 12])
        assert len(tracker.window) == model.config.recent_window
        assert tracker.current_time == 249

    def test_rejects_out_of_order(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        tracker.observe(240, *base[0])
        with pytest.raises(ValueError, match="not after"):
            tracker.observe(240, *base[1])
        with pytest.raises(ValueError, match="not after"):
            tracker.observe(239, *base[1])

    def test_queries_require_fixes(self, world):
        model, _ = world
        tracker = OnlineTracker(model)
        with pytest.raises(ValueError, match="no fixes"):
            tracker.predict(100)
        with pytest.raises(ValueError, match="no fixes"):
            tracker.current_time


class TestPredict:
    def test_tracks_route(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        t0 = 240  # offset 0 of a new period
        for t in range(3):
            tracker.observe(t0 + t, *base[t])
        prediction = tracker.predict_in(4)[0]
        truth = Point(*base[6])
        assert prediction.location.distance_to(truth) < 8.0

    def test_predict_in_validation(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        tracker.observe(240, *base[0])
        with pytest.raises(ValueError):
            tracker.predict_in(0)

    def test_predict_matches_manual_window(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        t0 = 240
        for t in range(4):
            tracker.observe(t0 + t, *base[t])
        direct = model.predict(tracker.window, t0 + 7, k=1)[0]
        via_tracker = tracker.predict(t0 + 7, k=1)[0]
        assert direct.location == via_tracker.location
        assert direct.method == via_tracker.method


class TestUpdates:
    def test_update_due_and_flush(self, world):
        model, base = world
        tracker = OnlineTracker(model, update_after=12)
        history_before = len(model.history_)
        t0 = 240
        for t in range(12):
            tracker.observe(t0 + t, *base[t])
            if t < 11:
                assert not tracker.update_due
        assert tracker.update_due
        assert tracker.pending_count == 12
        flushed = tracker.flush_updates()
        assert flushed == 12
        assert tracker.pending_count == 0
        assert not tracker.update_due
        assert len(model.history_) == history_before + 12

    def test_flush_empty_is_noop(self, world):
        model, _ = world
        tracker = OnlineTracker(model)
        assert tracker.flush_updates() == 0

    def test_update_after_validation(self, world):
        model, _ = world
        with pytest.raises(ValueError):
            OnlineTracker(model, update_after=0)

    def test_repr(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        tracker.observe(240, *base[0])
        assert "pending=1" in repr(tracker)


@pytest.fixture()
def fresh_world():
    """Function-scoped copy of ``world`` for tests that mutate the model."""
    rng = np.random.default_rng(0)
    period = 12
    base = np.column_stack(
        [70.0 * np.arange(period), 20.0 * np.arange(period)]
    )
    blocks = [base + rng.normal(0, 0.6, base.shape) for _ in range(20)]
    cfg = HPMConfig(
        period=period, eps=5.0, min_pts=4, distant_threshold=5, recent_window=4
    )
    return HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks))), base


class TestGapPolicy:
    def test_gap_rejected_and_pending_restored(self, fresh_world):
        model, base = fresh_world
        tracker = OnlineTracker(model)
        t0 = len(model.history_)
        tracker.observe(t0, *base[0])
        tracker.observe(t0 + 3, *base[3])  # two fixes went missing
        with pytest.raises(ValueError, match="gap of 2"):
            tracker.flush_updates()
        # The claimed fixes went back to the buffer and nothing reached
        # the model — the caller can backfill and retry.
        assert tracker.pending_count == 2
        assert len(model.history_) == t0

    def test_gap_padded_with_last_position(self, fresh_world):
        model, base = fresh_world
        tracker = OnlineTracker(model, gap_policy="pad")
        t0 = len(model.history_)
        tracker.observe(t0, *base[0])
        tracker.observe(t0 + 3, *base[3])
        flushed = tracker.flush_updates()
        assert flushed == 2  # synthesised pad rows are not counted
        assert len(model.history_) == t0 + 4  # 2 fixes + 2 pad rows
        positions = model.history_.positions
        # pads repeat the last known position, preserving period phase
        assert np.allclose(positions[t0 + 1], positions[t0])
        assert np.allclose(positions[t0 + 2], positions[t0])

    def test_overlap_rejected(self, fresh_world):
        model, base = fresh_world
        tracker = OnlineTracker(model)
        tracker.observe(len(model.history_) - 1, *base[0])
        with pytest.raises(ValueError, match="overlaps"):
            tracker.flush_updates()
        assert tracker.pending_count == 1

    def test_gap_policy_validation(self, fresh_world):
        model, _ = fresh_world
        with pytest.raises(ValueError, match="gap_policy"):
            OnlineTracker(model, gap_policy="interpolate")


class TestFlushConcurrency:
    def test_queries_proceed_while_prepare_runs(self, fresh_world, monkeypatch):
        """The heavy refresh must not hold the tracker lock: a predict
        issued while ``prepare_update`` is still crunching completes
        immediately instead of queueing behind the flush."""
        model, base = fresh_world
        tracker = OnlineTracker(model)
        t0 = len(model.history_)
        for t in range(12):
            tracker.observe(t0 + t, *base[t])

        entered = threading.Event()
        release = threading.Event()
        original = model.prepare_update

        def slow_prepare(positions, refit=None):
            entered.set()
            assert release.wait(timeout=10.0), "flush was never released"
            return original(positions, refit=refit)

        monkeypatch.setattr(model, "prepare_update", slow_prepare)
        flusher = threading.Thread(target=tracker.flush_updates)
        flusher.start()
        try:
            assert entered.wait(timeout=10.0)
            # prepare is blocked mid-refresh; the lock must be free.
            predictions = tracker.predict(tracker.current_time + 2, k=1)
            assert predictions
            tracker.observe(t0 + 12, *base[0])
        finally:
            release.set()
            flusher.join(timeout=10.0)
        assert not flusher.is_alive()
        assert len(model.history_) == t0 + 12
        assert tracker.pending_count == 1  # the fix observed mid-flush

    def test_flush_retries_after_concurrent_writer(self, fresh_world, monkeypatch):
        """A writer landing between prepare and commit makes the staged
        state stale; flush must restore the batch and re-prepare against
        the advanced history instead of committing a torn update."""
        model, base = fresh_world
        t0 = len(model.history_)
        tracker = OnlineTracker(model, gap_policy="pad")
        for t in range(12):
            tracker.observe(t0 + 5 + t, *base[(5 + t) % 12])

        original = model.prepare_update
        fired = {"done": False}

        def racing_prepare(positions, refit=None):
            staged = original(positions, refit=refit)
            if not fired["done"]:
                fired["done"] = True
                # Concurrent writer fills t0..t0+4 directly on the model.
                model.update(base[:5], refit="delta")
            return staged

        monkeypatch.setattr(model, "prepare_update", racing_prepare)
        flushed = tracker.flush_updates()
        assert fired["done"]
        assert flushed == 12
        # 5 rows from the concurrent writer + 12 flushed fixes, no pads
        # on the retry (the writer closed the gap).
        assert len(model.history_) == t0 + 17
        assert tracker.pending_count == 0
