"""Tests for the streaming OnlineTracker."""

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.model import HybridPredictionModel
from repro.core.online import OnlineTracker
from repro.trajectory import Point, Trajectory


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(0)
    period = 12
    base = np.column_stack(
        [70.0 * np.arange(period), 20.0 * np.arange(period)]
    )
    blocks = [base + rng.normal(0, 0.6, base.shape) for _ in range(20)]
    cfg = HPMConfig(
        period=period, eps=5.0, min_pts=4, distant_threshold=5, recent_window=4
    )
    return HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks))), base


class TestObserve:
    def test_requires_fitted_model(self):
        with pytest.raises(ValueError, match="fitted"):
            OnlineTracker(HybridPredictionModel(period=12, distant_threshold=5))

    def test_window_is_bounded(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        for t in range(10):
            tracker.observe(240 + t, *base[t % 12])
        assert len(tracker.window) == model.config.recent_window
        assert tracker.current_time == 249

    def test_rejects_out_of_order(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        tracker.observe(240, *base[0])
        with pytest.raises(ValueError, match="not after"):
            tracker.observe(240, *base[1])
        with pytest.raises(ValueError, match="not after"):
            tracker.observe(239, *base[1])

    def test_queries_require_fixes(self, world):
        model, _ = world
        tracker = OnlineTracker(model)
        with pytest.raises(ValueError, match="no fixes"):
            tracker.predict(100)
        with pytest.raises(ValueError, match="no fixes"):
            tracker.current_time


class TestPredict:
    def test_tracks_route(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        t0 = 240  # offset 0 of a new period
        for t in range(3):
            tracker.observe(t0 + t, *base[t])
        prediction = tracker.predict_in(4)[0]
        truth = Point(*base[6])
        assert prediction.location.distance_to(truth) < 8.0

    def test_predict_in_validation(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        tracker.observe(240, *base[0])
        with pytest.raises(ValueError):
            tracker.predict_in(0)

    def test_predict_matches_manual_window(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        t0 = 240
        for t in range(4):
            tracker.observe(t0 + t, *base[t])
        direct = model.predict(tracker.window, t0 + 7, k=1)[0]
        via_tracker = tracker.predict(t0 + 7, k=1)[0]
        assert direct.location == via_tracker.location
        assert direct.method == via_tracker.method


class TestUpdates:
    def test_update_due_and_flush(self, world):
        model, base = world
        tracker = OnlineTracker(model, update_after=12)
        history_before = len(model.history_)
        t0 = 240
        for t in range(12):
            tracker.observe(t0 + t, *base[t])
            if t < 11:
                assert not tracker.update_due
        assert tracker.update_due
        assert tracker.pending_count == 12
        flushed = tracker.flush_updates()
        assert flushed == 12
        assert tracker.pending_count == 0
        assert not tracker.update_due
        assert len(model.history_) == history_before + 12

    def test_flush_empty_is_noop(self, world):
        model, _ = world
        tracker = OnlineTracker(model)
        assert tracker.flush_updates() == 0

    def test_update_after_validation(self, world):
        model, _ = world
        with pytest.raises(ValueError):
            OnlineTracker(model, update_after=0)

    def test_repr(self, world):
        model, base = world
        tracker = OnlineTracker(model)
        tracker.observe(240, *base[0])
        assert "pending=1" in repr(tracker)
