"""Tests for FQP, BQP and the hybrid dispatch (Algorithms 2 and 3)."""

import pytest

from repro.core.config import HPMConfig
from repro.core.keys import KeyCodec
from repro.core.prediction import HybridPredictor, Prediction
from repro.core.tpt import TrajectoryPatternTree
from repro.trajectory import Point, TimedPoint


@pytest.fixture
def jane_predictor(jane_region_set, jane_patterns):
    codec = KeyCodec.from_patterns(jane_region_set, jane_patterns)
    tree = TrajectoryPatternTree(codec, max_entries=4)
    tree.bulk_load_patterns(jane_patterns)
    config = HPMConfig(
        period=3,
        eps=5.0,
        min_pts=2,
        distant_threshold=2,
        time_relaxation=1,
        recent_window=3,
    )
    return HybridPredictor(
        regions=jane_region_set, codec=codec, tree=tree, config=config
    )


def at_home_then_city(t0=30):
    """Recent movements: home at offset 0, city at offset 1 (period 3)."""
    return [TimedPoint(t0, 0.0, 0.0), TimedPoint(t0 + 1, 100.0, 0.0)]


class TestPredictionDataclass:
    def test_method_validation(self):
        with pytest.raises(ValueError):
            Prediction(location=Point(0, 0), method="teleport")


class TestDispatch:
    def test_near_query_uses_fqp(self, jane_predictor):
        recent = at_home_then_city()
        result = jane_predictor.predict_one(recent, query_time=32)
        assert result.method == "fqp"

    def test_distant_query_uses_bqp(self, jane_predictor):
        # distant_threshold=2: tq - tc >= 2 is distant.
        recent = [TimedPoint(30, 0.0, 0.0)]
        result = jane_predictor.predict_one(recent, query_time=32)
        assert result.method == "bqp"

    def test_rejects_past_query(self, jane_predictor):
        with pytest.raises(ValueError, match="after the current time"):
            jane_predictor.predict(at_home_then_city(), query_time=31)

    def test_rejects_empty_recent(self, jane_predictor):
        with pytest.raises(ValueError, match="non-empty"):
            jane_predictor.predict([], query_time=10)

    def test_rejects_bad_k(self, jane_predictor):
        with pytest.raises(ValueError):
            jane_predictor.predict(at_home_then_city(), 32, k=0)


class TestFQP:
    def test_city_route_predicts_work(self, jane_predictor, jane_regions):
        """The paper's example: after Home ∧ City at tq=2, Work wins
        (Sp = 0.5) over Beach (Sp = 0.132)."""
        result = jane_predictor.forward_query(at_home_then_city(), 32, k=2)
        assert result[0].pattern.consequence == jane_regions["work"]
        assert result[0].score == pytest.approx(0.5)
        assert result[1].pattern.consequence == jane_regions["beach"]
        assert result[1].score == pytest.approx(0.4 / 3)

    def test_prediction_is_consequence_center(self, jane_predictor, jane_regions):
        result = jane_predictor.forward_query(at_home_then_city(), 32, k=1)
        assert result[0].location == jane_regions["work"].center

    def test_top_k_caps_results(self, jane_predictor):
        assert len(jane_predictor.forward_query(at_home_then_city(), 32, k=1)) == 1
        assert len(jane_predictor.forward_query(at_home_then_city(), 32, k=5)) == 2

    def test_shopping_route_predicts_beach(self, jane_predictor, jane_regions):
        recent = [TimedPoint(30, 0.0, 0.0), TimedPoint(31, 0.0, 100.0)]
        result = jane_predictor.forward_query(recent, 32, k=1)
        assert result[0].pattern.consequence == jane_regions["beach"]

    def test_unmatched_recent_falls_back_to_motion(self, jane_predictor):
        recent = [
            TimedPoint(30, 500.0, 500.0),
            TimedPoint(31, 510.0, 510.0),
        ]
        result = jane_predictor.forward_query(recent, 32, k=1)
        assert result[0].method == "motion"
        assert jane_predictor.stats["motion"] == 1


class TestBQP:
    def test_distant_query_ranks_all_interval_candidates(
        self, jane_predictor, jane_regions
    ):
        """With t_eps = 1 the interval [tq-1, tq+1] covers offsets 1 and 2,
        so all four patterns are candidates, ranked by Eq. 5."""
        recent = [TimedPoint(30, 0.0, 0.0)]  # home at offset 0
        result = jane_predictor.backward_query(recent, 32, k=4)
        assert len(result) == 4
        assert all(r.method == "bqp" for r in result)
        scores = [r.score for r in result]
        assert scores == sorted(scores, reverse=True)
        # Top: P0 (home -> city): Sr=1, Sc=1-1/2, conf 0.9 -> 1.35.
        assert result[0].pattern.consequence == jane_regions["city"]
        assert result[0].score == pytest.approx((1.0 + 0.5) * 0.9)

    def test_interval_expansion_finds_neighbor_offsets(
        self, jane_predictor, jane_regions
    ):
        """A query whose offset has no consequences relaxes the interval."""
        # Offset 0 never appears as a consequence; offsets 1/2 do.  With
        # t_eps = 1 the first interval [tq-1, tq+1] already includes them.
        recent = [TimedPoint(30, 0.0, 0.0)]
        result = jane_predictor.backward_query(recent, 33, k=1)
        assert result[0].method == "bqp"

    def test_premise_similarity_disambiguates_routes(
        self, jane_predictor, jane_regions
    ):
        """A premise matching the recent movements outranks a non-matching
        one at the same consequence offset under Eq. 5."""
        recent = [TimedPoint(30, 0.0, 0.0), TimedPoint(31, 100.0, 0.0)]
        result = jane_predictor.backward_query(recent, 32, k=4)
        by_consequence = {r.pattern.consequence.label: r for r in result}
        work = by_consequence["R_2^0"]
        beach = by_consequence["R_2^1"]
        # Work's premise (home ∧ city) fully matches the recent movements:
        # (1 + 1) * 0.5 = 1.0; beach's (home ∧ shopping) only on the home
        # bit (weight 1/3): (1/3 + 1) * 0.4.
        assert work.score == pytest.approx(1.0)
        assert beach.score == pytest.approx((1 / 3 + 1.0) * 0.4)
        assert work.score > beach.score

    def test_bqp_scores_use_equation_5(self, jane_predictor, jane_regions):
        recent = [TimedPoint(30, 0.0, 0.0)]
        result = jane_predictor.backward_query(recent, 32, k=4)
        by_consequence = {r.pattern.consequence.label: r for r in result}
        # Work (offset 2 == query offset): Sr = home-bit weight 1/3,
        # Sc = 1, horizon 2 = d -> penalty 1. Score = (1/3 + 1) * 0.5.
        assert by_consequence["R_2^0"].score == pytest.approx((1 / 3 + 1.0) * 0.5)
        # City (offset 1, distance 1, relaxation 1): Sc = 1 - 1/2.
        assert by_consequence["R_1^0"].score == pytest.approx((1.0 + 0.5) * 0.9)


class TestRecentMapping:
    def test_map_recent_collapses_duplicates(self, jane_predictor, jane_regions):
        recent = [
            TimedPoint(30, 0.0, 0.0),
            TimedPoint(33, 1.0, 0.0),  # home again (offset 0, next period)
            TimedPoint(34, 100.0, 0.0),
        ]
        regions = jane_predictor.map_recent_to_regions(recent)
        assert regions == [jane_regions["home"], jane_regions["city"]]

    def test_map_respects_window(self, jane_region_set, jane_patterns):
        codec = KeyCodec.from_patterns(jane_region_set, jane_patterns)
        tree = TrajectoryPatternTree(codec)
        tree.bulk_load_patterns(jane_patterns)
        config = HPMConfig(
            period=3, eps=5.0, distant_threshold=2, recent_window=2
        )
        predictor = HybridPredictor(jane_region_set, codec, tree, config)
        recent = [
            TimedPoint(30, 0.0, 0.0),  # home — outside window of 2
            TimedPoint(31, 100.0, 0.0),
            TimedPoint(32, 200.0, 0.0),
        ]
        regions = predictor.map_recent_to_regions(recent)
        assert [r.label for r in regions] == ["R_1^0", "R_2^0"]


class TestMotionFallback:
    def test_short_recent_window_degrades_to_linear(self, jane_predictor):
        recent = [TimedPoint(30, 500.0, 0.0), TimedPoint(31, 510.0, 0.0)]
        result = jane_predictor.forward_query(recent, 32, k=1)
        assert result[0].method == "motion"
        # Linear extrapolation: 10 units/step.
        assert result[0].location.x == pytest.approx(520.0)

    def test_single_sample_stays_put(self, jane_predictor):
        recent = [TimedPoint(30, 500.0, 600.0)]
        result = jane_predictor.forward_query(recent, 31, k=1)
        assert result[0].method == "motion"
        assert result[0].location == Point(500.0, 600.0)

    def test_stats_accumulate(self, jane_predictor):
        jane_predictor.predict_one(at_home_then_city(), 32)
        jane_predictor.predict_one([TimedPoint(60, 0.0, 0.0)], 62)
        assert jane_predictor.stats["fqp"] == 1
        assert jane_predictor.stats["bqp"] == 1
