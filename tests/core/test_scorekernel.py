"""Tests for the vectorized query kernel (``repro.core.scorekernel``).

The contract under test: the packed-numpy kernel backend answers every
FQP/BQP query **bit-identically** to the per-candidate scan oracle —
same floats, same patterns, same tie order — while the plan demotes
itself gracefully whenever the kernel is unavailable or raises, the
kernel cache follows the consequence index's invalidation contract, the
per-plan FQP memo stays bounded, and the opt-in velocity filter stays
off by default.
"""

import pickle
from heapq import nsmallest
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HPMConfig
from repro.core.fleet import FleetPredictionModel
from repro.core.model import HybridPredictionModel
from repro.core.scorekernel import (
    KERNEL_BATCH_BUCKETS,
    pack_premise_tables,
    pattern_min_speed,
    premise_scores,
    prime_plan_queries,
    top_indices,
)
from repro.core.similarity import PremiseScorer
from repro.core.tpt import TrajectoryPatternTree
from repro.serve.metrics import MetricsRegistry
from repro.trajectory import TimedPoint, Trajectory

PERIOD = 16
CFG_KW = dict(period=PERIOD, eps=5.0, min_pts=4, distant_threshold=6, recent_window=3)


def build_model(num_subs=25, **overrides) -> HybridPredictionModel:
    """A fitted model over a noisy periodic route (same world as the
    prepared-query suite: FQP, BQP and motion all fire)."""
    rng = np.random.default_rng(0)
    base = np.column_stack([70.0 * np.arange(PERIOD), 35.0 * np.arange(PERIOD)])
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(num_subs)]
    cfg = HPMConfig(**{**CFG_KW, **overrides})
    return HybridPredictionModel(cfg).fit(Trajectory(np.vstack(blocks)))


def clone_with_config(model: HybridPredictionModel, **overrides) -> HybridPredictionModel:
    """A model sharing ``model``'s fitted state under a tweaked config.

    Mining is backend-independent, so sharing regions/patterns/tree makes
    backend comparisons exact by construction.
    """
    clone = HybridPredictionModel(model.config.with_overrides(**overrides))
    clone._history = model._history
    clone._regions = model._regions
    clone._patterns = model._patterns
    clone._mining_stats = model._mining_stats
    clone._codec = model._codec
    clone._tree = model._tree
    clone._refresh_predictor()
    return clone


def make_window(tc: int, length: int = 3) -> list[TimedPoint]:
    """A recent window riding the noiseless base route up to time ``tc``."""
    return [
        TimedPoint(t, 70.0 * (t % PERIOD), 35.0 * (t % PERIOD))
        for t in range(tc - length + 1, tc + 1)
    ]


@pytest.fixture(scope="module")
def kernel_model():
    return build_model()


@pytest.fixture(scope="module")
def scan_model(kernel_model):
    return clone_with_config(kernel_model, query_backend="scan")


# ----------------------------------------------------------------------
# kernel == scan, end to end
# ----------------------------------------------------------------------
class TestKernelScanEquivalence:
    def test_kernel_backend_is_active(self, kernel_model, scan_model):
        window = make_window(401)
        kplan = kernel_model.prepare(window)
        splan = scan_model.prepare(window)
        assert kplan._backend == "kernel"
        assert kplan.kernel_fallbacks == 0
        assert splan._backend == "scan"
        assert splan._kernel is None

    def test_point_queries_bit_identical(self, kernel_model, scan_model):
        methods = set()
        for tc in (401, 407, 412):
            window = make_window(tc)
            kplan = kernel_model.prepare(window)
            splan = scan_model.prepare(window)
            horizons = list(range(1, 2 * PERIOD)) + [3 * PERIOD, 4 * PERIOD + 1]
            for h in horizons:
                for k in (1, 3, 8):
                    got = kplan.predict(tc + h, k)
                    want = splan.predict(tc + h, k)
                    assert repr(got) == repr(want), (tc, h, k)
                    methods.update(p.method for p in got)
        # The sweep must actually exercise every path, or the comparison
        # is vacuous.
        assert methods == {"fqp", "bqp", "motion"}

    def test_trajectory_sweeps_identical(self, kernel_model, scan_model):
        for tc, step in ((401, 1), (407, 3)):
            window = make_window(tc)
            got = kernel_model.predict_trajectory(window, tc + 1, tc + 40, step)
            want = scan_model.predict_trajectory(window, tc + 1, tc + 40, step)
            assert repr(got) == repr(want)

    def test_pattern_free_model_stays_scan(self):
        # Too sparse to mine any pattern: tree is None, plan answers by
        # motion without counting a kernel fallback.
        rng = np.random.default_rng(3)
        model = HybridPredictionModel(HPMConfig(**CFG_KW)).fit(
            Trajectory(rng.uniform(0, 1e6, (2 * PERIOD, 2)))
        )
        assert model._tree is None
        plan = model.prepare(make_window(101))
        assert plan._backend == "scan"
        assert plan.kernel_fallbacks == 0
        assert plan.predict(103)[0].method == "motion"


# ----------------------------------------------------------------------
# property tests: kernel primitives vs scalar references
# ----------------------------------------------------------------------
KINDS = ("linear", "quadratic", "exponential", "factorial")


@st.composite
def scoring_cases(draw):
    length = draw(st.integers(min_value=1, max_value=24))
    full = (1 << length) - 1
    keys = draw(
        st.lists(st.integers(min_value=0, max_value=full), min_size=1, max_size=16)
    )
    # Query masks: arbitrary, plus the empty and saturated edge cases.
    qkey = draw(
        st.one_of(
            st.just(0),
            st.just(full),
            st.integers(min_value=0, max_value=full),
        )
    )
    kind = draw(st.sampled_from(KINDS))
    return length, keys, qkey, kind


class TestScoringProperties:
    @settings(max_examples=60, deadline=None)
    @given(scoring_cases())
    def test_packed_scores_match_scalar_scorer(self, case):
        length, keys, qkey, kind = case
        scorer = PremiseScorer(kind)
        cols, weights = pack_premise_tables(keys, scorer)
        qvec = np.zeros(length, dtype=np.float64)
        for bit in range(length):
            if qkey >> bit & 1:
                qvec[bit] = 1.0
        pack = SimpleNamespace(bit_cols=cols, bit_weights=weights)
        got = premise_scores(pack, qvec)
        want = [scorer.score(rk, qkey) for rk in keys]
        # Bit-identical, not approximately equal.
        assert got.tolist() == want

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=40).flatmap(
            lambda n: st.tuples(
                st.lists(
                    st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
                    min_size=n,
                    max_size=n,
                ),
                st.lists(
                    st.sampled_from([0.3, 0.6, 0.9]), min_size=n, max_size=n
                ),
                st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n),
                st.integers(min_value=1, max_value=n + 5),
            )
        )
    )
    def test_top_indices_matches_nsmallest(self, case):
        scores, confidences, supports, k = case
        n = len(scores)
        # The scan path's exact ordering: score desc, confidence desc,
        # support desc, stable on candidate order.
        want = nsmallest(
            k,
            range(n),
            key=lambda i: (-scores[i], -confidences[i], -supports[i], i),
        )
        got = top_indices(
            np.array(scores),
            np.array(confidences),
            np.array(supports, dtype=np.int64),
            k,
        )
        assert got.tolist() == want


# ----------------------------------------------------------------------
# memo bound (satellite: hostile query streams must not grow plans)
# ----------------------------------------------------------------------
class TestForwardMemoBound:
    def test_hostile_query_stream_stays_within_period(self, kernel_model, scan_model):
        for model in (kernel_model, scan_model):
            plan = model.prepare(make_window(401))
            # forward() skips the distant-time validation, so this walks
            # every offset many times over.
            for qt in range(402, 402 + 5 * PERIOD):
                plan.forward(qt, 1)
            assert len(plan._fqp_scored) <= PERIOD

    def test_store_forward_evicts_oldest(self, kernel_model):
        plan = kernel_model.prepare(make_window(401))
        for fake_offset in range(3 * PERIOD):
            plan._store_forward(fake_offset, None)
        assert len(plan._fqp_scored) == PERIOD
        # FIFO: the surviving keys are the most recent PERIOD stores.
        assert min(plan._fqp_scored) == 2 * PERIOD


# ----------------------------------------------------------------------
# invalidation, refit, pickling
# ----------------------------------------------------------------------
class TestKernelInvalidation:
    def test_structural_mutations_drop_cached_kernels(self):
        model = build_model(num_subs=15)
        tree = model._tree
        kind = model.config.weight_function
        assert tree.score_kernel(kind) is not None
        assert tree._score_kernels
        patterns = tree.all_patterns()
        tree.rebind_patterns([(p, p) for p in patterns])
        assert tree._score_kernels == {}
        # Rebuilt on demand, and a fresh object (not the stale pack).
        first = tree.score_kernel(kind)
        assert first is not None
        victim = patterns[0]
        assert tree.remove_pattern(victim)
        assert tree._score_kernels == {}
        second = tree.score_kernel(kind)
        assert second is not None and second is not first
        tree.insert_pattern(victim)
        assert tree._score_kernels == {}
        third = tree.score_kernel(kind)
        tree.bulk_load_patterns(patterns)
        assert tree._score_kernels == {}
        assert tree.score_kernel(kind) is not third

    def test_delta_refit_keeps_backends_identical(self):
        kernel = build_model(num_subs=15)
        scan = clone_with_config(kernel, query_backend="scan")
        # scan shares kernel's tree; refit each against its own copy so
        # the update paths stay independent.
        scan = pickle.loads(pickle.dumps(scan))
        rng = np.random.default_rng(7)
        base = np.column_stack([70.0 * np.arange(PERIOD), 35.0 * np.arange(PERIOD)])
        new_rows = np.vstack([base + rng.normal(0, 0.8, base.shape) for _ in range(2)])
        old_kernel_cache = dict(kernel._tree._score_kernels)
        kernel.update(new_rows, refit="delta")
        scan.update(new_rows, refit="delta")
        # The ingest must have invalidated any packed state built before it.
        assert not set(kernel._tree._score_kernels) & set(old_kernel_cache) or (
            kernel._tree._score_kernels != old_kernel_cache
        )
        tc = kernel._history.end_time
        window = make_window(tc)
        for h in list(range(1, 2 * PERIOD)) + [3 * PERIOD]:
            got = kernel.predict(window, tc + h, 3)
            want = scan.predict(window, tc + h, 3)
            assert repr(got) == repr(want), h

    def test_pickle_drops_kernels_and_rebuilds_lazily(self, kernel_model, scan_model):
        window = make_window(401)
        kernel_model.predict(window, 403)  # ensure the cache is populated
        assert kernel_model._tree._score_kernels
        loaded = pickle.loads(pickle.dumps(kernel_model))
        assert loaded._tree._score_kernels == {}
        for h in (1, 3, 8, 20):
            got = loaded.predict(window, 401 + h, 3)
            want = scan_model.predict(window, 401 + h, 3)
            assert repr(got) == repr(want)
        assert loaded._tree._score_kernels


# ----------------------------------------------------------------------
# graceful demotion to the scan backend
# ----------------------------------------------------------------------
class TestKernelFallback:
    def test_unavailable_kernel_demotes_at_prepare(self, monkeypatch):
        model = build_model(num_subs=15)
        scan_model = clone_with_config(model, query_backend="scan")
        registry = MetricsRegistry()
        model.bind_metrics(registry)
        monkeypatch.setattr(
            TrajectoryPatternTree, "score_kernel", lambda self, kind: None
        )
        window = make_window(401)
        plan = model.prepare(window)
        assert plan._backend == "scan"
        assert plan.kernel_fallbacks == 1
        assert registry.counter("predict_kernel_fallback_total").value == 1
        for h in (2, 9, 20):
            assert repr(plan.predict(401 + h, 3)) == repr(
                scan_model.predict(window, 401 + h, 3)
            )

    def test_oversized_corpus_is_unavailable(self, monkeypatch):
        import repro.core.scorekernel as sk

        model = build_model(num_subs=15)
        monkeypatch.setattr(sk, "_MAX_CELLS", 0)
        tree = model._tree
        tree._score_kernels.clear()
        assert tree.score_kernel(model.config.weight_function) is None
        # The unavailability itself is cached: prepare falls back cleanly.
        plan = model.prepare(make_window(401))
        assert plan._backend == "scan"
        assert plan.kernel_fallbacks == 1

    def test_mid_query_error_demotes_and_answers(self, kernel_model, scan_model):
        registry = MetricsRegistry()
        window = make_window(401)
        for horizon in (2, 20):  # one FQP, one BQP
            plan = kernel_model.prepare(window)
            plan._metrics = registry
            assert plan._backend == "kernel"
            plan._qvec = None  # sabotage: every kernel scoring call raises
            got = plan.predict(401 + horizon, 3)
            assert plan._backend == "scan"
            assert plan.kernel_fallbacks == 1
            assert repr(got) == repr(scan_model.predict(window, 401 + horizon, 3))
        assert registry.counter("predict_kernel_fallback_total").value == 2


# ----------------------------------------------------------------------
# velocity partitioning (opt-in heuristic)
# ----------------------------------------------------------------------
class TestVelocityFilter:
    def test_off_by_default(self, kernel_model):
        assert kernel_model.config.velocity_filter is False
        plan = kernel_model.prepare(make_window(401))
        assert plan._velocity_cap is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HPMConfig(**CFG_KW, velocity_bands=1)
        with pytest.raises(ValueError):
            HPMConfig(**CFG_KW, velocity_slack=0.0)

    def test_huge_slack_matches_unfiltered(self, kernel_model):
        relaxed = clone_with_config(
            kernel_model, velocity_filter=True, velocity_slack=1e12
        )
        for tc in (401, 407):
            window = make_window(tc)
            for h in (1, 3, 9, 20):
                got = relaxed.predict(window, tc + h, 3)
                want = kernel_model.predict(window, tc + h, 3)
                assert repr(got) == repr(want)

    def test_tight_cap_only_admits_slow_patterns(self, kernel_model):
        strict = clone_with_config(
            kernel_model, velocity_filter=True, velocity_slack=1e-6
        )
        # A single-sample window has speed 0 — the slowest band.
        window = make_window(401, length=1)
        plan = strict.prepare(window)
        cap = plan._velocity_cap
        assert cap is not None
        for h in (2, 4, 9, 20):
            for p in plan.predict(401 + h, 3):
                if p.pattern is not None:
                    assert pattern_min_speed(p.pattern) <= cap

    def test_top_band_is_unbounded(self, kernel_model):
        kernel = kernel_model._tree.score_kernel(
            kernel_model.config.weight_function
        )
        assert kernel.velocity_cap(1e15, 2.0, 4) is None


# ----------------------------------------------------------------------
# cross-object / cross-query batching
# ----------------------------------------------------------------------
FLEET_PERIOD = 10


def make_fleet_history(route_y: float, seed: int) -> Trajectory:
    rng = np.random.default_rng(seed)
    base = np.column_stack(
        [80.0 * np.arange(FLEET_PERIOD), np.full(FLEET_PERIOD, route_y)]
    )
    return Trajectory(
        np.vstack([base + rng.normal(0, 0.8, base.shape) for _ in range(15)])
    )


@pytest.fixture(scope="module")
def fleet_world():
    histories = {f"obj{i}": make_fleet_history(400.0 * i, seed=i) for i in range(4)}
    recents = {
        f"obj{i}": [TimedPoint(200 + t, 80.0 * t, 400.0 * i) for t in range(3)]
        for i in range(4)
    }
    cfg = HPMConfig(
        period=FLEET_PERIOD, eps=5.0, min_pts=4, distant_threshold=4, recent_window=3
    )
    kernel_fleet = FleetPredictionModel(cfg).fit(histories)
    scan_fleet = FleetPredictionModel(
        cfg.with_overrides(query_backend="scan")
    ).fit(histories)
    return kernel_fleet, scan_fleet, recents


class TestCrossObjectBatching:
    def test_predict_all_matches_scan_and_per_object(self, fleet_world):
        kernel_fleet, scan_fleet, recents = fleet_world
        registry = MetricsRegistry()
        kernel_fleet.bind_metrics(registry)
        try:
            for query_time in (203, 205):
                batched = kernel_fleet.predict_all(recents, query_time)
                scan = scan_fleet.predict_all(recents, query_time)
                assert repr(batched) == repr(scan)
                per_object = {
                    oid: kernel_fleet.predict(oid, recents[oid], query_time, 1)[0]
                    for oid in recents
                }
                assert repr(batched) == repr(per_object)
            hist = registry.histogram(
                "predict_kernel_batch_size", buckets=KERNEL_BATCH_BUCKETS
            )
            assert hist.count >= 1
            assert hist.total >= len(recents)
        finally:
            kernel_fleet.bind_metrics(None)

    def test_prime_plan_queries_is_pure_memoisation(self, kernel_model):
        windows = [make_window(tc) for tc in (401, 407, 412)]
        primed_plans = [kernel_model.prepare(w) for w in windows]
        query_time = 414
        primed = prime_plan_queries((p, query_time) for p in primed_plans)
        for plan, window in zip(primed_plans, windows):
            if plan.current_time < query_time < plan.current_time + 6:
                assert plan.fqp_prime_offset(query_time) is None  # memo hit
            fresh = kernel_model.prepare(window)
            if query_time > fresh.current_time:
                assert repr(plan.predict(query_time, 3)) == repr(
                    fresh.predict(query_time, 3)
                )
        assert primed >= 1

    def test_prime_sweep_fills_fqp_offsets(self, kernel_model, scan_model):
        window = make_window(401)
        plan = kernel_model.prepare(window)
        primed = plan.prime_sweep(402, 440)
        # FQP horizon is (tc, tc + d): offsets 402..406 inclusive.
        assert primed == 5
        assert sorted(plan._fqp_scored) == sorted(t % PERIOD for t in range(402, 407))
        got = plan.predict_trajectory(402, 440)
        want = scan_model.predict_trajectory(window, 402, 440)
        assert repr(got) == repr(want)

    def test_prime_sweep_noop_on_scan_backend(self, scan_model):
        plan = scan_model.prepare(make_window(401))
        assert plan.prime_sweep(402, 440) == 0
        assert plan._fqp_scored == {}


# ----------------------------------------------------------------------
# locate-cache prewarm (cold-start satellite)
# ----------------------------------------------------------------------
def count_uncached_locates(model, window) -> int:
    regions = model._regions
    original = regions.locate_uncached
    calls = {"n": 0}

    def counting(point, offset):
        calls["n"] += 1
        return original(point, offset)

    regions.locate_uncached = counting
    try:
        model.prepare(window)
    finally:
        del regions.locate_uncached
    return calls["n"]


class TestLocatePrewarm:
    def history_tail_window(self, model, length=3):
        history = model._history
        positions = history.positions
        n = positions.shape[0]
        return [
            TimedPoint(
                history.start_time + i, float(positions[i, 0]), float(positions[i, 1])
            )
            for i in range(n - length, n)
        ]

    def test_prewarm_makes_tail_windows_cache_hits(self, kernel_model):
        window = self.history_tail_window(kernel_model)
        cold = pickle.loads(pickle.dumps(kernel_model))
        assert count_uncached_locates(cold, window) > 0

        warmed = pickle.loads(pickle.dumps(kernel_model))
        probes = warmed.prewarm_locate_cache(512)
        assert probes > 0
        assert count_uncached_locates(warmed, window) == 0

    def test_prewarm_limit_zero_probes_nothing(self, kernel_model):
        cold = pickle.loads(pickle.dumps(kernel_model))
        assert cold.prewarm_locate_cache(0) == 0
        assert len(cold._regions._locate_cache) == 0

    def test_from_snapshot_prewarms_every_object(self, fleet_world, tmp_path):
        from repro.core.persistence import save_fleet
        from repro.serve import PredictionService

        kernel_fleet, _scan_fleet, _recents = fleet_world
        snapshot = tmp_path / "snapshot"
        save_fleet(kernel_fleet, snapshot)

        service = PredictionService.from_snapshot(snapshot)
        for oid in service.fleet.object_ids():
            assert len(service.fleet[oid]._regions._locate_cache) > 0

        cold = PredictionService.from_snapshot(snapshot, prewarm_locate=0)
        for oid in cold.fleet.object_ids():
            assert len(cold.fleet[oid]._regions._locate_cache) == 0
