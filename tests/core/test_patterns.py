"""Tests for trajectory-pattern mining."""

import numpy as np
import pytest

from repro.core.patterns import (
    TrajectoryPattern,
    build_transactions,
    count_rules_unpruned,
    mine_trajectory_patterns,
)
from repro.core.regions import RegionSet, discover_frequent_regions
from repro.mining import find_frequent_itemsets, generate_rules
from repro.trajectory import Trajectory
from tests.core.conftest import make_region


def region_with_subs(offset, index, sub_ids, cx=0.0, cy=0.0):
    """A region visited by exactly the given sub-trajectories."""
    base = make_region(offset, index, cx, cy, n=len(sub_ids))
    object.__setattr__(base, "subtrajectory_ids", tuple(sub_ids))
    return base


def toy_region_set(period=4):
    """10 sub-trajectories: 0-5 take route A, 6-9 route B; both share t=0."""
    a = set(range(6))
    b = set(range(6, 10))
    regions = [
        region_with_subs(0, 0, a | b, 0, 0),  # shared start
        region_with_subs(1, 0, a, 10, 0),  # A
        region_with_subs(1, 1, b, 0, 10),  # B
        region_with_subs(2, 0, a, 20, 0),  # A
        region_with_subs(2, 1, b, 0, 20),  # B
        region_with_subs(3, 0, a | b, 30, 30),  # shared end
    ]
    return RegionSet(regions, period=period, eps=5.0)


class TestTrajectoryPattern:
    def test_validation_premise_order(self, jane_regions):
        with pytest.raises(ValueError, match="increasing"):
            TrajectoryPattern(
                (jane_regions["city"], jane_regions["home"]),
                jane_regions["work"],
                support=4,
                confidence=0.5,
            )

    def test_validation_consequence_after_premise(self, jane_regions):
        with pytest.raises(ValueError, match="exceed"):
            TrajectoryPattern(
                (jane_regions["city"],),
                jane_regions["home"],
                support=4,
                confidence=0.5,
            )

    def test_validation_duplicate_offsets(self, jane_regions):
        with pytest.raises(ValueError, match="increasing"):
            TrajectoryPattern(
                (jane_regions["city"], jane_regions["shopping"]),
                jane_regions["work"],
                support=4,
                confidence=0.5,
            )

    def test_validation_bounds(self, jane_regions):
        with pytest.raises(ValueError):
            TrajectoryPattern(
                (jane_regions["home"],), jane_regions["city"], support=0, confidence=0.5
            )
        with pytest.raises(ValueError):
            TrajectoryPattern(
                (jane_regions["home"],), jane_regions["city"], support=1, confidence=1.5
            )

    def test_accessors_and_str(self, jane_patterns):
        p2 = jane_patterns[2]
        assert p2.premise_offsets == (0, 1)
        assert p2.consequence_offset == 2
        assert str(p2) == "R_0^0 ∧ R_1^0 --0.50--> R_2^0"


class TestTransactions:
    def test_build_transactions(self):
        regions = toy_region_set()
        tx = build_transactions(regions, num_subtrajectories=10)
        assert len(tx) == 10
        assert tx[0][1].label == "R_1^0"
        assert tx[7][1].label == "R_1^1"
        assert set(tx[0]) == {0, 1, 2, 3}

    def test_out_of_range_sub_ids_ignored(self):
        regions = toy_region_set()
        tx = build_transactions(regions, num_subtrajectories=3)
        assert len(tx) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            build_transactions(toy_region_set(), 0)


class TestMining:
    def test_route_confidences(self):
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(
            regions, 10, min_support=2, min_confidence=0.0, max_premise_span=3
        )
        by_sig = {
            (tuple(r.label for r in p.premise), p.consequence.label): p
            for p in patterns
        }
        # Shared start -> route-A city: 6/10.
        assert by_sig[(("R_0^0",), "R_1^0")].confidence == pytest.approx(0.6)
        # Shared start -> route-B city: 4/10.
        assert by_sig[(("R_0^0",), "R_1^1")].confidence == pytest.approx(0.4)
        # Route-A city -> route-A work: 6/6.
        assert by_sig[(("R_1^0",), "R_2^0")].confidence == pytest.approx(1.0)
        # Pair premise: start ∧ A-city -> A-work.
        assert by_sig[(("R_0^0", "R_1^0"), "R_2^0")].confidence == pytest.approx(1.0)

    def test_cross_route_patterns_absent(self):
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(
            regions, 10, min_support=2, min_confidence=0.0
        )
        labels = {
            (tuple(r.label for r in p.premise), p.consequence.label)
            for p in patterns
        }
        # A-route city never leads to B-route work.
        assert (("R_1^0",), "R_2^1") not in labels

    def test_min_confidence_filters(self):
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(
            regions, 10, min_support=2, min_confidence=0.5
        )
        assert all(p.confidence >= 0.5 for p in patterns)
        labels = {
            (tuple(r.label for r in p.premise), p.consequence.label)
            for p in patterns
        }
        assert (("R_0^0",), "R_1^1") not in labels  # confidence 0.4

    def test_min_support_filters(self):
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(
            regions, 10, min_support=5, min_confidence=0.0
        )
        assert all(p.support >= 5 for p in patterns)
        assert all("R_1^1" != p.consequence.label for p in patterns)

    def test_premise_length_cap(self):
        regions = toy_region_set()
        singles_only = mine_trajectory_patterns(
            regions, 10, 2, 0.0, max_premise_length=1
        )
        assert all(len(p.premise) == 1 for p in singles_only)

    def test_premise_span_cap(self):
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(
            regions, 10, 2, 0.0, max_premise_length=2, max_premise_span=1
        )
        for p in patterns:
            if len(p.premise) == 2:
                assert p.premise[1].offset - p.premise[0].offset <= 1

    def test_consequence_gap_cap_with_far_stride(self):
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(
            regions,
            10,
            2,
            0.0,
            max_consequence_gap=1,
            far_premise_stride=2,
        )
        for p in patterns:
            gap = p.consequence_offset - p.premise[-1].offset
            if gap > 1:
                # Only far-eligible premises may exceed the cap.
                assert len(p.premise) == 1
                assert p.premise[0].offset % 2 == 0

    def test_stats(self):
        regions = toy_region_set()
        patterns, stats = mine_trajectory_patterns(
            regions, 10, 2, 0.0, return_stats=True
        )
        assert stats.num_patterns == len(patterns)
        assert stats.num_frequent_items == 6
        assert stats.num_transactions == 10

    def test_validation(self):
        regions = toy_region_set()
        with pytest.raises(ValueError):
            mine_trajectory_patterns(regions, 10, 0, 0.0)
        with pytest.raises(ValueError):
            mine_trajectory_patterns(regions, 10, 1, 1.5)
        with pytest.raises(ValueError):
            mine_trajectory_patterns(regions, 10, 1, 0.5, max_premise_length=0)
        with pytest.raises(ValueError):
            mine_trajectory_patterns(regions, 10, 1, 0.5, far_premise_stride=0)


class TestEquivalenceWithGenericApriori:
    """The vertical miner's supports/confidences must match the level-wise
    Apriori + pruned rule generation on the same transactions."""

    def test_cross_check(self):
        regions = toy_region_set()
        tx_dicts = build_transactions(regions, 10)
        transactions = [
            [(offset, region.label) for offset, region in t.items()]
            for t in tx_dicts
        ]
        itemsets = find_frequent_itemsets(transactions, min_support=2, max_length=3)
        rules = generate_rules(itemsets, 0.0, order_key=lambda item: item[0])
        # Keep rules matching the miner's structural constraints: every
        # premise offset distinct and < consequence offset (guaranteed by
        # order_key), premise length <= 2, span <= 2, no gap cap.
        expected = {}
        for r in rules:
            premise = tuple(sorted(r.premise))
            offsets = [o for o, _ in premise]
            if len(premise) > 2 or (offsets[-1] - offsets[0]) > 2:
                continue
            (consequence,) = r.consequence
            expected[(premise, consequence)] = (r.support, r.confidence)

        mined = mine_trajectory_patterns(
            regions, 10, min_support=2, min_confidence=0.0,
            max_premise_length=2, max_premise_span=2,
        )
        got = {
            (
                tuple((r.offset, r.label) for r in p.premise),
                (p.consequence_offset, p.consequence.label),
            ): (p.support, pytest.approx(p.confidence))
            for p in mined
        }
        assert set(got) == set(expected)
        for key, (support, confidence) in expected.items():
            assert got[key][0] == support
            assert got[key][1] == confidence


class TestPruningAblation:
    def test_unpruned_count_at_least_pruned(self):
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(regions, 10, 2, 0.3)
        unpruned = count_rules_unpruned(patterns, regions, 10, 0.3)
        assert unpruned >= len(patterns)

    def test_pair_itemsets_double_without_pruning(self):
        """At confidence 0 each 2-itemset yields 2 unpruned rules vs 1 pruned."""
        regions = toy_region_set()
        patterns = mine_trajectory_patterns(
            regions, 10, 2, 0.0, max_premise_length=1
        )
        unpruned = count_rules_unpruned(patterns, regions, 10, 0.0)
        assert unpruned == 2 * len(patterns)
