"""Incremental (delta) refit: byte-identity with fit-from-scratch.

The contract under test (DESIGN.md §11): for ANY split of a history into
``fit(prefix)`` followed by ``update(chunk_1) ... update(chunk_n)`` — in
delta mode, full mode, or across the drift/staleness fallback boundary —
the resulting model state and its predictions are byte-identical to one
``fit`` over the concatenated history.
"""

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.fingerprint import model_fingerprint, prediction_fingerprint
from repro.core.model import HybridPredictionModel
from repro.core.patterns import TrajectoryPattern
from repro.core.refit import StaleUpdateError, diff_pattern_corpus
from repro.trajectory import TimedPoint, Trajectory

PERIOD = 12


def make_config(**overrides) -> HPMConfig:
    params = dict(
        period=PERIOD, eps=5.0, min_pts=4, distant_threshold=5, recent_window=4
    )
    params.update(overrides)
    return HPMConfig(**params)


def make_route(num_blocks: int, seed: int = 0, displaced: int = 0) -> np.ndarray:
    """``num_blocks`` noisy periods along a line; the last ``displaced``
    blocks run a brand-new route (forces new frequent regions)."""
    rng = np.random.default_rng(seed)
    base = np.column_stack([70.0 * np.arange(PERIOD), 20.0 * np.arange(PERIOD)])
    blocks = []
    for b in range(num_blocks):
        block = base + rng.normal(0, 0.6, base.shape)
        if b >= num_blocks - displaced:
            block = block + 4000.0
        blocks.append(block)
    return np.vstack(blocks)


def queries(positions: np.ndarray, config: HPMConfig):
    n = positions.shape[0]
    window = config.recent_window
    out = []
    for start in (0, n // 3, n // 2):
        recent = [
            TimedPoint(n + t, float(positions[start + t, 0]), float(positions[start + t, 1]))
            for t in range(window)
        ]
        t_now = recent[-1].t
        out.append((recent, t_now + 2))
        out.append((recent, t_now + config.distant_threshold + 3))
    return out


def scratch(positions: np.ndarray, config: HPMConfig) -> HybridPredictionModel:
    return HybridPredictionModel(config).fit(Trajectory(positions.copy(), 0))


class TestSplitIdentity:
    """(fit, update*) == fit(concat), for any split."""

    @pytest.mark.parametrize(
        "chunks",
        [
            [144],  # one big update
            [5, 17, 7, 40, 23, 52],  # ragged, period-misaligned
            [1] * 10 + [134],  # pathological single-fix updates
        ],
    )
    def test_delta_updates_match_scratch(self, chunks):
        config = make_config()
        positions = make_route(26, seed=1)
        seed_rows = 14 * PERIOD
        assert sum(chunks) == positions.shape[0] - seed_rows
        model = scratch(positions[:seed_rows], config)
        at = seed_rows
        for chunk in chunks:
            model.update(positions[at : at + chunk], refit="delta")
            at += chunk
        oracle = scratch(positions, config)
        assert model_fingerprint(model) == model_fingerprint(oracle)
        q = queries(positions, config)
        assert prediction_fingerprint(model, q) == prediction_fingerprint(oracle, q)

    def test_full_updates_match_scratch(self):
        config = make_config()
        positions = make_route(20, seed=2)
        seed_rows = 16 * PERIOD
        model = scratch(positions[:seed_rows], config)
        model.update(positions[seed_rows : seed_rows + 30], refit="full")
        model.update(positions[seed_rows + 30 :], refit="full")
        oracle = scratch(positions, config)
        assert model_fingerprint(model) == model_fingerprint(oracle)

    def test_identity_across_rebuild_fallback(self):
        """A chunk introducing brand-new frequent regions forces the
        rebuild fallback mid-sequence; identity must hold across it."""
        config = make_config()
        positions = make_route(26, seed=3, displaced=5)
        seed_rows = 18 * PERIOD
        model = scratch(positions[:seed_rows], config)
        indices = []
        for at in range(seed_rows, positions.shape[0], 36):
            model.update(positions[at : at + 36], refit="delta")
            indices.append(model.last_refit_stats_.index)
        assert "rebuilt" in indices  # the displaced route drifted the keys
        oracle = scratch(positions, config)
        assert model_fingerprint(model) == model_fingerprint(oracle)
        q = queries(positions, config)
        assert prediction_fingerprint(model, q) == prediction_fingerprint(oracle, q)

    def test_mixed_modes_match_scratch(self):
        config = make_config()
        positions = make_route(24, seed=4)
        seed_rows = 15 * PERIOD
        model = scratch(positions[:seed_rows], config)
        modes = ["delta", "full", "delta", "delta"]
        chunk = (positions.shape[0] - seed_rows) // len(modes)
        at = seed_rows
        for mode in modes:
            hi = min(at + chunk, positions.shape[0])
            model.update(positions[at:hi], refit=mode)
            at = hi
        assert model_fingerprint(model) == model_fingerprint(scratch(positions, config))


class TestChurnFreeUpdate:
    """New rows that qualify nothing (DBSCAN noise) must not touch the TPT."""

    def test_noise_only_update_keeps_tree_untouched(self):
        config = make_config()
        positions = make_route(20, seed=5)
        model = scratch(positions, config)
        tree_before = model.tree_
        patterns_before = list(model.patterns_)
        entries_before = [
            (e.signature, id(e.payload)) for e in tree_before.all_entries()
        ]
        # One scattered block far off-route: every point is noise at its
        # offset (one visit < min_pts), so no region gains or loses members.
        rng = np.random.default_rng(6)
        noise = rng.uniform(90000, 95000, (PERIOD, 2))
        model.update(noise, refit="delta")

        stats = model.last_refit_stats_
        assert stats.mode == "delta"
        assert stats.index == "kept"
        assert stats.changed_regions == 0
        assert (stats.patterns_added, stats.patterns_removed, stats.patterns_replaced) == (0, 0, 0)
        assert stats.patterns_kept == len(patterns_before)
        assert model.tree_ is tree_before
        assert all(a is b for a, b in zip(model.patterns_, patterns_before))
        assert [
            (e.signature, id(e.payload)) for e in tree_before.all_entries()
        ] == entries_before
        # ... and the untouched state is still exactly what a scratch fit
        # over history + noise would produce.
        oracle = scratch(np.vstack([positions, noise]), config)
        assert model_fingerprint(model) == model_fingerprint(oracle)


class TestStalenessBudget:
    def test_refit_full_every_forces_full(self):
        config = make_config(refit_full_every=2)
        positions = make_route(24, seed=7)
        seed_rows = 18 * PERIOD
        model = scratch(positions[:seed_rows], config)
        seen = []
        for at in range(seed_rows, positions.shape[0], 18):
            model.update(positions[at : at + 18])
            stats = model.last_refit_stats_
            seen.append((stats.mode, stats.fallback))
        # Budget of 2: two deltas, then a forced full, then the counter
        # restarts.
        assert seen[:3] == [
            ("delta", None),
            ("delta", None),
            ("full", "staleness"),
        ]
        assert seen[3] == ("delta", None)

    def test_explicit_full_resets_budget(self):
        config = make_config(refit_full_every=2)
        positions = make_route(22, seed=8)
        seed_rows = 18 * PERIOD
        model = scratch(positions[:seed_rows], config)
        model.update(positions[seed_rows : seed_rows + 12])
        model.update(positions[seed_rows + 12 : seed_rows + 24], refit="full")
        model.update(positions[seed_rows + 24 : seed_rows + 36])
        assert model.last_refit_stats_.mode == "delta"
        assert model.last_refit_stats_.fallback is None


class TestCorpusDeltaOps:
    def test_miner_ops_agree_with_diff(self):
        """The delta miner's op lists must equal an explicit corpus diff."""
        config = make_config()
        positions = make_route(22, seed=9)
        seed_rows = 18 * PERIOD
        model = scratch(positions[:seed_rows], config)
        old_patterns = list(model.patterns_)
        staged = model.prepare_update(positions[seed_rows : seed_rows + 30])
        assert staged.index_plan == "patch"
        inserts, removes, added, replaced, kept = diff_pattern_corpus(
            old_patterns, list(staged.patterns)
        )
        assert staged.refit.patterns_added == added
        assert staged.refit.patterns_replaced == replaced
        assert staged.refit.patterns_removed == len(removes) - replaced
        assert staged.refit.patterns_kept == kept
        assert {id(p) for p in staged.insert_ops} | {
            id(new) for _, new in staged.rebind_ops
        } == {id(p) for p in inserts}
        assert {id(p) for p in staged.remove_ops} | {
            id(old) for old, _ in staged.rebind_ops
        } == {id(p) for p in removes}

    def test_rebind_swaps_payload_without_surgery(self):
        config = make_config()
        model = scratch(make_route(20, seed=10), config)
        tree = model.tree_
        size_before = len(tree)
        victim = model.patterns_[0]
        fresh = TrajectoryPattern._unchecked(
            victim.premise, victim.consequence, victim.support, victim.confidence
        )
        assert tree.rebind_patterns([(victim, fresh)]) == 1
        assert len(tree) == size_before
        tree.validate()
        indexed = {id(p) for p in tree.all_patterns()}
        assert id(fresh) in indexed and id(victim) not in indexed

    def test_rebind_empty_is_noop(self):
        model = scratch(make_route(20, seed=10), make_config())
        assert model.tree_.rebind_patterns([]) == 0


class TestStagedUpdateLifecycle:
    def test_commit_after_concurrent_update_raises(self):
        config = make_config()
        positions = make_route(22, seed=11)
        seed_rows = 18 * PERIOD
        model = scratch(positions[:seed_rows], config)
        staged = model.prepare_update(positions[seed_rows : seed_rows + 12])
        model.update(positions[seed_rows : seed_rows + 12])
        with pytest.raises(StaleUpdateError):
            model.commit_update(staged)

    def test_commit_twice_raises(self):
        config = make_config()
        positions = make_route(22, seed=12)
        seed_rows = 18 * PERIOD
        model = scratch(positions[:seed_rows], config)
        staged = model.prepare_update(positions[seed_rows : seed_rows + 12])
        model.commit_update(staged)
        with pytest.raises(StaleUpdateError):
            model.commit_update(staged)

    def test_update_validation(self):
        model = scratch(make_route(20, seed=13), make_config())
        with pytest.raises(ValueError, match="shape"):
            model.update(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="empty"):
            model.update(np.zeros((0, 2)))
        with pytest.raises(ValueError, match="refit"):
            model.update(np.zeros((3, 2)), refit="bogus")
