"""Fit-path identity and instrumentation tests (the PR 5 overhaul).

The vectorized training pipeline — batched offset grouping and region
assembly, bulk pattern-key encoding, unchecked pattern construction —
claims *byte-identical* fitted state versus the per-group/per-pattern
reference algorithms.  These tests pin each claim against an inline
reference implementation, and cover the new fit-phase timing surface
(``fit_phase_seconds_``, the ``fit_phase_seconds_{phase}`` histograms and
the fleet aggregate).
"""

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.core.config import HPMConfig
from repro.core.fleet import FleetPredictionModel
from repro.core.keys import KeyCodec
from repro.core.model import HybridPredictionModel
from repro.core.patterns import (
    TrajectoryPattern,
    mine_trajectory_patterns,
    region_visit_masks,
)
from repro.core.regions import (
    FrequentRegion,
    RegionSet,
    discover_frequent_regions,
)
from repro.datagen import make_dataset
from repro.serve.metrics import MetricsRegistry
from repro.trajectory.point import BoundingBox, Point
from repro.trajectory.trajectory import Trajectory


# ----------------------------------------------------------------------
# reference implementations (the pre-overhaul algorithms, verbatim)
# ----------------------------------------------------------------------
def reference_discover(trajectory, period, eps, min_pts) -> RegionSet:
    regions = []
    for group in trajectory.offset_groups(period):
        if len(group) == 0:
            continue
        result = dbscan(group.positions, eps=eps, min_pts=min_pts)
        for j in range(result.num_clusters):
            member_idx = result.members(j)
            points = group.positions[member_idx]
            centroid = points.mean(axis=0)
            regions.append(
                FrequentRegion(
                    offset=group.offset,
                    index=j,
                    center=Point(float(centroid[0]), float(centroid[1])),
                    points=points,
                    bbox=BoundingBox.from_points(
                        [(float(x), float(y)) for x, y in points]
                    ),
                    subtrajectory_ids=tuple(
                        int(s) for s in group.subtrajectory_ids[member_idx]
                    ),
                )
            )
    return RegionSet(regions, period=period, eps=eps)


def reference_masks(regions, num_subtrajectories):
    masks = {}
    for region in regions:
        mask = 0
        for sub_id in set(region.subtrajectory_ids):
            if 0 <= sub_id < num_subtrajectories:
                mask |= 1 << sub_id
        masks[region] = mask
    return masks


def region_state(region: FrequentRegion) -> tuple:
    """Every byte of a region's fitted state, hex-exact."""
    return (
        region.offset,
        region.index,
        region.center.x.hex(),
        region.center.y.hex(),
        region.points.tobytes(),
        region.points.dtype.str,
        region.points.shape,
        region.bbox.min_x.hex(),
        region.bbox.min_y.hex(),
        region.bbox.max_x.hex(),
        region.bbox.max_y.hex(),
        region.subtrajectory_ids,
        tuple(type(s).__name__ for s in region.subtrajectory_ids),
    )


class TestDiscoverRegionsIdentity:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_byte_for_byte(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(40, 400))
        period = int(rng.integers(2, 12))
        traj = Trajectory(rng.uniform(0, 50, size=(n, 2)))
        eps = float(rng.uniform(1.5, 8.0))
        min_pts = int(rng.integers(1, 5))
        got = discover_frequent_regions(traj, period, eps, min_pts)
        expected = reference_discover(traj, period, eps, min_pts)
        assert [region_state(r) for r in got] == [
            region_state(r) for r in expected
        ]

    def test_matches_reference_on_dataset(self):
        dataset = make_dataset("bike", 8, 48, seed=1)
        got = discover_frequent_regions(dataset.trajectory, 48, 30.0, 4)
        expected = reference_discover(dataset.trajectory, 48, 30.0, 4)
        assert [region_state(r) for r in got] == [
            region_state(r) for r in expected
        ]

    def test_period_validation(self):
        traj = Trajectory(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="period must be positive"):
            discover_frequent_regions(traj, 0, 1.0, 1)

    def test_empty_trajectory(self):
        got = discover_frequent_regions(Trajectory(np.empty((0, 2))), 4, 1.0, 1)
        assert len(got) == 0


class TestRegionVisitMasks:
    def test_matches_reference(self):
        dataset = make_dataset("bike", 6, 24, seed=2)
        regions = discover_frequent_regions(dataset.trajectory, 24, 30.0, 3)
        for num_subs in (1, 3, 6, 10):
            assert region_visit_masks(regions, num_subs) == reference_masks(
                regions, num_subs
            )

    def test_large_subtrajectory_ids_stay_exact(self):
        # Beyond 63 sub-trajectories the masks outgrow int64; Python ints
        # must keep every bit.
        region = FrequentRegion(
            offset=0,
            index=0,
            center=Point(0.0, 0.0),
            points=np.zeros((3, 2)),
            bbox=BoundingBox(0.0, 0.0, 1.0, 1.0),
            subtrajectory_ids=(0, 64, 100),
        )
        regions = RegionSet([region], period=4, eps=1.0)
        masks = region_visit_masks(regions, 101)
        assert masks[region] == (1 << 0) | (1 << 64) | (1 << 100)


class TestBulkKeyEncoding:
    def _mined(self):
        dataset = make_dataset("bike", 8, 36, seed=3)
        regions = discover_frequent_regions(dataset.trajectory, 36, 40.0, 3)
        patterns = mine_trajectory_patterns(
            regions, num_subtrajectories=8, min_support=2, min_confidence=0.2
        )
        assert patterns, "fixture must mine at least one pattern"
        return regions, patterns

    def test_encode_values_matches_encode_pattern(self):
        regions, patterns = self._mined()
        codec = KeyCodec.from_patterns(regions, patterns)
        values = codec.encode_values(patterns)
        assert values == [codec.encode_pattern(p).value for p in patterns]

    def test_encode_values_unknown_offset_raises_like_encode_pattern(self):
        regions, patterns = self._mined()
        # A codec that only knows the first pattern's consequence offset;
        # some other pattern must then fail in both code paths alike.
        narrow = KeyCodec(regions, [patterns[0].consequence_offset])
        stranger = next(
            p
            for p in patterns
            if p.consequence_offset != patterns[0].consequence_offset
        )
        with pytest.raises(ValueError, match="consequence-key table"):
            narrow.encode_pattern(stranger)
        with pytest.raises(ValueError, match="consequence-key table"):
            narrow.encode_values([stranger])


class TestUncheckedPatternConstruction:
    def test_identical_to_validated(self, sample_region_pair=None):
        dataset = make_dataset("bike", 8, 36, seed=4)
        regions = discover_frequent_regions(dataset.trajectory, 36, 40.0, 3)
        patterns = mine_trajectory_patterns(
            regions, num_subtrajectories=8, min_support=2, min_confidence=0.2
        )
        for p in patterns:
            validated = TrajectoryPattern(
                premise=p.premise,
                consequence=p.consequence,
                support=p.support,
                confidence=p.confidence,
            )
            assert validated == p
            assert hash(validated) == hash(p)
            assert validated.premise_offsets == p.premise_offsets

    def test_mined_patterns_still_satisfy_invariants(self):
        # The miner skips __post_init__; re-validating must never raise.
        dataset = make_dataset("bike", 10, 48, seed=5)
        model = HybridPredictionModel(
            HPMConfig(period=48, eps=40.0, min_pts=3, min_confidence=0.2, distant_threshold=10)
        ).fit(dataset.trajectory)
        for p in model.patterns_:
            TrajectoryPattern(
                premise=p.premise,
                consequence=p.consequence,
                support=p.support,
                confidence=p.confidence,
            )


class TestFitPhaseTiming:
    def _fit_model(self, registry=None):
        dataset = make_dataset("bike", 8, 36, seed=6)
        model = HybridPredictionModel(
            HPMConfig(period=36, eps=40.0, min_pts=3, min_confidence=0.2, distant_threshold=10)
        )
        if registry is not None:
            model.bind_metrics(registry)
        return model.fit(dataset.trajectory)

    def test_phases_recorded_on_fit(self):
        model = self._fit_model()
        phases = model.fit_phase_seconds_
        assert set(phases) == {"cluster", "mine", "index"}
        assert all(v >= 0.0 for v in phases.values())

    def test_unfitted_model_has_no_phases(self):
        assert HybridPredictionModel(HPMConfig(period=8, distant_threshold=4)).fit_phase_seconds_ == {}

    def test_histograms_observed_when_registry_bound(self):
        registry = MetricsRegistry()
        self._fit_model(registry)
        for phase in ("cluster", "mine", "index"):
            hist = registry.histogram(f"fit_phase_seconds_{phase}")
            assert hist.count == 1

    def test_no_registry_no_error(self):
        model = self._fit_model()
        # Detached observe is a no-op, explicit registry records.
        model._observe_fit_phases()
        registry = MetricsRegistry()
        model._observe_fit_phases(registry)
        assert registry.histogram("fit_phase_seconds_cluster").count == 1

    def test_update_refreshes_phases(self):
        model = self._fit_model()
        first = model.fit_phase_seconds_
        model.update(model.history_.positions[: model.config.period])
        second = model.fit_phase_seconds_
        assert set(second) >= {"cluster", "mine"}
        assert second is not first  # a fresh timing dict per refit

    def test_fleet_fit_phase_totals(self):
        dataset = make_dataset("bike", 8, 36, seed=7)
        fleet = FleetPredictionModel(
            HPMConfig(period=36, eps=40.0, min_pts=3, min_confidence=0.2, distant_threshold=10)
        )
        registry = MetricsRegistry()
        fleet.bind_metrics(registry)
        fleet.fit(
            {"a": dataset.trajectory, "b": dataset.trajectory},
            executor="serial",
        )
        totals = fleet.fit_phase_totals()
        assert set(totals) == {"cluster", "mine", "index"}
        expected_cluster = sum(
            fleet[oid].fit_phase_seconds_["cluster"] for oid in ("a", "b")
        )
        assert totals["cluster"] == pytest.approx(expected_cluster)
        # One histogram sample per phase per fitted object.
        assert registry.histogram("fit_phase_seconds_cluster").count == 2
