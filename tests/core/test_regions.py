"""Tests for frequent-region discovery and the RegionSet."""

import numpy as np
import pytest

from repro.core.regions import RegionSet, discover_frequent_regions
from repro.trajectory import Point, Trajectory
from tests.core.conftest import make_region


def periodic_trajectory(num_subs=20, period=6, sigma=0.5, seed=0, f=1.0):
    """Object visits (100*t, 0) at offset t every period, with jitter."""
    rng = np.random.default_rng(seed)
    blocks = []
    for _ in range(num_subs):
        base = np.column_stack(
            [100.0 * np.arange(period), np.zeros(period)]
        )
        if rng.random() < f:
            blocks.append(base + rng.normal(0, sigma, base.shape))
        else:
            blocks.append(rng.uniform(0, 500, base.shape))
    return Trajectory(np.vstack(blocks))


class TestDiscovery:
    def test_one_region_per_offset(self):
        traj = periodic_trajectory()
        regions = discover_frequent_regions(traj, period=6, eps=5.0, min_pts=4)
        assert len(regions) == 6
        for t in range(6):
            (region,) = regions.at_offset(t)
            assert region.center.distance_to(Point(100.0 * t, 0.0)) < 2.0
            assert region.support == 20

    def test_min_pts_too_high_gives_no_regions(self):
        traj = periodic_trajectory(num_subs=3)
        regions = discover_frequent_regions(traj, period=6, eps=5.0, min_pts=4)
        assert len(regions) == 0

    def test_two_regions_at_same_offset(self):
        """Alternating visits to two places yields R_t^0 and R_t^1."""
        rng = np.random.default_rng(1)
        blocks = []
        for k in range(20):
            target = [0.0, 0.0] if k % 2 == 0 else [500.0, 500.0]
            blocks.append(rng.normal(target, 0.5, (1, 2)))
        traj = Trajectory(np.vstack(blocks))
        regions = discover_frequent_regions(traj, period=1, eps=5.0, min_pts=4)
        assert len(regions) == 2
        assert [r.index for r in regions] == [0, 1]
        assert {r.offset for r in regions} == {0}

    def test_region_membership_ids(self):
        traj = periodic_trajectory(num_subs=10)
        regions = discover_frequent_regions(traj, period=6, eps=5.0, min_pts=4)
        for region in regions:
            assert set(region.subtrajectory_ids) == set(range(10))

    def test_noise_days_excluded(self):
        traj = periodic_trajectory(num_subs=30, f=0.8, seed=3)
        regions = discover_frequent_regions(traj, period=6, eps=5.0, min_pts=4)
        for region in regions:
            # Pattern days only: support below the full 30.
            assert region.support <= 30
            assert region.support >= 4


class TestRegionSet:
    def test_canonical_order_and_ids(self, jane_region_set):
        labels = [r.label for r in jane_region_set]
        assert labels == ["R_0^0", "R_1^0", "R_1^1", "R_2^0", "R_2^1"]
        for i, region in enumerate(jane_region_set):
            assert jane_region_set.region_id(region) == i
            assert jane_region_set[i] == region

    def test_region_id_unknown(self, jane_region_set):
        foreign = make_region(0, 9, 1.0, 1.0)
        with pytest.raises(KeyError):
            jane_region_set.region_id(foreign)

    def test_at_offset(self, jane_region_set):
        assert len(jane_region_set.at_offset(1)) == 2
        assert jane_region_set.at_offset(0)[0].label == "R_0^0"
        with pytest.raises(ValueError):
            jane_region_set.at_offset(3)

    def test_offsets(self, jane_region_set):
        assert jane_region_set.offsets() == [0, 1, 2]

    def test_locate_inside(self, jane_region_set, jane_regions):
        # Within eps (5.0) of a member point of Home.
        found = jane_region_set.locate(Point(2.0, 2.0), offset=0)
        assert found == jane_regions["home"]

    def test_locate_outside(self, jane_region_set):
        assert jane_region_set.locate(Point(50.0, 50.0), offset=0) is None

    def test_locate_picks_closest_of_two(self, jane_region_set, jane_regions):
        # Offset 1 has City (100, 0) and Shopping (0, 100).
        near_city = jane_region_set.locate(Point(99.0, 0.0), offset=1)
        assert near_city == jane_regions["city"]
        near_shopping = jane_region_set.locate(Point(0.0, 99.0), offset=1)
        assert near_shopping == jane_regions["shopping"]

    def test_locate_accepts_tuples(self, jane_region_set, jane_regions):
        assert jane_region_set.locate((2.0, 2.0), 0) == jane_regions["home"]

    def test_duplicate_region_identity_rejected(self, jane_regions):
        dup = [jane_regions["home"], make_region(0, 0, 9.0, 9.0)]
        with pytest.raises(ValueError, match="duplicate"):
            RegionSet(dup, period=3, eps=5.0)

    def test_offset_outside_period_rejected(self, jane_regions):
        with pytest.raises(ValueError):
            RegionSet([jane_regions["work"]], period=2, eps=5.0)

    def test_region_equality_by_identity(self, jane_regions):
        same_slot = make_region(0, 0, 999.0, 999.0)
        assert same_slot == jane_regions["home"]  # (offset, index) identity
        assert hash(same_slot) == hash(jane_regions["home"])
