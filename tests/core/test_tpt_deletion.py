"""Tests for TPT pattern removal and expiry."""

import pytest

from repro.core.tpt import TrajectoryPatternTree


@pytest.fixture
def loaded_tree(jane_codec, jane_patterns):
    tree = TrajectoryPatternTree(jane_codec, max_entries=4)
    tree.bulk_load_patterns(jane_patterns)
    return tree


class TestRemovePattern:
    def test_remove_existing(self, loaded_tree, jane_patterns):
        target = jane_patterns[2]
        assert loaded_tree.remove_pattern(target)
        assert len(loaded_tree) == 3
        assert str(target) not in {str(p) for p in loaded_tree.all_patterns()}
        loaded_tree.validate()

    def test_remove_twice_fails_second_time(self, loaded_tree, jane_patterns):
        assert loaded_tree.remove_pattern(jane_patterns[0])
        assert not loaded_tree.remove_pattern(jane_patterns[0])

    def test_shared_key_removes_only_matching_pattern(
        self, loaded_tree, jane_patterns, jane_codec
    ):
        """P0 and P1 share pattern key 0100001; removing P0 keeps P1."""
        p0, p1 = jane_patterns[0], jane_patterns[1]
        assert jane_codec.encode_pattern(p0) == jane_codec.encode_pattern(p1)
        assert loaded_tree.remove_pattern(p0)
        remaining = {str(p) for p in loaded_tree.all_patterns()}
        assert str(p1) in remaining
        assert str(p0) not in remaining

    def test_search_consistent_after_removal(
        self, loaded_tree, jane_patterns, jane_codec, jane_regions
    ):
        loaded_tree.remove_pattern(jane_patterns[2])  # home∧city -> work
        query = jane_codec.encode_query(
            [jane_regions["home"], jane_regions["city"]], query_offset=2
        )
        hits = loaded_tree.search_candidates(query)
        assert sorted(p.consequence.label for p, _ in hits) == ["R_2^1"]


class TestExpiry:
    def test_expire_by_confidence(self, loaded_tree):
        removed = loaded_tree.expire_patterns(lambda p: p.confidence < 0.5)
        assert removed == 1  # only P3 (0.4)
        assert all(p.confidence >= 0.5 for p in loaded_tree.all_patterns())
        loaded_tree.validate()

    def test_expire_none(self, loaded_tree):
        assert loaded_tree.expire_patterns(lambda p: False) == 0
        assert len(loaded_tree) == 4

    def test_expire_all(self, loaded_tree):
        assert loaded_tree.expire_patterns(lambda p: True) == 4
        assert len(loaded_tree) == 0
        loaded_tree.validate()
