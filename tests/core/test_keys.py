"""Tests for pattern-key encoding — including the paper's Tables I–III."""

import pytest

from repro.core.keys import KeyCodec, PatternKey


class TestPaperTables:
    """Reproduce Tables I, II and III verbatim from the Fig. 3 scenario."""

    def test_table_1_region_keys(self, jane_codec):
        rows = jane_codec.region_key_table()
        # Table I: R00->00001, R10->00010, R11->00100, R20->01000, R21->10000.
        assert rows == [
            ("R_0^0", 0, "00001"),
            ("R_1^0", 1, "00010"),
            ("R_1^1", 2, "00100"),
            ("R_2^0", 3, "01000"),
            ("R_2^1", 4, "10000"),
        ]

    def test_table_2_consequence_keys(self, jane_codec):
        rows = jane_codec.consequence_key_table()
        # Table II: offset 1 -> id 0 -> 01; offset 2 -> id 1 -> 10.
        assert rows == [(1, 0, "01"), (2, 1, "10")]

    def test_table_3_pattern_keys(self, jane_codec, jane_patterns):
        keys = [jane_codec.encode_pattern(p).to_bit_string() for p in jane_patterns]
        # Table III: P0 and P1 share 0100001; P2 is 1000011; P3 is 1000101.
        assert keys == ["0100001", "0100001", "1000011", "1000101"]

    def test_section_vi_query_key_example(self, jane_codec, jane_regions):
        """Section VI-B: recent movements R00, R10 with tq = 2 -> 1000011."""
        key = jane_codec.encode_query(
            [jane_regions["home"], jane_regions["city"]], query_offset=2
        )
        assert key.to_bit_string() == "1000011"


class TestPatternKey:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PatternKey(value=1, premise_length=0, consequence_length=1)
        with pytest.raises(ValueError):
            PatternKey(value=-1, premise_length=2, consequence_length=1)
        with pytest.raises(ValueError):
            PatternKey(value=0b1000, premise_length=2, consequence_length=1)

    def test_part_extraction(self):
        key = PatternKey(value=0b10_011, premise_length=3, consequence_length=2)
        assert key.premise_key == 0b011
        assert key.consequence_key == 0b10
        assert key.width == 5

    def test_intersects_requires_both_parts(self):
        a = PatternKey(0b10_011, 3, 2)
        same_ck_no_rk = PatternKey(0b10_100, 3, 2)
        same_rk_no_ck = PatternKey(0b01_001, 3, 2)
        both = PatternKey(0b10_001, 3, 2)
        assert not a.intersects(same_ck_no_rk)
        assert not a.intersects(same_rk_no_ck)
        assert a.intersects(both)

    def test_incompatible_codecs_rejected(self):
        a = PatternKey(0b1, 1, 1)
        b = PatternKey(0b1, 2, 1)
        with pytest.raises(ValueError):
            a.intersects(b)

    def test_contains_and_difference(self):
        a = PatternKey(0b11_111, 3, 2)
        b = PatternKey(0b10_101, 3, 2)
        assert a.contains(b)
        assert not b.contains(a)
        assert a.difference(b) == 2
        assert b.difference(a) == 0

    def test_size(self):
        assert PatternKey(0b10_101, 3, 2).size() == 3


class TestKeyCodec:
    def test_from_patterns_collects_offsets(self, jane_codec):
        assert jane_codec.consequence_offsets() == [1, 2]
        assert jane_codec.premise_length == 5
        assert jane_codec.consequence_length == 2
        assert jane_codec.pattern_key_length == 7

    def test_region_key_is_hash_of_id(self, jane_codec, jane_region_set):
        for region in jane_region_set:
            assert jane_codec.region_key(region) == 1 << jane_region_set.region_id(region)

    def test_unknown_offset_consequence_key(self, jane_codec):
        assert jane_codec.consequence_key(0) is None
        assert jane_codec.consequence_key(1) == 0b01

    def test_consequence_mask_skips_unknown(self, jane_codec):
        assert jane_codec.consequence_mask([0, 1, 2]) == 0b11
        assert jane_codec.consequence_mask([0]) == 0

    def test_encode_query_unknown_offset_gives_empty_ck(self, jane_codec, jane_regions):
        key = jane_codec.encode_query([jane_regions["home"]], query_offset=0)
        assert key.consequence_key == 0
        assert key.premise_key == 0b00001

    def test_encode_query_wraps_offset_by_period(self, jane_codec, jane_regions):
        # Period is 3; query offset 4 == offset 1.
        key = jane_codec.encode_query([jane_regions["home"]], query_offset=4)
        assert key.consequence_key == 0b01

    def test_encode_pattern_unknown_offset_rejected(
        self, jane_region_set, jane_patterns
    ):
        codec = KeyCodec(jane_region_set, consequence_offsets=[1])
        with pytest.raises(ValueError, match="rebuild"):
            codec.encode_pattern(jane_patterns[2])  # consequence offset 2

    def test_covers(self, jane_codec, jane_patterns, jane_region_set):
        assert all(jane_codec.covers(p) for p in jane_patterns)
        partial = KeyCodec(jane_region_set, consequence_offsets=[1])
        assert partial.covers(jane_patterns[0])
        assert not partial.covers(jane_patterns[2])

    def test_covers_foreign_region(self, jane_codec, jane_patterns):
        from tests.core.conftest import make_region
        from repro.core.patterns import TrajectoryPattern

        foreign = make_region(0, 7, 50.0, 50.0)
        pattern = TrajectoryPattern(
            (foreign,), make_region(1, 8, 60.0, 60.0), support=4, confidence=0.5
        )
        assert not jane_codec.covers(pattern)

    def test_wrap_round_trip(self, jane_codec, jane_patterns):
        key = jane_codec.encode_pattern(jane_patterns[2])
        assert jane_codec.wrap(key.value) == key

    def test_empty_region_set_rejected(self):
        from repro.core.regions import RegionSet

        with pytest.raises(ValueError):
            KeyCodec(RegionSet([], period=3, eps=1.0), [1])

    def test_offset_out_of_period_rejected(self, jane_region_set):
        with pytest.raises(ValueError):
            KeyCodec(jane_region_set, consequence_offsets=[3])
