"""Tests for the Trajectory Pattern Tree."""

import numpy as np
import pytest

from repro.core.keys import KeyCodec
from repro.core.tpt import TrajectoryPatternTree
from repro.evalx import synthesize_patterns, synthesize_regions


@pytest.fixture
def jane_tree(jane_codec, jane_patterns):
    tree = TrajectoryPatternTree(jane_codec, max_entries=4)
    for p in jane_patterns:
        tree.insert_pattern(p)
    return tree


class TestPaperSearchExample:
    def test_fig4_query_retrieves_two_candidates(
        self, jane_tree, jane_codec, jane_regions
    ):
        """Section VI-B: query 1000011 matches patterns P2 and P3."""
        query = jane_codec.encode_query(
            [jane_regions["home"], jane_regions["city"]], query_offset=2
        )
        hits = jane_tree.search_candidates(query)
        consequences = sorted(p.consequence.label for p, _ in hits)
        assert consequences == ["R_2^0", "R_2^1"]

    def test_query_at_offset_1_matches_p0_p1(
        self, jane_tree, jane_codec, jane_regions
    ):
        query = jane_codec.encode_query([jane_regions["home"]], query_offset=1)
        hits = jane_tree.search_candidates(query)
        consequences = sorted(p.consequence.label for p, _ in hits)
        assert consequences == ["R_1^0", "R_1^1"]

    def test_no_premise_overlap_no_candidates(
        self, jane_tree, jane_codec, jane_regions
    ):
        # Recent movement only in the City; P2's premise includes City, so
        # it matches; but a premise of only Beach-area regions matches none
        # whose premise intersects.  Use a region absent from any premise:
        query = jane_codec.encode_query([jane_regions["work"]], query_offset=2)
        assert jane_tree.search_candidates(query) == []

    def test_unknown_query_offset_no_candidates(
        self, jane_tree, jane_codec, jane_regions
    ):
        query = jane_codec.encode_query([jane_regions["home"]], query_offset=0)
        assert jane_tree.search_candidates(query) == []

    def test_search_by_consequence_ignores_premise(self, jane_tree, jane_codec):
        mask = jane_codec.consequence_mask([2])
        hits = jane_tree.search_by_consequence(mask)
        assert sorted(p.consequence.label for p, _ in hits) == ["R_2^0", "R_2^1"]

    def test_search_by_consequence_empty_mask(self, jane_tree):
        assert jane_tree.search_by_consequence(0) == []
        with pytest.raises(ValueError):
            jane_tree.search_by_consequence(-1)


class TestTreeAtScale:
    @pytest.fixture(scope="class")
    def corpus(self):
        rng = np.random.default_rng(11)
        regions = synthesize_regions(60, period=50, rng=rng)
        patterns = synthesize_patterns(regions, 2000, rng)
        codec = KeyCodec.from_patterns(regions, patterns)
        return regions, patterns, codec

    def test_insert_preserves_invariants(self, corpus):
        _, patterns, codec = corpus
        tree = TrajectoryPatternTree(codec, max_entries=8)
        for p in patterns:
            tree.insert_pattern(p)
        tree.validate()
        assert len(tree) == len(patterns)

    def test_bulk_load_preserves_invariants(self, corpus):
        _, patterns, codec = corpus
        tree = TrajectoryPatternTree(codec, max_entries=8)
        tree.bulk_load_patterns(patterns)
        tree.validate()
        assert len(tree.all_patterns()) == len(patterns)

    def test_search_matches_bruteforce(self, corpus):
        _, patterns, codec = corpus
        tree = TrajectoryPatternTree(codec, max_entries=8)
        tree.bulk_load_patterns(patterns)
        encoded = [(codec.encode_pattern(p), p) for p in patterns]
        rng = np.random.default_rng(12)
        for _ in range(25):
            probe = patterns[int(rng.integers(len(patterns)))]
            query = codec.encode_query(probe.premise, probe.consequence_offset)
            got = sorted(
                str(p) for p, _ in tree.search_candidates(query)
            )
            expected = sorted(
                str(p) for key, p in encoded if key.intersects(query)
            )
            assert got == expected
            assert str(probe) in expected  # the probe itself must match

    def test_consequence_search_matches_bruteforce(self, corpus):
        _, patterns, codec = corpus
        tree = TrajectoryPatternTree(codec, max_entries=8)
        tree.bulk_load_patterns(patterns)
        rng = np.random.default_rng(13)
        offsets = codec.consequence_offsets()
        for _ in range(10):
            window = {offsets[int(rng.integers(len(offsets)))]}
            mask = codec.consequence_mask(window)
            got = sorted(str(p) for p, _ in tree.search_by_consequence(mask))
            expected = sorted(
                str(p) for p in patterns if p.consequence_offset in window
            )
            assert got == expected

    def test_tpt_visits_fewer_leaves_than_bruteforce(self, corpus):
        """The index must actually prune: a narrow query touches a strict
        subset of the tree's entries."""
        _, patterns, codec = corpus
        tree = TrajectoryPatternTree(codec, max_entries=8)
        tree.bulk_load_patterns(patterns)
        probe = patterns[0]
        query = codec.encode_query(probe.premise, probe.consequence_offset)
        hits = tree.search_candidates(query)
        assert 0 < len(hits) < len(patterns)


class TestChooseLeafCases:
    def test_contained_key_goes_to_containing_entry(self, jane_codec, jane_patterns):
        """Algorithm 1 line 5-6: a contained key follows the containing
        subtree — after inserting a superset pattern, inserting a subset
        lands in the same leaf."""
        tree = TrajectoryPatternTree(jane_codec, max_entries=4)
        # Force a split so the root is internal.
        for p in jane_patterns * 2:
            tree.insert_pattern(p)
        before = tree.stats()
        tree.insert_pattern(jane_patterns[0])
        after = tree.stats()
        assert after.entry_count == before.entry_count + 1
        tree.validate()
