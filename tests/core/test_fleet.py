"""Tests for the multi-object fleet manager."""

import numpy as np
import pytest

from repro.core.config import HPMConfig
from repro.core.fleet import FleetPredictionModel
from repro.trajectory import TimedPoint, Trajectory


def make_history(route_y: float, num_subs=15, period=10, seed=0):
    """An object moving east along y = route_y each period."""
    rng = np.random.default_rng(seed)
    base = np.column_stack(
        [80.0 * np.arange(period), np.full(period, route_y)]
    )
    blocks = [base + rng.normal(0, 0.8, base.shape) for _ in range(num_subs)]
    return Trajectory(np.vstack(blocks)), base


@pytest.fixture
def fleet():
    cfg = HPMConfig(period=10, eps=5.0, min_pts=4, distant_threshold=4, recent_window=3)
    fleet = FleetPredictionModel(cfg)
    histories = {}
    for i, y in enumerate((0.0, 500.0, 1000.0)):
        histories[f"obj{i}"], _ = make_history(y, seed=i)
    fleet.fit(histories)
    return fleet


class TestConstruction:
    def test_overrides(self):
        fleet = FleetPredictionModel(period=10, distant_threshold=4)
        assert fleet.config.period == 10

    def test_fit_requires_histories(self):
        with pytest.raises(ValueError):
            FleetPredictionModel(period=10, distant_threshold=4).fit({})


class TestContainer:
    def test_len_contains_ids(self, fleet):
        assert len(fleet) == 3
        assert "obj1" in fleet
        assert "ghost" not in fleet
        assert fleet.object_ids() == ["obj0", "obj1", "obj2"]

    def test_getitem_unknown(self, fleet):
        with pytest.raises(KeyError, match="ghost"):
            fleet["ghost"]

    def test_drop(self, fleet):
        fleet.drop_object("obj1")
        assert len(fleet) == 2
        with pytest.raises(KeyError):
            fleet.drop_object("obj1")

    def test_repr(self, fleet):
        assert "objects=3" in repr(fleet)


class TestPrediction:
    def test_per_object_models_are_independent(self, fleet):
        """Each object's prediction tracks its own route."""
        now = 200
        for i, y in enumerate((0.0, 500.0, 1000.0)):
            recent = [
                TimedPoint(now + t, 80.0 * t, y) for t in range(3)
            ]
            pred = fleet.predict(f"obj{i}", recent, now + 5)[0]
            assert abs(pred.location.y - y) < 30.0

    def test_predict_all(self, fleet):
        now = 200
        recents = {
            f"obj{i}": [TimedPoint(now + t, 80.0 * t, y) for t in range(3)]
            for i, y in enumerate((0.0, 500.0, 1000.0))
        }
        results = fleet.predict_all(recents, now + 5)
        assert set(results) == {"obj0", "obj1", "obj2"}

    def test_predict_unknown_object(self, fleet):
        with pytest.raises(KeyError):
            fleet.predict("ghost", [TimedPoint(0, 0, 0)], 5)


class TestLifecycle:
    def test_fit_object_adds(self, fleet):
        history, _ = make_history(2000.0, seed=9)
        model = fleet.fit_object("newcomer", history)
        assert "newcomer" in fleet
        assert model.pattern_count > 0

    def test_update_object(self, fleet):
        _, base = make_history(0.0)
        before = len(fleet["obj0"].history_)
        fleet.update_object("obj0", base)
        assert len(fleet["obj0"].history_) == before + len(base)

    def test_summary_and_totals(self, fleet):
        rows = fleet.summary()
        assert len(rows) == 3
        assert all(r["num_patterns"] > 0 for r in rows)
        assert fleet.total_patterns() == sum(r["num_patterns"] for r in rows)


class TestConcurrency:
    def test_interleaved_ingest_and_predict_threads(self, fleet):
        """Hammer one object with concurrent updates and predicts.

        Without the per-object lock the model's index rebuild races the
        predictor and queries crash or read half-built state; with it,
        every predict must return a well-formed answer.
        """
        import threading

        _, base = make_history(0.0)
        errors = []
        stop = threading.Event()

        def updater():
            try:
                for _ in range(5):
                    fleet.update_object("obj0", base)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def predictor():
            recent = [
                TimedPoint(i, float(base[i][0]), float(base[i][1]))
                for i in range(3)
            ]
            try:
                while not stop.is_set():
                    predictions = fleet.predict("obj0", recent, 8)
                    assert predictions and predictions[0].method in (
                        "fqp",
                        "bqp",
                        "motion",
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=updater)] + [
            threading.Thread(target=predictor) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_object_lock_identity_is_stable(self, fleet):
        lock = fleet.object_lock("obj0")
        assert fleet.object_lock("obj0") is lock
        assert fleet.object_lock("obj1") is not lock
