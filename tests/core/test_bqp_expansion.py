"""Tests for BQP's incremental interval enlargement (Algorithm 3)."""

import pytest

from repro.core.config import HPMConfig
from repro.core.keys import KeyCodec
from repro.core.patterns import TrajectoryPattern
from repro.core.prediction import HybridPredictor
from repro.core.regions import RegionSet
from repro.core.tpt import TrajectoryPatternTree
from repro.trajectory import TimedPoint
from tests.core.conftest import make_region


@pytest.fixture
def sparse_world():
    """Period 40; consequences exist ONLY at offset 30.

    A distant query at offset ~20 must enlarge its interval several times
    before the offset-30 patterns fall inside it.
    """
    start = make_region(0, 0, 0.0, 0.0)
    mid = make_region(10, 0, 100.0, 0.0)
    goal = make_region(30, 0, 300.0, 0.0)
    regions = RegionSet([start, mid, goal], period=40, eps=5.0)
    patterns = [
        TrajectoryPattern((start,), goal, support=8, confidence=0.9),
        TrajectoryPattern((mid,), goal, support=6, confidence=0.7),
    ]
    codec = KeyCodec.from_patterns(regions, patterns)
    tree = TrajectoryPatternTree(codec, max_entries=4)
    tree.bulk_load_patterns(patterns)
    config = HPMConfig(
        period=40, eps=5.0, distant_threshold=5, time_relaxation=2, recent_window=3
    )
    return HybridPredictor(regions, codec, tree, config)


class TestIntervalExpansion:
    def test_query_far_from_consequences_expands_until_found(self, sparse_world):
        # tc at offset 0 (global 400), tq at offset 20: the only consequence
        # offset (30) is 10 away -> needs i*t_eps >= 10 -> i = 5 expansions.
        recent = [TimedPoint(400, 0.0, 0.0)]
        result = sparse_world.backward_query(recent, 420, k=1)
        assert result[0].method == "bqp"
        assert result[0].pattern.consequence.label == "R_30^0"

    def test_expansion_gives_up_at_current_time(self, sparse_world):
        """When the interval would reach back to tc before any pattern is
        found, BQP calls the motion function (Algorithm 3 line 11)."""
        # tc at offset 12 (global 412), tq at offset 18: distance to the
        # only consequence offset (30) is 12, but the interval may only
        # grow while tq - i*t_eps > tc, i.e. i*2 < 6 -> never reaches it.
        recent = [
            TimedPoint(410, 100.0, 0.0),
            TimedPoint(411, 100.0, 0.0),
            TimedPoint(412, 100.0, 0.0),
        ]
        result = sparse_world.backward_query(recent, 418, k=1)
        assert result[0].method == "motion"

    def test_wide_relaxation_finds_immediately(self, sparse_world):
        """A t_eps covering the gap needs no expansion at all."""
        wide = HybridPredictor(
            sparse_world.regions,
            sparse_world.codec,
            sparse_world.tree,
            sparse_world.config.with_overrides(time_relaxation=10),
        )
        recent = [TimedPoint(400, 0.0, 0.0)]
        result = wide.backward_query(recent, 420, k=2)
        assert all(r.method == "bqp" for r in result)

    def test_consequence_similarity_decays_with_distance(self, sparse_world):
        """The found pattern's Sc reflects how far the interval stretched."""
        recent = [TimedPoint(400, 0.0, 0.0)]
        # Query exactly at the consequence offset: Sc = 1, premise matches.
        on_target = sparse_world.backward_query(recent, 430, k=1)[0]
        off_target = sparse_world.backward_query(recent, 420, k=1)[0]
        assert on_target.score > off_target.score
