"""Property-based tests: TPT search correctness over random corpora."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import KeyCodec
from repro.core.tpt import TrajectoryPatternTree
from repro.evalx import synthesize_patterns, synthesize_regions


@st.composite
def corpora(draw):
    seed = draw(st.integers(0, 10_000))
    num_regions = draw(st.integers(5, 40))
    period = draw(st.integers(10, 60))
    num_patterns = draw(st.integers(1, 120))
    max_entries = draw(st.sampled_from([4, 8, 16]))
    rng = np.random.default_rng(seed)
    regions = synthesize_regions(num_regions, period, rng)
    patterns = synthesize_patterns(regions, num_patterns, rng)
    return regions, patterns, max_entries, seed


class TestTPTProperties:
    @settings(max_examples=25, deadline=None)
    @given(corpora())
    def test_search_equals_bruteforce(self, corpus):
        regions, patterns, max_entries, seed = corpus
        codec = KeyCodec.from_patterns(regions, patterns)
        tree = TrajectoryPatternTree(codec, max_entries=max_entries)
        tree.bulk_load_patterns(patterns)
        tree.validate()

        encoded = [(codec.encode_pattern(p), p) for p in patterns]
        rng = np.random.default_rng(seed + 1)
        for _ in range(5):
            probe = patterns[int(rng.integers(len(patterns)))]
            query = codec.encode_query(probe.premise, probe.consequence_offset)
            got = sorted(str(p) for p, _ in tree.search_candidates(query))
            expected = sorted(str(p) for k, p in encoded if k.intersects(query))
            assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(corpora())
    def test_consequence_search_equals_bruteforce(self, corpus):
        regions, patterns, max_entries, seed = corpus
        codec = KeyCodec.from_patterns(regions, patterns)
        tree = TrajectoryPatternTree(codec, max_entries=max_entries)
        tree.bulk_load_patterns(patterns)

        rng = np.random.default_rng(seed + 2)
        offsets = codec.consequence_offsets()
        window = {
            offsets[int(rng.integers(len(offsets)))],
            offsets[int(rng.integers(len(offsets)))],
        }
        mask = codec.consequence_mask(window)
        got = sorted(str(p) for p, _ in tree.search_by_consequence(mask))
        expected = sorted(
            str(p) for p in patterns if p.consequence_offset in window
        )
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(corpora())
    def test_insert_then_delete_round_trip(self, corpus):
        regions, patterns, max_entries, seed = corpus
        codec = KeyCodec.from_patterns(regions, patterns)
        tree = TrajectoryPatternTree(codec, max_entries=max_entries)
        for p in patterns:
            tree.insert_pattern(p)
        # Delete every other pattern; the survivors must be intact.
        for p in patterns[::2]:
            assert tree.remove_pattern(p)
        tree.validate()
        # Deletion matches on (premise, consequence) — synthesized corpora
        # can contain duplicates of that identity with different
        # confidences, so compare multisets of the matched identity.
        def identity(p):
            return (p.premise, p.consequence)

        survivors = sorted(map(identity, tree.all_patterns()), key=str)
        expected = sorted(map(identity, patterns), key=str)
        for p in patterns[::2]:
            expected.remove(identity(p))
        assert survivors == expected
