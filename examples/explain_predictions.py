"""Explaining predictions: inspect how FQP/BQP ranked their candidates.

HPM's answers come from ranked trajectory patterns; when an answer looks
surprising, :func:`repro.core.explain_query` shows the evidence — which
recent movements matched which premise regions (with their Property-1
weights), the consequence similarity, and each candidate's confidence.

Run:  python examples/explain_predictions.py
"""

import numpy as np

from repro.core import explain_query
from repro.datagen import make_cow
from repro.evalx import ExperimentScale, fit_model, generate_queries


def main() -> None:
    scale = ExperimentScale(
        dataset_subtrajectories=40,
        training_subtrajectories=30,
        num_queries=4,
        period=300,
    )
    print("fitting HPM on the Cow dataset (two grazing circuits)...")
    dataset = make_cow(scale.dataset_subtrajectories, scale.period)
    model = fit_model(dataset, scale)
    predictor = model.predictor_
    print(f"  {model.pattern_count} patterns indexed\n")

    # One near-future and one distant query, fully explained.
    for length, label in ((20, "near-future (FQP)"), (120, "distant (BQP)")):
        workload = generate_queries(
            dataset,
            prediction_length=length,
            num_queries=1,
            num_training_subtrajectories=scale.training_subtrajectories,
            rng=np.random.default_rng(length),
        )
        query = workload.queries[0]
        report = explain_query(
            predictor, list(query.recent), query.query_time, max_candidates=3
        )
        print(f"--- {label} ---")
        print(report)
        prediction = model.predict_one(list(query.recent), query.query_time)
        err = prediction.location.distance_to(query.truth)
        print(f"  top-1 error vs actual location: {err:.0f}\n")


if __name__ == "__main__":
    main()
