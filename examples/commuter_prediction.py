"""Commuter prediction on a road network (the paper's Car scenario).

A car commutes on a synthetic road network — shortest paths full of the
sudden turns that defeat motion-function extrapolation (Section I's
motivating figure).  We fit HPM on the car's history and compare it
against RMF across prediction horizons, reproducing the Fig. 5 Car panel
in miniature.

Run:  python examples/commuter_prediction.py
"""

import numpy as np

from repro.datagen import make_car
from repro.evalx import (
    ExperimentScale,
    evaluate_hpm,
    evaluate_rmf,
    fit_model,
    format_series,
    generate_queries,
)


def main() -> None:
    scale = ExperimentScale(
        dataset_subtrajectories=40,
        training_subtrajectories=30,
        num_queries=25,
        period=300,
    )
    print("generating the Car dataset (road-network commute)...")
    dataset = make_car(scale.dataset_subtrajectories, scale.period)

    print("mining trajectory patterns...")
    model = fit_model(dataset, scale)
    print(
        f"  {len(model.regions_)} frequent regions, "
        f"{model.pattern_count} patterns, "
        f"TPT height {model.tree_.stats().height}"
    )

    rows = []
    for horizon in (20, 50, 100, 200):
        workload = generate_queries(
            dataset,
            prediction_length=horizon,
            num_queries=scale.num_queries,
            num_training_subtrajectories=scale.training_subtrajectories,
            rng=np.random.default_rng(horizon),
        )
        hpm = evaluate_hpm(model, workload)
        rmf = evaluate_rmf(workload)
        rows.append(
            [
                horizon,
                round(hpm.mean_error),
                round(rmf.mean_error),
                f"{hpm.method_counts['fqp']}/{hpm.method_counts['bqp']}"
                f"/{hpm.method_counts['motion']}",
            ]
        )
    print(
        format_series(
            "Car commute: average error by prediction horizon",
            ["horizon", "HPM error", "RMF error", "fqp/bqp/motion"],
            rows,
        )
    )
    print(
        "Road-network turns break constant-motion extrapolation: RMF's\n"
        "error explodes with the horizon while the pattern index keeps\n"
        "HPM several times more accurate even 200 steps ahead."
    )


if __name__ == "__main__":
    main()
