"""Walkthrough of the paper's running example (Fig. 3, Tables I-III, §VI-B).

Reconstructs Jane's five frequent regions and four trajectory patterns,
prints the region-key / consequence-key / pattern-key tables exactly as
the paper shows them, builds the TPT, and runs the Section VI-B query
("recent movements R_0^0 and R_1^0, tq = 2") whose candidate scores the
paper computes as 0.5 (Work) and 0.132 (Beach).

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro.core import HPMConfig, HybridPredictor, KeyCodec, TrajectoryPattern
from repro.core.regions import FrequentRegion, RegionSet
from repro.core.tpt import TrajectoryPatternTree
from repro.evalx import format_series
from repro.trajectory import BoundingBox, Point, TimedPoint


def make_region(offset: int, index: int, cx: float, cy: float) -> FrequentRegion:
    points = np.array([[cx - 1, cy], [cx + 1, cy], [cx, cy - 1], [cx, cy + 1]])
    return FrequentRegion(
        offset=offset,
        index=index,
        center=Point(cx, cy),
        points=points,
        bbox=BoundingBox(cx - 1, cy - 1, cx + 1, cy + 1),
        subtrajectory_ids=(0, 1, 2, 3),
    )


def main() -> None:
    # Fig. 3: Home (t=0), City / Shopping center (t=1), Work / Beach (t=2).
    home = make_region(0, 0, 0.0, 0.0)
    city = make_region(1, 0, 100.0, 0.0)
    shopping = make_region(1, 1, 0.0, 100.0)
    work = make_region(2, 0, 200.0, 0.0)
    beach = make_region(2, 1, 0.0, 200.0)
    regions = RegionSet([home, city, shopping, work, beach], period=3, eps=5.0)

    patterns = [
        TrajectoryPattern((home,), city, support=9, confidence=0.9),
        TrajectoryPattern((home,), shopping, support=8, confidence=0.8),
        TrajectoryPattern((home, city), work, support=5, confidence=0.5),
        TrajectoryPattern((home, shopping), beach, support=4, confidence=0.4),
    ]
    print("Trajectory patterns (Fig. 3):")
    for p in patterns:
        print(f"  {p}")

    codec = KeyCodec.from_patterns(regions, patterns)
    print(
        format_series(
            "Table I: region keys",
            ["frequent region", "region id", "region key"],
            codec.region_key_table(),
        )
    )
    print(
        format_series(
            "Table II: consequence keys",
            ["time offset", "time id", "consequence key"],
            codec.consequence_key_table(),
        )
    )
    print(
        format_series(
            "Table III: pattern keys",
            ["trajectory pattern", "pattern key"],
            [[str(p), codec.encode_pattern(p).to_bit_string()] for p in patterns],
        )
    )

    tree = TrajectoryPatternTree(codec, max_entries=4)
    tree.bulk_load_patterns(patterns)

    # Section VI-B query: Jane was at Home (t=0) then the City (t=1); where
    # is she at tq = 2?
    config = HPMConfig(
        period=3, eps=5.0, distant_threshold=2, time_relaxation=1, recent_window=3
    )
    predictor = HybridPredictor(regions, codec, tree, config)
    recent = [TimedPoint(30, 0.0, 0.0), TimedPoint(31, 100.0, 0.0)]
    query_key = codec.encode_query(
        predictor.map_recent_to_regions(recent), query_offset=2
    )
    print(f"query pattern key (paper: 1000011): {query_key.to_bit_string()}")

    results = predictor.forward_query(recent, query_time=32, k=2)
    print("FQP ranking (paper: Work 0.5 > Beach 0.132):")
    for r in results:
        print(
            f"  {r.pattern.consequence.label} at "
            f"({r.location.x:.0f}, {r.location.y:.0f})  S_p = {r.score:.3f}"
        )


if __name__ == "__main__":
    main()
