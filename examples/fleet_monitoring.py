"""Fleet monitoring: raw GPS ingest + per-object models + batch queries.

Simulates the operational pipeline around HPM for a small delivery fleet:

1. each van produces *raw* GPS fixes — irregular sampling, dropouts and
   multipath spikes — which are cleaned and resampled
   (``repro.trajectory.preprocessing``);
2. a :class:`repro.FleetPredictionModel` fits one HPM per van;
3. the dispatcher asks "where will every van be in 40 ticks?" in one
   batched call.

Run:  python examples/fleet_monitoring.py
"""

import numpy as np

from repro import FleetPredictionModel, HPMConfig, TimedPoint
from repro.datagen import Route, PeriodicTrajectoryGenerator, WeightedRoute
from repro.trajectory import remove_speed_spikes, resample_uniform


def raw_fixes_for_van(route_seed: int, num_days: int, period: int, rng):
    """Generate a van's *raw* GPS log: clean periodic motion, then degrade it."""
    a = rng.uniform(500, 3000, 2)
    b = rng.uniform(6000, 9500, 2)
    mid = (a + b) / 2 + rng.normal(0, 1500, 2)
    route = Route(np.vstack([a, mid, b]), dwell=(0.15, 0.0, 0.2))
    generator = PeriodicTrajectoryGenerator(
        [WeightedRoute(route)], pattern_probability=0.85, noise_sigma=12.0
    )
    clean = generator.generate(num_days, period, rng).positions

    times = np.arange(len(clean), dtype=float)
    # Degrade: drop 20% of fixes, add spikes to 1%.
    keep = rng.random(len(clean)) > 0.2
    keep[0] = keep[-1] = True
    times, fixes = times[keep], clean[keep].copy()
    spikes = rng.random(len(fixes)) < 0.01
    fixes[spikes] += rng.normal(0, 4000, (int(spikes.sum()), 2))
    return times, fixes


def main() -> None:
    rng = np.random.default_rng(11)
    period, num_days = 120, 30
    config = HPMConfig(
        period=period, eps=40.0, min_pts=4, distant_threshold=30, recent_window=6
    )
    fleet = FleetPredictionModel(config)

    histories = {}
    for van in ("van-a", "van-b", "van-c"):
        times, fixes = raw_fixes_for_van(hash(van) % 100, num_days, period, rng)
        # Clean the log: spike removal, then uniform resampling.
        times, fixes = remove_speed_spikes(times, fixes, max_speed=400.0)
        histories[van] = resample_uniform(times, fixes, tick=1.0)
    fleet.fit(histories)

    print("fleet summary:")
    for row in fleet.summary():
        print(
            f"  {row['object_id']}: {row['history_length']} ticks, "
            f"{row['num_regions']} regions, {row['num_patterns']} patterns"
        )

    # Dispatcher view: all vans continue their routes; where in 40 ticks?
    now = num_days * period + 10
    recents = {}
    for van, history in histories.items():
        recents[van] = [
            TimedPoint(now - i, *history.positions[(now - i) % period])
            for i in range(5, -1, -1)
        ]
    predictions = fleet.predict_all(recents, now + 40)
    print(f"\npredicted positions at t+{40}:")
    for van, prediction in sorted(predictions.items()):
        print(
            f"  {van}: ({prediction.location.x:.0f}, {prediction.location.y:.0f}) "
            f"via {prediction.method.upper()}"
        )


if __name__ == "__main__":
    main()
