"""Streaming updates: growing the pattern corpus as new days arrive.

The paper's system "deals with both static data (historical trajectory
data) and dynamic data (newly incoming trajectory data) ... when a
certain amount of new data is accumulated, the system mines new patterns
and adds them up to TPT by using the insertion algorithm" (Section V-B).

This example starts a grazing cow with a deliberately thin history — too
few visits to its minority circuit for those patterns to clear the
support threshold — then feeds the observed days in batches and watches
the pattern corpus grow and accuracy improve (the Fig. 6 effect), driven
through the dynamic-update path.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro.datagen import make_cow
from repro.evalx import ExperimentScale, evaluate_hpm, fit_model, format_series, generate_queries


def main() -> None:
    period = 300
    total_days = 48
    dataset = make_cow(total_days, period)

    # Start with just 6 days of history.
    scale = ExperimentScale(
        dataset_subtrajectories=total_days,
        training_subtrajectories=6,
        num_queries=20,
        period=period,
    )
    model = fit_model(dataset, scale)

    # A fixed workload drawn from the last (held-out) days.
    workload = generate_queries(
        dataset, 50, scale.num_queries, 36, rng=np.random.default_rng(0)
    )

    rows = []
    seen_days = 6
    while True:
        result = evaluate_hpm(model, workload)
        rows.append(
            [
                seen_days,
                model.pattern_count,
                round(result.mean_error),
                result.method_counts["motion"],
            ]
        )
        if seen_days >= 36:
            break
        # Stream in the next batch of 10 observed days.
        batch = dataset.trajectory.slice(
            seen_days * period, (seen_days + 10) * period
        ).positions
        model.update(batch)
        seen_days += 10

    print(
        format_series(
            "Streaming updates: accuracy as history accumulates",
            ["days seen", "patterns", "mean error", "motion fallbacks"],
            rows,
        )
    )
    print(
        "More accumulated days -> more (and sharper) trajectory patterns\n"
        "-> fewer motion-function fallbacks and lower error (Fig. 6)."
    )


if __name__ == "__main__":
    main()
