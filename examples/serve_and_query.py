"""Serve predictions over HTTP and query them — all in one process.

Fits the quickstart commuter model, stands up the asyncio prediction
service (:mod:`repro.serve`) on an ephemeral port, then plays a full
client session against it: stream fixes into ``/ingest``, ask
``/predict`` twice (miss, then cache hit), fire a small load burst, and
read the scoreboard from ``/metrics``.

Run:  python examples/serve_and_query.py
"""

import asyncio
import json

import numpy as np

from repro import FleetPredictionModel, HPMConfig, Trajectory
from repro.serve import (
    HttpClient,
    PredictionServer,
    PredictionService,
    ServeConfig,
    build_workload,
    ingest_stream,
    run_loadgen,
)

PERIOD = 24


def build_history(num_days: int = 40) -> tuple[Trajectory, np.ndarray]:
    """The quickstart route: east along an avenue, then north."""
    rng = np.random.default_rng(7)
    base = np.zeros((PERIOD, 2))
    for t in range(PERIOD):
        if t < PERIOD // 2:
            base[t] = [400.0 * t, 0.0]
        else:
            base[t] = [400.0 * (PERIOD // 2), 400.0 * (t - PERIOD // 2)]
    days = [base + rng.normal(0, 20.0, base.shape) for _ in range(num_days)]
    return Trajectory(np.vstack(days)), base


async def main() -> None:
    history, base = build_history()
    config = HPMConfig(
        period=PERIOD,
        eps=60.0,
        min_pts=4,
        min_confidence=0.3,
        distant_threshold=8,
        recent_window=4,
    )
    fleet = FleetPredictionModel(config)
    fleet.fit({"commuter": history})
    print(f"fitted 1 object: {fleet.total_patterns()} trajectory patterns")

    service = PredictionService(fleet, ServeConfig(update_after=50))
    server = PredictionServer(service)  # port=0 -> ephemeral
    await server.start()
    print(f"serving on http://127.0.0.1:{server.port}\n")

    # --- a new day begins: stream the commuter's fixes in -------------
    now = len(history)
    fixes = [
        (now + i, float(base[i][0]) + 2.0, float(base[i][1]) - 1.0)
        for i in range(4)
    ]
    accepted = await ingest_stream(
        "127.0.0.1", server.port, "commuter", fixes
    )
    print(f"ingested {accepted} fixes via POST /ingest")

    # --- predict from the tracker window (no recent needed) -----------
    client = HttpClient("127.0.0.1", server.port)
    query = {"object_id": "commuter", "query_time": now + 8}
    for attempt in ("first", "repeat"):
        status, headers, body = await client.request(
            "POST", "/predict", query
        )
        answer = json.loads(body)["predictions"][0]
        print(
            f"{attempt} query (t={query['query_time']}): "
            f"({answer['x']:.0f}, {answer['y']:.0f}) via "
            f"{answer['method'].upper()} — X-Cache: {headers['x-cache']}"
        )

    # --- a burst of traffic -------------------------------------------
    workload = build_workload(
        history, object_id="commuter", requests=300, distinct=40
    )
    report = await run_loadgen("127.0.0.1", server.port, workload)
    print(f"\nload burst: {report.format()}")

    # --- the operator's view ------------------------------------------
    _, _, metrics = await client.request("GET", "/metrics")
    wanted = (
        "serve_http_requests_total ",
        "serve_cache_hits_total",
        "serve_batches_total",
        "model_predict_seconds_count",
        'serve_http_request_seconds_quantile{q="p95"}',
    )
    print("\nGET /metrics (excerpt):")
    for line in metrics.decode("utf-8").splitlines():
        if any(line.startswith(w) for w in wanted):
            print(f"  {line}")

    await client.close()
    await server.close()


if __name__ == "__main__":
    asyncio.run(main())
