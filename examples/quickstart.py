"""Quickstart: fit the Hybrid Prediction Model and ask "where next?".

Builds a small synthetic object that commutes along the same bent route
every period, fits HPM on its history, and answers one near-future and
one distant-future predictive query — exactly the Section I scenario.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HPMConfig, HybridPredictionModel, Point, TimedPoint, Trajectory


def build_history(num_days: int = 40, period: int = 24) -> tuple[Trajectory, np.ndarray]:
    """A daily route: east along an avenue, then north on a cross street."""
    rng = np.random.default_rng(7)
    base = np.zeros((period, 2))
    for t in range(period):
        if t < period // 2:
            base[t] = [400.0 * t, 0.0]  # eastbound leg
        else:
            base[t] = [400.0 * (period // 2), 400.0 * (t - period // 2)]  # north
    days = [base + rng.normal(0, 20.0, base.shape) for _ in range(num_days)]
    return Trajectory(np.vstack(days)), base


def main() -> None:
    period = 24
    history, base = build_history(period=period)

    config = HPMConfig(
        period=period,      # the pattern period T (e.g. "a day")
        eps=60.0,           # DBSCAN neighbourhood radius
        min_pts=4,          # DBSCAN density threshold
        min_confidence=0.3, # minimum pattern confidence
        distant_threshold=8,  # d: queries >= 8 steps ahead are "distant"
        recent_window=4,
    )
    model = HybridPredictionModel(config).fit(history)
    print(f"fitted: {len(model.regions_)} frequent regions, "
          f"{model.pattern_count} trajectory patterns")

    # The object is now moving along its usual route (a new day).
    now = len(history) + 2
    recent = [
        TimedPoint(now - 2, base[0][0] + 5, base[0][1] - 3),
        TimedPoint(now - 1, base[1][0] - 4, base[1][1] + 6),
        TimedPoint(now, base[2][0] + 2, base[2][1] + 1),
    ]

    for horizon, label in ((3, "near-future"), (15, "distant-time")):
        query_time = now + horizon
        prediction = model.predict_one(recent, query_time)
        truth = Point(*base[query_time % period])
        print(
            f"{label} query (+{horizon} steps): predicted "
            f"({prediction.location.x:.0f}, {prediction.location.y:.0f}) "
            f"via {prediction.method.upper()}; actual route point "
            f"({truth.x:.0f}, {truth.y:.0f}); error "
            f"{prediction.location.distance_to(truth):.0f}"
        )
        if prediction.pattern is not None:
            print(f"  winning pattern: {prediction.pattern}")


if __name__ == "__main__":
    main()
