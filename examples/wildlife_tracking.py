"""Wildlife tracking: distant-time queries on grazing cattle (Cow scenario).

The paper's Cow data comes from GPS ear tags in CSIRO's virtual-fencing
project.  A rancher's question is inherently *distant-time*: "it's 8 a.m.
— where will the cow be at 4 p.m.?"  Recent movements say little; the
animal's habitual circuits say a lot.  This example walks the Backward
Query Processing path: consequence-interval retrieval, Eq. 5 ranking, and
the time-relaxation knob.

Run:  python examples/wildlife_tracking.py
"""

import numpy as np

from repro.datagen import make_cow
from repro.evalx import ExperimentScale, fit_model, format_series, generate_queries
from repro.trajectory import mean_error


def main() -> None:
    scale = ExperimentScale(
        dataset_subtrajectories=40,
        training_subtrajectories=30,
        num_queries=20,
        period=300,
    )
    print("generating the Cow dataset (two grazing circuits)...")
    dataset = make_cow(scale.dataset_subtrajectories, scale.period)
    model = fit_model(dataset, scale)
    print(
        f"  {len(model.regions_)} frequent regions, {model.pattern_count} patterns"
    )

    # One concrete distant-time query, narrated.
    workload = generate_queries(
        dataset, 150, 1, scale.training_subtrajectories,
        rng=np.random.default_rng(5),
    )
    query = workload.queries[0]
    predictions = model.predict(list(query.recent), query.query_time, k=3)
    print(f"\ncurrent offset {query.current_time % 300}, "
          f"query offset {query.query_time % 300} (150 steps ahead):")
    for rank, p in enumerate(predictions, 1):
        print(
            f"  #{rank} {p.method.upper()} -> "
            f"({p.location.x:.0f}, {p.location.y:.0f})  score={p.score:.3f}"
            + (f"  via {p.pattern}" if p.pattern else "")
        )
    err = predictions[0].location.distance_to(query.truth)
    print(f"  actual location ({query.truth.x:.0f}, {query.truth.y:.0f}); "
          f"top-1 error {err:.0f}")

    # Sweep the time-relaxation length t_eps on distant queries.
    rows = []
    for t_eps in (1, 2, 3, 5, 8):
        model_eps = fit_model(dataset, scale, time_relaxation=t_eps)
        workload = generate_queries(
            dataset, 150, scale.num_queries, scale.training_subtrajectories,
            rng=np.random.default_rng(42),
        )
        errors = [
            model_eps.predict_one(list(q.recent), q.query_time)
            .location.distance_to(q.truth)
            for q in workload.queries
        ]
        rows.append([t_eps, round(mean_error(errors))])
    print(
        format_series(
            "Distant-time error vs time relaxation t_eps "
            "(paper: best at 1-3)",
            ["t_eps", "mean error"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
