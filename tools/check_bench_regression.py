"""Compare a bench smoke run against the committed BENCH_*.json baseline.

The committed baselines are full-scale runs; CI re-runs each bench in
``--smoke`` mode on shared runners, so absolute numbers are incomparable
— but *ratios* (speedups, goodput fractions) and invariants (fingerprint
identity flags) should hold within a tolerance.  This tool flattens both
JSON reports, keeps the numeric fields they share, classifies each by
name (higher-is-better for ``speedup``/``goodput``/``throughput``/
``ops_per_sec``-style fields, lower-is-better for ``latency``/``_ms``/
``_seconds``/``rss``-style fields, others skipped), and reports every
field that regressed beyond ``--tolerance`` (a fraction: 0.5 means a
smoke speedup may be up to 50% below baseline before it counts).

Boolean fields ending in ``identical``/``ok``/``passed`` must not flip
from true to false regardless of tolerance.

Default is **warn** mode (always exit 0, print findings) so CI noise
never blocks a merge; ``--fail`` turns findings into a non-zero exit for
local gating.

    python tools/check_bench_regression.py BENCH_snapshot.json \
        --baseline path/to/committed/BENCH_snapshot.json --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HIGHER_BETTER = ("speedup", "goodput", "throughput", "ops_per_sec", "qps")
LOWER_BETTER = (
    "latency",
    "_ms",
    "_seconds",
    "_s",
    "rss",
    "p50",
    "p95",
    "p99",
)
MUST_HOLD = ("identical", "ok", "passed")


def _flatten(value, prefix: str = "") -> dict[str, object]:
    """``{"a": {"b": 1}} -> {"a.b": 1}``; lists are indexed."""
    out: dict[str, object] = {}
    if isinstance(value, dict):
        for key, item in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_flatten(item, path))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            out.update(_flatten(item, f"{prefix}[{index}]"))
    else:
        out[prefix] = value
    return out


def direction(field: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 not comparable."""
    name = field.lower()
    if any(tag in name for tag in HIGHER_BETTER):
        return 1
    if any(name.endswith(tag) or tag in name for tag in LOWER_BETTER):
        return -1
    return 0


def compare(
    current: dict, baseline: dict, tolerance: float
) -> list[str]:
    cur, base = _flatten(current), _flatten(baseline)
    findings: list[str] = []
    for field in sorted(cur.keys() & base.keys()):
        c, b = cur[field], base[field]
        if isinstance(c, bool) or isinstance(b, bool):
            name = field.lower()
            if any(name.endswith(tag) for tag in MUST_HOLD):
                if bool(b) and not bool(c):
                    findings.append(f"{field}: flipped true -> false")
            continue
        if not isinstance(c, (int, float)) or not isinstance(b, (int, float)):
            continue
        sign = direction(field)
        if sign == 0 or b == 0:
            continue
        if sign > 0 and c < b * (1.0 - tolerance):
            findings.append(
                f"{field}: {c:.4g} is more than {tolerance:.0%} below "
                f"baseline {b:.4g}"
            )
        elif sign < 0 and c > b * (1.0 + tolerance):
            findings.append(
                f"{field}: {c:.4g} is more than {tolerance:.0%} above "
                f"baseline {b:.4g}"
            )
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="bench JSON from the current run")
    parser.add_argument(
        "--baseline",
        help="committed baseline JSON (default: same filename in repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional drift before a field counts as regressed "
        "(default: 0.5 — smoke runs on shared runners are noisy)",
    )
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit non-zero on findings instead of warning",
    )
    args = parser.parse_args(argv)

    current_path = Path(args.current)
    baseline_path = Path(
        args.baseline
        if args.baseline
        else Path(__file__).resolve().parent.parent / current_path.name
    )
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; nothing to compare")
        return 0
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    findings = compare(current, baseline, args.tolerance)
    if not findings:
        print(
            f"{current_path.name}: no regressions vs {baseline_path} "
            f"(tolerance {args.tolerance:.0%})"
        )
        return 0
    label = "REGRESSION" if args.fail else "warning"
    for finding in findings:
        print(f"{label}: {current_path.name}: {finding}")
    return 1 if args.fail else 0


if __name__ == "__main__":
    sys.exit(main())
