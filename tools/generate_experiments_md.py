"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs every experiment runner and writes the results — tables plus ASCII
charts — together with the paper's expected shape for each, so the file
is a self-contained reproduction record.

Usage:
    python tools/generate_experiments_md.py            # quick protocol
    python tools/generate_experiments_md.py --full     # paper protocol
    python tools/generate_experiments_md.py -o OUT.md
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.datagen import SCENARIO_NAMES, make_dataset
from repro.evalx import (
    ExperimentScale,
    ascii_chart,
    format_table,
    paper_scale,
    quick_scale,
    run_baseline_comparison,
    run_chooseleaf_ablation,
    run_confidence,
    run_eps,
    run_fanout_ablation,
    run_minpts,
    run_prediction_length,
    run_pruning_ablation,
    run_query_time,
    run_subtrajectories,
    run_time_relaxation,
    run_top_k,
    run_tpt_scaling,
    run_weight_functions,
)


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        cells = [f"{v:.1f}" if isinstance(v, float) else str(v) for v in row]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def code_block(text):
    return f"```\n{text}\n```"


class Report:
    def __init__(self):
        self.sections: list[str] = []

    def add(self, text: str):
        self.sections.append(text)
        print(text.splitlines()[0] if text.strip() else "", file=sys.stderr)

    def write(self, path: Path, header: str):
        path.write_text(header + "\n\n" + "\n\n".join(self.sections) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper protocol")
    parser.add_argument("-o", "--output", default="EXPERIMENTS.md")
    args = parser.parse_args()

    scale = paper_scale() if args.full else quick_scale()
    started = time.time()
    report = Report()

    datasets = {
        name: make_dataset(name, scale.dataset_subtrajectories, scale.period)
        for name in SCENARIO_NAMES
    }

    # ------------------------------------------------------------------
    # Tables I-III
    # ------------------------------------------------------------------
    report.add(
        "## Tables I–III — key encoding (worked example)\n\n"
        "**Paper:** region keys `2^id` over offset-sorted regions; "
        "consequence keys over sorted consequence offsets; pattern key = "
        "consequence key ∥ premise key (`0100001`, `1000011`, `1000101` for "
        "Fig. 3's patterns).\n\n"
        "**Measured:** reproduced bit-for-bit — asserted in "
        "`tests/core/test_keys.py::TestPaperTables` and printed by "
        "`examples/paper_walkthrough.py` (query key `1000011`, FQP scores "
        "0.5 / 0.133)."
    )

    # ------------------------------------------------------------------
    # Fig. 5
    # ------------------------------------------------------------------
    lengths = [20, 40, 60, 80, 100, 120, 140, 160, 180, 200] if args.full else [20, 60, 120, 200]
    blocks = ["## Fig. 5 — effect of prediction length\n",
              "**Paper:** HPM error low and flat at every horizon; RMF error "
              "rises steeply (Car worst — sudden turns); HPM never exceeds "
              "RMF; Airplane is HPM's weakest dataset (few patterns).\n",
              "**Measured:**\n"]
    for name, ds in datasets.items():
        rows = run_prediction_length(ds, lengths, scale)
        blocks.append(f"### {name}\n")
        blocks.append(
            md_table(
                ["length", "HPM error", "RMF error", "fqp", "bqp", "motion"],
                [
                    [
                        r["prediction_length"],
                        r["hpm_error"],
                        r["rmf_error"],
                        r["hpm_methods"].get("fqp", 0),
                        r["hpm_methods"].get("bqp", 0),
                        r["hpm_methods"].get("motion", 0),
                    ]
                    for r in rows
                ],
            )
        )
        blocks.append(
            code_block(
                ascii_chart(
                    f"Fig. 5 ({name}) — mean error vs prediction length",
                    [r["prediction_length"] for r in rows],
                    {
                        "HPM": [max(r["hpm_error"], 1.0) for r in rows],
                        "RMF": [max(r["rmf_error"], 1.0) for r in rows],
                    },
                    log_y=True,
                )
            )
        )
    report.add("\n\n".join(blocks))

    # ------------------------------------------------------------------
    # Fig. 6
    # ------------------------------------------------------------------
    counts = [10, 20, 30, 40, 50, 60] if args.full else [5, 10, 20, 30]
    counts = [c for c in counts if c < scale.dataset_subtrajectories]
    blocks = ["## Fig. 6 — effect of sub-trajectories (prediction length 50)\n",
              "**Paper:** HPM error starts near RMF with little history, "
              "then drops steeply once enough sub-trajectories accumulate; "
              "RMF flat; HPM never exceeds RMF.\n",
              "**Deviation note:** our generator injects patterns strongly "
              "enough that the corpus saturates after ~10 sub-trajectories "
              "on the clean datasets, so the paper's high-error left end "
              "compresses into the first one or two points; the drop and "
              "the flat RMF line reproduce.\n",
              "**Measured:**\n"]
    for name, ds in datasets.items():
        rows = run_subtrajectories(ds, counts, scale, prediction_length=50)
        blocks.append(f"### {name}\n")
        blocks.append(
            md_table(
                ["subtrajectories", "HPM error", "RMF error", "patterns"],
                [
                    [r["num_subtrajectories"], r["hpm_error"], r["rmf_error"], r["num_patterns"]]
                    for r in rows
                ],
            )
        )
    report.add("\n\n".join(blocks))

    # ------------------------------------------------------------------
    # Fig. 7 / Fig. 8 / Fig. 9
    # ------------------------------------------------------------------
    eps_values = [22.0, 26.0, 30.0, 34.0, 38.0] if args.full else [22.0, 30.0, 38.0]
    blocks = ["## Fig. 7 — effect of Eps\n",
              "**Paper:** pattern counts grow strongly with Eps (up to ~65k "
              "for Bike); once patterns are sufficient, accuracy barely "
              "moves (Bike flat); weakly patterned Airplane only becomes "
              "accurate at large Eps.\n",
              "**Deviation note:** absolute pattern counts depend on route "
              "geometry (multi-route datasets carry more regions per "
              "offset), so the per-dataset count ordering differs from the "
              "paper's; the growth-with-Eps trend and the "
              "accuracy-once-sufficient behaviour are the reproduction "
              "targets.\n",
              "**Measured:**\n"]
    for name, ds in datasets.items():
        rows = run_eps(ds, eps_values, scale)
        blocks.append(f"### {name}\n")
        blocks.append(
            md_table(
                ["eps", "patterns", "HPM error"],
                [[r["eps"], r["num_patterns"], r["hpm_error"]] for r in rows],
            )
        )
    report.add("\n\n".join(blocks))

    minpts_values = [3, 4, 5, 6, 7] if args.full else [3, 5, 7]
    blocks = ["## Fig. 8 — effect of MinPts\n",
              "**Paper:** raising MinPts considerably reduces pattern "
              "counts; with too few patterns, errors rise significantly.\n",
              "**Measured:**\n"]
    for name, ds in datasets.items():
        rows = run_minpts(ds, minpts_values, scale)
        blocks.append(f"### {name}\n")
        blocks.append(
            md_table(
                ["min_pts", "patterns", "HPM error"],
                [[r["min_pts"], r["num_patterns"], r["hpm_error"]] for r in rows],
            )
        )
    report.add("\n\n".join(blocks))

    conf_values = (
        [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        if args.full
        else [0.0, 0.3, 0.6, 0.9]
    )
    blocks = ["## Fig. 9 — effect of minimum confidence\n",
              "**Paper:** pattern counts fall as the threshold rises; Bike's "
              "accuracy barely changes (only some patterns are useful); "
              "Airplane degrades sharply once ~60 % leaves it without "
              "enough patterns.\n",
              "**Measured:**\n"]
    for name, ds in datasets.items():
        rows = run_confidence(ds, conf_values, scale)
        blocks.append(f"### {name}\n")
        blocks.append(
            md_table(
                ["min_conf", "patterns", "HPM error"],
                [[r["min_confidence"], r["num_patterns"], r["hpm_error"]] for r in rows],
            )
        )
    report.add("\n\n".join(blocks))

    # ------------------------------------------------------------------
    # Fig. 10
    # ------------------------------------------------------------------
    qt_counts = [10, 20, 30, 40, 50, 60] if args.full else [5, 15, 30]
    qt_counts = [c for c in qt_counts if c < scale.dataset_subtrajectories]
    blocks = ["## Fig. 10 — query response time\n",
              "**Paper:** HPM's cost decreases as more patterns are "
              "discovered (fewer expensive RMF fallback calls); RMF flat "
              "(~15–25 ms on their P4/C++). Absolute ms are not "
              "comparable; the trend is.\n",
              "**Measured:**\n"]
    for name, ds in datasets.items():
        rows = run_query_time(ds, qt_counts, scale, num_queries=30)
        blocks.append(f"### {name}\n")
        blocks.append(
            md_table(
                ["subtrajectories", "HPM ms", "RMF ms", "motion fallbacks"],
                [
                    [r["num_subtrajectories"], r["hpm_ms"], r["rmf_ms"], r["motion_fallbacks"]]
                    for r in rows
                ],
            )
        )
    report.add("\n\n".join(blocks))

    # ------------------------------------------------------------------
    # Fig. 11
    # ------------------------------------------------------------------
    pattern_counts = [1000, 5000, 10000, 50000, 100000] if args.full else [1000, 5000, 10000]
    region_counts = [80, 400, 800] if args.full else [80, 400]
    rows = run_tpt_scaling(pattern_counts, region_counts, num_queries=50)
    chart = ascii_chart(
        "Fig. 11b — search cost vs corpus size (largest region count)",
        pattern_counts,
        {
            "TPT": [
                max(r["tpt_ms"], 1e-3)
                for r in rows
                if r["num_regions"] == region_counts[-1]
            ],
            "brute": [
                max(r["brute_ms"], 1e-3)
                for r in rows
                if r["num_regions"] == region_counts[-1]
            ],
        },
        log_y=True,
    )
    report.add(
        "## Fig. 11 — TPT storage and search cost\n\n"
        "**Paper:** (a) storage grows with patterns and with the number of "
        "frequent regions (key width), staying small (≤ ~35 MB at 100k "
        "patterns / 800 regions); (b) TPT search near-constant while brute "
        "force grows linearly.\n\n"
        "**Measured:**\n\n"
        + md_table(
            ["regions", "patterns", "storage MB", "TPT ms", "brute ms", "height"],
            [
                [
                    r["num_regions"],
                    r["num_patterns"],
                    round(r["storage_mb"], 3),
                    round(r["tpt_ms"], 3),
                    round(r["brute_ms"], 3),
                    r["tree_height"],
                ]
                for r in rows
            ],
        )
        + "\n\n"
        + code_block(chart)
    )

    # ------------------------------------------------------------------
    # Text-claim ablations
    # ------------------------------------------------------------------
    ablation_rows = [run_pruning_ablation(datasets[name], scale) for name in SCENARIO_NAMES]
    report.add(
        "## §IV — pruning effect\n\n"
        "**Paper:** \"58 % of trajectory patterns were reduced by the "
        "pruning effect.\"\n\n"
        "**Deviation note:** our corpus mines premise *pairs*, and each "
        "3-itemset admits six unpruned bipartitions vs one pruned rule, so "
        "the measured reduction lands above the paper's 58 % — same "
        "mechanism, heavier-tailed itemsets.\n\n**Measured:**\n\n"
        + md_table(
            ["dataset", "pruned", "unpruned", "reduction %"],
            [
                [r["dataset"], r["pruned_patterns"], r["unpruned_rules"], round(r["reduction_pct"], 1)]
                for r in ablation_rows
            ],
        )
    )

    weight_rows = []
    for name in SCENARIO_NAMES:
        weight_rows.extend(run_weight_functions(datasets[name], scale, prediction_length=30))
    report.add(
        "## §VI-A — weight functions\n\n"
        "**Paper:** \"the linear and the quadratic functions showed better "
        "prediction results among the weight functions.\"\n\n"
        "**Protocol note:** mined with premise length 3 so the families can "
        "disagree; with the default length-2 premises every intersecting "
        "candidate ties at S_r = 1 and all four families predict "
        "identically.\n\n**Measured:**\n\n"
        + md_table(
            ["dataset", "weight function", "HPM error"],
            [[r["dataset"], r["weight_function"], r["hpm_error"]] for r in weight_rows],
        )
    )

    relax_rows = []
    for name in SCENARIO_NAMES:
        relax_rows.extend(
            run_time_relaxation(datasets[name], scale, [1, 2, 3, 5, 8], prediction_length=100)
        )
    report.add(
        "## §VI-C — time relaxation\n\n"
        "**Paper:** \"the best prediction accuracy regarding to the time "
        "relaxation length t_eps was observed when 1 <= t_eps <= 3.\"\n\n"
        "**Measured:**\n\n"
        + md_table(
            ["dataset", "t_eps", "HPM error"],
            [[r["dataset"], r["time_relaxation"], r["hpm_error"]] for r in relax_rows],
        )
    )

    # ------------------------------------------------------------------
    # Beyond the paper: baselines and index ablations
    # ------------------------------------------------------------------
    base_rows = []
    for name in SCENARIO_NAMES:
        base_rows.extend(run_baseline_comparison(datasets[name], scale, [20, 100]))
    report.add(
        "## Extension — baseline tiers\n\n"
        "Periodic-mean shares HPM's periodicity insight without rules or "
        "recent-movement evidence; the HPM-vs-periodic-mean gap isolates "
        "what the rule machinery adds.\n\n"
        + md_table(
            ["dataset", "length", "HPM", "RMF", "linear", "poly", "periodic mean", "last pos"],
            [
                [
                    r["dataset"],
                    r["prediction_length"],
                    r["hpm"],
                    r["rmf"],
                    r["linear"],
                    r["polynomial"],
                    r["periodic_mean"],
                    r["last_position"],
                ]
                for r in base_rows
            ],
        )
    )

    topk_rows = []
    for name in SCENARIO_NAMES:
        topk_rows.extend(run_top_k(datasets[name], [1, 2, 3, 5], scale, prediction_length=100))
    report.add(
        "## Extension — best-of-k accuracy\n\n"
        "The paper returns top-k consequence centers but evaluates only "
        "k = 1. Measured: extra (deduplicated) candidates barely move "
        "best-of-k error — the residual error comes from off-pattern days "
        "no stored pattern covers, not from rank-1/rank-2 confusion, so "
        "top-1 already extracts most of the corpus's value.\n\n"
        + md_table(
            ["dataset", "k", "error@k"],
            [[r["dataset"], r["k"], r["error_at_k"]] for r in topk_rows],
        )
    )

    choose = run_chooseleaf_ablation(
        num_patterns=40000 if args.full else 10000, num_regions=300, num_queries=150
    )
    fanout_rows = run_fanout_ablation(
        [8, 16, 32, 64, 128], num_patterns=40000 if args.full else 10000, num_queries=150
    )
    report.add(
        "## Extension — index-design ablations\n\n"
        "**ChooseLeaf policy** (paper §V-B: the Intersect case \"is useful "
        "for efficient query processing ... cannot be achieved by the "
        "construction algorithm of signature tree\"):\n\n"
        + md_table(
            ["policy", "nodes visited / query"],
            [
                ["Algorithm 1 (paper)", round(choose["algorithm1_nodes_per_query"], 1)],
                ["generic signature tree", round(choose["generic_nodes_per_query"], 1)],
            ],
        )
        + "\n\n**Node fanout:**\n\n"
        + md_table(
            ["fanout", "build s", "search ms", "height", "storage MB"],
            [
                [r["fanout"], round(r["build_s"], 2), round(r["search_ms"], 3), r["height"], round(r["storage_mb"], 2)]
                for r in fanout_rows
            ],
        )
    )

    elapsed = time.time() - started
    protocol = "paper protocol (REPRO_FULL)" if args.full else "quick protocol"
    header = (
        "# EXPERIMENTS — paper vs measured\n\n"
        "Reproduction record for every table and figure of *A Hybrid "
        "Prediction Model for Moving Objects* (ICDE 2008).  Regenerate "
        f"with `python tools/generate_experiments_md.py{' --full' if args.full else ''}`.\n\n"
        f"Protocol: {protocol} — {scale.training_subtrajectories} training "
        f"sub-trajectories, {scale.num_queries} queries per point, "
        f"T = {scale.period}, defaults Eps = 30, MinPts = 4, "
        f"min confidence = 0.3, d = 60, k = 1.  Errors are mean Euclidean "
        "distances in the [0, 10000]² data space; latencies are Python "
        "wall-clock (the paper used a C++/Pentium-4 prototype — compare "
        f"shapes, not values).  Generated in {elapsed/60:.1f} min."
    )
    report.write(Path(args.output), header)
    print(f"\nwrote {args.output} in {elapsed/60:.1f} min", file=sys.stderr)


if __name__ == "__main__":
    main()
