"""Recursive Motion Function (Tao, Faloutsos, Papadias, Liu — SIGMOD 2004).

RMF is the paper's main comparator: "Recursive Motion Function (RMF) is the
most accurate prediction method among both types of motion functions in the
literature.  It formulates an object's location at time t as
``l_t = sum_{i=1}^{f} C_i · l_{t-i}``, where ``C_i`` is a constant matrix and
``f`` (called retrospect) is the minimum number of the most recent
timestamps which are needed to compute the elements of all ``C_i``."

Implementation notes
--------------------
* Fitting solves the least-squares system ``l_s ≈ Σ_i C_i l_{s-i}`` over the
  recent window with ``numpy.linalg.lstsq`` (SVD-based — matching the cubic
  SVD cost the paper attributes to RMF in its Fig. 10 discussion).
* An optional constant term turns the recurrence affine
  (``l_t = c_0 + Σ_i C_i l_{t-i}``), which markedly stabilises fits on
  near-stationary windows; it is on by default.
* Being an unstable linear recurrence, raw RMF forecasts can blow up
  exponentially for distant query times.  To keep distant-time errors
  finite (and plots readable) the per-step displacement is clamped to
  ``max_step_factor`` times the largest step observed in the fit window.
  The clamp *understates* RMF's distant-time error, so HPM-vs-RMF accuracy
  gaps measured against this implementation are conservative.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..trajectory.point import Point, TimedPoint
from .base import MotionFunction, validate_recent_movements

__all__ = ["RecursiveMotionFunction"]


class RecursiveMotionFunction(MotionFunction):
    """RMF with matrix coefficients fitted by SVD least squares.

    Parameters
    ----------
    retrospect:
        Number of past locations ``f`` in the recurrence (Tao et al. use
        small values; 5 by default).
    constant_term:
        Include an affine offset ``c_0`` in the recurrence.
    max_step_factor:
        Stability clamp: a forecast step may be at most this multiple of
        the largest observed step in the fit window (default 1.25 — the
        object may move slightly faster than observed but not
        exponentially so).  ``None`` disables clamping (pure recurrence).
    """

    def __init__(
        self,
        retrospect: int = 5,
        constant_term: bool = True,
        max_step_factor: float | None = 1.25,
    ):
        if retrospect < 1:
            raise ValueError(f"retrospect must be >= 1, got {retrospect}")
        if max_step_factor is not None and max_step_factor <= 0:
            raise ValueError(
                f"max_step_factor must be positive or None, got {max_step_factor}"
            )
        self.retrospect = retrospect
        self.constant_term = constant_term
        self.max_step_factor = max_step_factor
        self._coeffs: np.ndarray | None = None  # shape (2f [+1], 2)
        self._history: np.ndarray | None = None  # last f positions, oldest first
        self._last_t: int | None = None
        self._max_step: float | None = None
        self._cache: dict[int, Point] = {}
        # (time, last f positions) of the furthest walk so far: later
        # queries resume stepping from here instead of re-walking from the
        # fit window — the recurrence is deterministic, so the resumed
        # walk produces the exact same points.
        self._frontier: tuple[int, np.ndarray] | None = None

    @property
    def is_fitted(self) -> bool:
        return self._coeffs is not None

    def fit(self, recent: Sequence[TimedPoint]) -> "RecursiveMotionFunction":
        # The recurrence needs f past values per equation and at least as
        # many equations as unknowns to be determined; lstsq tolerates
        # under-determined systems, but demand f+2 samples so there is at
        # least one equation plus the seed history.
        samples = validate_recent_movements(recent, minimum=self.retrospect + 2)
        positions = np.array([[s.x, s.y] for s in samples], dtype=np.float64)
        f = self.retrospect
        n = len(positions)

        rows = []
        targets = []
        for s in range(f, n):
            lagged = positions[s - f : s][::-1].reshape(-1)  # l_{s-1}, ..., l_{s-f}
            if self.constant_term:
                lagged = np.concatenate([lagged, [1.0]])
            rows.append(lagged)
            targets.append(positions[s])
        design = np.array(rows, dtype=np.float64)
        target = np.array(targets, dtype=np.float64)
        coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)

        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        self._max_step = float(steps.max()) if steps.size else 0.0
        self._coeffs = coeffs
        self._history = positions[-f:].copy()
        self._last_t = int(samples[-1].t)
        self._cache = {}
        self._frontier = None
        return self

    def predict(self, t: int) -> Point:
        if not self.is_fitted:
            raise RuntimeError("RecursiveMotionFunction.predict called before fit")
        assert self._history is not None and self._last_t is not None
        if t <= self._last_t:
            raise ValueError(
                f"RMF only forecasts future times; query {t} <= last fit time "
                f"{self._last_t}"
            )
        if t in self._cache:
            return self._cache[t]

        # Every step between last_t and the frontier is in the cache, so a
        # cache miss is beyond the frontier: resume from it rather than
        # re-walking the whole span from the fit window.
        if self._frontier is not None and self._frontier[0] < t:
            current, history = self._frontier
        else:
            history = self._history.copy()  # oldest first, length f
            current = self._last_t
        point = Point(float(history[-1, 0]), float(history[-1, 1]))
        while current < t:
            nxt = self._step(history)
            history = np.vstack([history[1:], nxt])
            current += 1
            point = Point(float(nxt[0]), float(nxt[1]))
            self._cache[current] = point
        self._frontier = (current, history)
        return point

    def _step(self, history: np.ndarray) -> np.ndarray:
        """One recurrence step from the last ``f`` positions (oldest first)."""
        assert self._coeffs is not None
        lagged = history[::-1].reshape(-1)  # l_{t-1}, ..., l_{t-f}
        if self.constant_term:
            lagged = np.concatenate([lagged, [1.0]])
        nxt = lagged @ self._coeffs
        prev = history[-1]
        if not np.all(np.isfinite(nxt)):
            return prev.copy()  # degenerate fit: freeze in place
        if self.max_step_factor is not None and self._max_step is not None:
            step = nxt - prev
            norm = float(np.linalg.norm(step))
            limit = self.max_step_factor * max(self._max_step, 1e-12)
            if norm > limit:
                nxt = prev + step * (limit / norm)
        return nxt

    def coefficient_matrices(self) -> list[np.ndarray]:
        """The fitted matrices ``C_1 .. C_f`` (each ``2x2``)."""
        if not self.is_fitted:
            raise RuntimeError("coefficients unavailable before fit")
        assert self._coeffs is not None
        f = self.retrospect
        mats = []
        for i in range(f):
            # Rows 2i..2i+1 of the stacked coefficient matrix act on l_{t-(i+1)}.
            mats.append(self._coeffs[2 * i : 2 * i + 2].T.copy())
        return mats
