"""Linear motion model.

Section II-A: "Given an object's location l0 at time t0 and its velocity v0,
the linear models estimate the object's future location at time tq by using
the formula l(tq) = l0 + v0 x (tq - t0)."

Two velocity estimators are provided:

* ``"last"`` — velocity from the last two samples (the classic TPR-tree
  style instantaneous velocity);
* ``"least_squares"`` — a straight line fit over the whole recent window,
  which smooths GPS jitter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..trajectory.point import Point, TimedPoint
from .base import MotionFunction, validate_recent_movements

__all__ = ["LinearMotionFunction"]


class LinearMotionFunction(MotionFunction):
    """Constant-velocity extrapolation from recent movements."""

    def __init__(self, velocity_estimator: str = "last"):
        if velocity_estimator not in ("last", "least_squares"):
            raise ValueError(
                "velocity_estimator must be 'last' or 'least_squares', "
                f"got {velocity_estimator!r}"
            )
        self._estimator = velocity_estimator
        self._anchor_t: int | None = None
        self._anchor: np.ndarray | None = None
        self._velocity: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._velocity is not None

    def fit(self, recent: Sequence[TimedPoint]) -> "LinearMotionFunction":
        samples = validate_recent_movements(recent, minimum=2)
        times = np.array([s.t for s in samples], dtype=np.float64)
        positions = np.array([[s.x, s.y] for s in samples], dtype=np.float64)
        if self._estimator == "last":
            dt = times[-1] - times[-2]
            velocity = (positions[-1] - positions[-2]) / dt
            anchor = positions[-1]
        else:
            # Least-squares line fit per coordinate: l(t) = a + v t.
            design = np.column_stack([np.ones_like(times), times])
            coeffs, *_ = np.linalg.lstsq(design, positions, rcond=None)
            velocity = coeffs[1]
            anchor = coeffs[0] + coeffs[1] * times[-1]
        self._anchor_t = int(samples[-1].t)
        self._anchor = anchor
        self._velocity = velocity
        return self

    def predict(self, t: int) -> Point:
        if not self.is_fitted:
            raise RuntimeError("LinearMotionFunction.predict called before fit")
        assert self._anchor is not None and self._velocity is not None
        dt = float(t - self._anchor_t)
        loc = self._anchor + self._velocity * dt
        return Point(float(loc[0]), float(loc[1]))

    @property
    def velocity(self) -> Point:
        """Fitted velocity vector (units per timestamp)."""
        if not self.is_fitted:
            raise RuntimeError("velocity unavailable before fit")
        assert self._velocity is not None
        return Point(float(self._velocity[0]), float(self._velocity[1]))
