"""Motion-function interface.

Section VI: "The motion function can be any type (e.g., a linear function)
but Recursive Motion Function (RMF) is used for this study."  HPM treats the
motion function as a pluggable fallback, so the interface is a tiny
fit/predict protocol over recent timed samples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from ..trajectory.point import Point, TimedPoint

__all__ = ["MotionFunction", "MotionFunctionFactory", "validate_recent_movements"]


class MotionFunction(ABC):
    """A model of one object's recent motion, fit once and queried at any time."""

    @abstractmethod
    def fit(self, recent: Sequence[TimedPoint]) -> "MotionFunction":
        """Fit to the object's recent movements (chronologically ordered).

        Returns ``self`` for chaining.
        """

    @abstractmethod
    def predict(self, t: int) -> Point:
        """Predicted location at (future) global timestamp ``t``."""

    @property
    @abstractmethod
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called successfully."""


# Factory signature used by the HPM facade so each query can fit a fresh
# function on the query's own recent-movement window.
MotionFunctionFactory = Callable[[], MotionFunction]


def validate_recent_movements(
    recent: Sequence[TimedPoint], minimum: int
) -> list[TimedPoint]:
    """Check ordering/size of a recent-movement window and return it as a list.

    Raises ``ValueError`` when there are fewer than ``minimum`` samples or
    the timestamps are not strictly increasing and consecutive-friendly
    (strictly increasing is enough; gaps are tolerated).
    """
    samples = list(recent)
    if len(samples) < minimum:
        raise ValueError(
            f"need at least {minimum} recent samples, got {len(samples)}"
        )
    for a, b in zip(samples, samples[1:]):
        if b.t <= a.t:
            raise ValueError(
                f"recent movements must be strictly increasing in time "
                f"({a.t} followed by {b.t})"
            )
    return samples
