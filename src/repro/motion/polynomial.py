"""Polynomial motion model.

Section II-A's second motion-function family: "non-linear models that
consider not only linearity but also non-linear motions".  Before RMF,
the standard non-linear choice was a low-degree polynomial fit per
coordinate, ``l(t) = a_0 + a_1 t + ... + a_d t^d`` — it captures smooth
acceleration/turning but, like all motion functions, extrapolates poorly
at distant query times (polynomials diverge even faster than linear
models, which is precisely the failure mode HPM's patterns fix).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..trajectory.point import Point, TimedPoint
from .base import MotionFunction, validate_recent_movements

__all__ = ["PolynomialMotionFunction"]


class PolynomialMotionFunction(MotionFunction):
    """Least-squares polynomial extrapolation per coordinate.

    Parameters
    ----------
    degree:
        Polynomial degree (2 = constant acceleration).
    """

    def __init__(self, degree: int = 2):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self._coeffs: np.ndarray | None = None  # (degree+1, 2), low order first
        self._t0: int | None = None

    @property
    def is_fitted(self) -> bool:
        return self._coeffs is not None

    def fit(self, recent: Sequence[TimedPoint]) -> "PolynomialMotionFunction":
        samples = validate_recent_movements(recent, minimum=self.degree + 1)
        # Center times on the last sample for numerical conditioning.
        t_last = samples[-1].t
        times = np.array([s.t - t_last for s in samples], dtype=np.float64)
        positions = np.array([[s.x, s.y] for s in samples], dtype=np.float64)
        design = np.vander(times, self.degree + 1, increasing=True)
        coeffs, *_ = np.linalg.lstsq(design, positions, rcond=None)
        self._coeffs = coeffs
        self._t0 = int(t_last)
        return self

    def predict(self, t: int) -> Point:
        if not self.is_fitted:
            raise RuntimeError("PolynomialMotionFunction.predict called before fit")
        assert self._coeffs is not None and self._t0 is not None
        dt = float(t - self._t0)
        powers = np.array([dt**i for i in range(self.degree + 1)])
        loc = powers @ self._coeffs
        return Point(float(loc[0]), float(loc[1]))
