"""Motion-function substrate: linear extrapolation and RMF."""

from .base import MotionFunction, MotionFunctionFactory, validate_recent_movements
from .linear import LinearMotionFunction
from .polynomial import PolynomialMotionFunction
from .rmf import RecursiveMotionFunction

__all__ = [
    "LinearMotionFunction",
    "MotionFunction",
    "MotionFunctionFactory",
    "PolynomialMotionFunction",
    "RecursiveMotionFunction",
    "validate_recent_movements",
]
