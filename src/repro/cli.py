"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the library's operational loop:

* ``synth``    — generate one of the paper's scenario datasets to CSV;
* ``mine``     — fit an HPM on a trajectory CSV and save the model;
* ``predict``  — answer a predictive query against a saved model;
* ``evaluate`` — run an HPM-vs-RMF accuracy comparison on a dataset CSV.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .core.config import HPMConfig
from .core.model import HybridPredictionModel
from .core.persistence import load_model, save_model
from .datagen import SCENARIO_NAMES, make_dataset
from .trajectory.io import load_trajectory, save_trajectory
from .trajectory.point import TimedPoint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid Prediction Model for moving objects (ICDE 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="generate a scenario dataset CSV")
    synth.add_argument("scenario", choices=SCENARIO_NAMES)
    synth.add_argument("-o", "--output", required=True, help="output CSV path")
    synth.add_argument("--subtrajectories", type=int, default=80)
    synth.add_argument("--period", type=int, default=300)
    synth.add_argument("--seed", type=int, default=None)

    mine = sub.add_parser("mine", help="fit an HPM on a trajectory CSV")
    mine.add_argument("input", help="trajectory CSV (t,x,y)")
    mine.add_argument("-o", "--output", required=True, help="model .npz path")
    mine.add_argument("--period", type=int, required=True)
    mine.add_argument("--eps", type=float, default=30.0)
    mine.add_argument("--min-pts", type=int, default=4)
    mine.add_argument("--min-confidence", type=float, default=0.3)
    mine.add_argument("--distant-threshold", type=int, default=None)

    predict = sub.add_parser("predict", help="query a saved model")
    predict.add_argument("model", help="model .npz from `repro mine`")
    predict.add_argument(
        "--recent",
        required=True,
        help="recent movements as 't:x:y,t:x:y,...' (chronological)",
    )
    predict.add_argument("--time", type=int, required=True, help="query time tq")
    predict.add_argument("-k", type=int, default=1, help="number of answers")

    evaluate = sub.add_parser(
        "evaluate", help="HPM vs RMF accuracy on a trajectory CSV"
    )
    evaluate.add_argument("input", help="trajectory CSV (t,x,y)")
    evaluate.add_argument("--period", type=int, required=True)
    evaluate.add_argument("--training", type=int, required=True,
                          help="number of training sub-trajectories")
    evaluate.add_argument("--length", type=int, default=50,
                          help="prediction length")
    evaluate.add_argument("--queries", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_synth(args) -> int:
    dataset = make_dataset(
        args.scenario, args.subtrajectories, args.period, seed=args.seed
    )
    save_trajectory(dataset.trajectory, args.output)
    print(
        f"wrote {args.output}: {args.scenario}, "
        f"{dataset.num_subtrajectories} sub-trajectories x T={dataset.period}"
    )
    return 0


def _config_from(args) -> HPMConfig:
    distant = args.distant_threshold
    if distant is None:
        distant = max(1, min(60, args.period // 5))
    return HPMConfig(
        period=args.period,
        eps=args.eps,
        min_pts=args.min_pts,
        min_confidence=args.min_confidence,
        distant_threshold=distant,
    )


def _cmd_mine(args) -> int:
    trajectory = load_trajectory(args.input)
    model = HybridPredictionModel(_config_from(args))
    model.fit(trajectory)
    save_model(model, args.output)
    print(
        f"wrote {args.output}: {len(model.regions_)} frequent regions, "
        f"{model.pattern_count} trajectory patterns"
    )
    return 0


def _parse_recent(spec: str) -> list[TimedPoint]:
    samples = []
    for chunk in spec.split(","):
        parts = chunk.split(":")
        if len(parts) != 3:
            raise SystemExit(
                f"bad --recent entry {chunk!r}; expected t:x:y"
            )
        samples.append(TimedPoint(int(parts[0]), float(parts[1]), float(parts[2])))
    return samples


def _cmd_predict(args) -> int:
    model = load_model(args.model)
    recent = _parse_recent(args.recent)
    predictions = model.predict(recent, args.time, k=args.k)
    for rank, p in enumerate(predictions, 1):
        extra = f" score={p.score:.3f}" if p.score is not None else ""
        pattern = f" pattern={p.pattern}" if p.pattern is not None else ""
        print(
            f"#{rank} ({p.location.x:.1f}, {p.location.y:.1f}) "
            f"method={p.method}{extra}{pattern}"
        )
    return 0


def _cmd_evaluate(args) -> int:
    from .evalx.harness import evaluate_hpm, evaluate_rmf
    from .evalx.workloads import generate_queries
    from .trajectory.dataset import TrajectoryDataset

    trajectory = load_trajectory(args.input)
    dataset = TrajectoryDataset(
        name=Path(args.input).stem, trajectory=trajectory, period=args.period
    )

    class _A:  # reuse the mine-config plumbing
        period = args.period
        eps = 30.0
        min_pts = 4
        min_confidence = 0.3
        distant_threshold = None

    model = HybridPredictionModel(_config_from(_A))
    model.fit(dataset.training_split(args.training))
    workload = generate_queries(
        dataset,
        prediction_length=args.length,
        num_queries=args.queries,
        num_training_subtrajectories=args.training,
        rng=np.random.default_rng(args.seed),
    )
    hpm = evaluate_hpm(model, workload)
    rmf = evaluate_rmf(workload)
    print(f"patterns: {model.pattern_count}")
    print(f"HPM: mean error {hpm.mean_error:.1f} ({hpm.mean_query_ms:.2f} ms/query)")
    print(f"RMF: mean error {rmf.mean_error:.1f} ({rmf.mean_query_ms:.2f} ms/query)")
    print(f"HPM answered via: {hpm.method_counts}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "synth": _cmd_synth,
        "mine": _cmd_mine,
        "predict": _cmd_predict,
        "evaluate": _cmd_evaluate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
