"""Command-line interface: ``python -m repro <command>``.

Seven subcommands cover the library's operational loop:

* ``synth``    — generate one of the paper's scenario datasets to CSV;
* ``mine``     — fit an HPM on a trajectory CSV and save the model;
* ``fit``      — fit a whole fleet (one object per trajectory CSV) in
  parallel and write a fleet snapshot directory;
* ``predict``  — answer a predictive query against a saved model;
* ``evaluate`` — run an HPM-vs-RMF accuracy comparison on a dataset CSV;
* ``serve``    — run the asyncio prediction service over a saved model
  or fleet snapshot (see :mod:`repro.serve`);
* ``loadgen``  — replay a trajectory workload against a running server
  and report throughput/latency.

Sharded serving (see :mod:`repro.serve.shard`) adds three more:

* ``shard-serve``    — consistent-hash router + N shard-worker
  processes over one fleet snapshot, one listening port;
* ``shard-worker``   — a single shard worker (spawned by
  ``shard-serve``; also usable standalone for debugging);
* ``shard-snapshot`` — split a fleet snapshot into per-shard snapshots
  along the same ring, or merge a sharded snapshot back.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .core.config import HPMConfig
from .core.model import HybridPredictionModel
from .core.persistence import load_model, save_model
from .datagen import SCENARIO_NAMES, make_dataset
from .trajectory.io import load_trajectory, save_trajectory
from .trajectory.point import TimedPoint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid Prediction Model for moving objects (ICDE 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="generate a scenario dataset CSV")
    synth.add_argument("scenario", choices=SCENARIO_NAMES)
    synth.add_argument("-o", "--output", required=True, help="output CSV path")
    synth.add_argument("--subtrajectories", type=int, default=80)
    synth.add_argument("--period", type=int, default=300)
    synth.add_argument("--seed", type=int, default=None)

    mine = sub.add_parser("mine", help="fit an HPM on a trajectory CSV")
    mine.add_argument("input", help="trajectory CSV (t,x,y)")
    mine.add_argument("-o", "--output", required=True, help="model .npz path")
    mine.add_argument("--period", type=int, required=True)
    mine.add_argument("--eps", type=float, default=30.0)
    mine.add_argument("--min-pts", type=int, default=4)
    mine.add_argument("--min-confidence", type=float, default=0.3)
    mine.add_argument("--distant-threshold", type=int, default=None)

    fit = sub.add_parser(
        "fit", help="fit a fleet from trajectory CSVs (parallel) to a snapshot"
    )
    fit.add_argument(
        "inputs",
        nargs="+",
        help="trajectory CSVs (t,x,y), one object per file; object id = file stem",
    )
    fit.add_argument(
        "-o", "--output", required=True, help="fleet snapshot output directory"
    )
    fit.add_argument("--period", type=int, required=True)
    fit.add_argument("--eps", type=float, default=30.0)
    fit.add_argument("--min-pts", type=int, default=4)
    fit.add_argument("--min-confidence", type=float, default=0.3)
    fit.add_argument("--distant-threshold", type=int, default=None)
    fit.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel fit workers (default: serial)",
    )
    fit.add_argument(
        "--executor",
        choices=["process", "thread", "serial"],
        default="process",
        help="worker pool kind; 'thread' when fork is unavailable",
    )

    predict = sub.add_parser("predict", help="query a saved model")
    predict.add_argument("model", help="model .npz from `repro mine`")
    predict.add_argument(
        "--recent",
        required=True,
        help="recent movements as 't:x:y,t:x:y,...' (chronological)",
    )
    predict.add_argument("--time", type=int, required=True, help="query time tq")
    predict.add_argument("-k", type=int, default=1, help="number of answers")

    evaluate = sub.add_parser(
        "evaluate", help="HPM vs RMF accuracy on a trajectory CSV"
    )
    evaluate.add_argument("input", help="trajectory CSV (t,x,y)")
    evaluate.add_argument("--period", type=int, required=True)
    evaluate.add_argument("--training", type=int, required=True,
                          help="number of training sub-trajectories")
    evaluate.add_argument("--length", type=int, default=50,
                          help="prediction length")
    evaluate.add_argument("--queries", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="run the asyncio prediction service over a saved model"
    )
    serve.add_argument(
        "model",
        help="model .npz from `repro mine` or a fleet snapshot directory",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--object-id",
        default="default",
        help="object id assigned to a single-model .npz (ignored for snapshots)",
    )
    serve.add_argument("--cache-entries", type=int, default=4096,
                       help="LRU capacity of the prediction cache")
    serve.add_argument("--cache-ttl", type=float, default=30.0,
                       help="seconds a cached answer stays valid (0 disables caching)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="coalescing delay for concurrent predicts (0 disables batching)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="flush a batch early at this many distinct requests")
    serve.add_argument("--update-after", type=int, default=None,
                       help="refit an object after this many ingested fixes")
    serve.add_argument("--refit-mode", choices=("delta", "full"), default=None,
                       help="override the models' refit mode (default: model config, "
                            "normally delta — incremental re-mine + in-place TPT patch)")
    serve.add_argument("--refit-full-every", type=int, default=None,
                       help="force a full re-mine every Nth refit per object")
    serve.add_argument("--gap-policy", choices=("reject", "pad"), default="reject",
                       help="non-contiguous ingested fixes: reject the flush or pad "
                            "gaps with the last known position")
    serve.add_argument("--warmup-workers", type=int, default=None,
                       help="parallel workers for fleet-snapshot warm-up")
    serve.add_argument("--max-inflight-predict", type=int, default=256,
                       help="predict requests in flight before shedding (503)")
    serve.add_argument("--max-inflight-ingest", type=int, default=128,
                       help="ingest requests in flight before shedding (503)")
    serve.add_argument("--client-rate", type=float, default=0.0,
                       help="per-client rate limit in req/s (0 disables; 429 beyond it)")
    serve.add_argument("--client-burst", type=float, default=20.0,
                       help="per-client token-bucket burst allowance")
    serve.add_argument("--deadline-ms", type=float, default=10000.0,
                       help="default predict deadline in ms (0 disables)")
    serve.add_argument("--idle-timeout", type=float, default=60.0,
                       help="seconds before an idle/slow connection is reaped (0 disables)")
    serve.add_argument("--max-body-bytes", type=int, default=1_048_576,
                       help="request body budget in bytes (413 beyond it)")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="fault-injection seed (with the --chaos-* probabilities)")
    serve.add_argument("--chaos-latency", type=float, default=0.0,
                       help="probability of injected pre-handler latency")
    serve.add_argument("--chaos-errors", type=float, default=0.0,
                       help="probability of injected handler errors")
    serve.add_argument("--chaos-drops", type=float, default=0.0,
                       help="probability of injected connection drops")

    shard_serve = sub.add_parser(
        "shard-serve",
        help="route traffic across N shard-worker processes over a snapshot",
    )
    shard_serve.add_argument(
        "snapshot", help="fleet snapshot directory (plain or pre-split)"
    )
    shard_serve.add_argument("--shards", type=int, required=True,
                             help="number of shard-worker processes")
    shard_serve.add_argument("--host", default="127.0.0.1")
    shard_serve.add_argument("--port", type=int, default=8080,
                             help="router listening port")
    shard_serve.add_argument("--replicas", type=int, default=96,
                             help="consistent-hash virtual nodes per shard")
    shard_serve.add_argument("--salt", default="hpm-ring",
                             help="consistent-hash namespace")
    shard_serve.add_argument("--run-dir", default=None,
                             help="directory for worker logs/ready files (default: temp)")
    shard_serve.add_argument("--queue-depth", type=int, default=128,
                             help="bounded forwarding-queue depth per shard")
    shard_serve.add_argument("--forward-timeout", type=float, default=15.0,
                             help="seconds before a forwarded request fails over")
    shard_serve.add_argument("--probe-interval", type=float, default=0.25,
                             help="seconds between per-shard health probes")
    shard_serve.add_argument("--probe-fail-threshold", type=int, default=3,
                             help="consecutive probe failures before a shard is down")
    shard_serve.add_argument("--warmup-workers", type=int, default=None,
                             help="parallel warm-up workers inside each shard")
    shard_serve.add_argument("--grace", type=float, default=5.0,
                             help="drain grace on shutdown, router and workers")
    shard_serve.add_argument("--worker-arg", action="append", default=[],
                             help="extra flag passed to every shard worker (repeatable)")

    shard_worker = sub.add_parser(
        "shard-worker",
        help="serve one shard of a snapshot (spawned by shard-serve)",
    )
    shard_worker.add_argument("snapshot")
    shard_worker.add_argument("--shard-id", type=int, required=True)
    shard_worker.add_argument("--shards", type=int, required=True)
    shard_worker.add_argument("--host", default="127.0.0.1")
    shard_worker.add_argument("--port", type=int, default=0,
                              help="0 binds an ephemeral port (see --ready-file)")
    shard_worker.add_argument("--ready-file", default=None,
                              help="file to write the bound port into once accepting")
    shard_worker.add_argument("--replicas", type=int, default=96)
    shard_worker.add_argument("--salt", default="hpm-ring")
    shard_worker.add_argument("--grace", type=float, default=5.0,
                              help="drain grace on SIGTERM")
    shard_worker.add_argument("--warmup-workers", type=int, default=None)
    shard_worker.add_argument("--cache-ttl", type=float, default=30.0)
    shard_worker.add_argument("--batch-window-ms", type=float, default=2.0)
    shard_worker.add_argument("--update-after", type=int, default=None)
    shard_worker.add_argument("--refit-mode", choices=("delta", "full"), default=None)
    shard_worker.add_argument("--refit-full-every", type=int, default=None)
    shard_worker.add_argument("--gap-policy", choices=("reject", "pad"),
                              default="reject")
    shard_worker.add_argument("--no-mmap", dest="mmap", action="store_false",
                              help="materialize v2 snapshot blocks instead of "
                                   "memory-mapping them")

    shard_snapshot = sub.add_parser(
        "shard-snapshot",
        help="split a fleet snapshot into per-shard snapshots, or merge back",
    )
    ss_sub = shard_snapshot.add_subparsers(
        dest="shard_snapshot_command", required=True
    )
    ss_split = ss_sub.add_parser("split", help="fleet snapshot -> sharded snapshot")
    ss_split.add_argument("source", help="fleet snapshot directory")
    ss_split.add_argument("-o", "--output", required=True,
                          help="sharded snapshot output directory")
    ss_split.add_argument("--shards", type=int, required=True)
    ss_split.add_argument("--replicas", type=int, default=96)
    ss_split.add_argument("--salt", default="hpm-ring")
    ss_merge = ss_sub.add_parser("merge", help="sharded snapshot -> fleet snapshot")
    ss_merge.add_argument("source", help="sharded snapshot directory")
    ss_merge.add_argument("-o", "--output", required=True,
                          help="fleet snapshot output directory")

    convert = sub.add_parser(
        "snapshot-convert",
        help="convert a fleet snapshot between formats (v1 npz <-> v2 packed)",
    )
    convert.add_argument("source", help="fleet snapshot directory")
    convert.add_argument("-o", "--output", required=True,
                         help="converted snapshot output directory")
    convert.add_argument("--to", type=int, choices=(1, 2), default=2,
                         dest="target_format",
                         help="target format version (default: 2)")
    convert.add_argument("--max-workers", type=int, default=None)

    stat = sub.add_parser(
        "snapshot-stat",
        help="print a fleet snapshot's layout summary as JSON",
    )
    stat.add_argument("source", help="fleet snapshot directory")

    loadgen = sub.add_parser(
        "loadgen", help="replay a trajectory workload against a running server"
    )
    loadgen.add_argument("target", help="server address as host:port")
    loadgen.add_argument("--input", help="trajectory CSV to sample queries from")
    loadgen.add_argument("--scenario", choices=SCENARIO_NAMES,
                         help="synthesise the workload source instead of --input")
    loadgen.add_argument("--subtrajectories", type=int, default=40,
                         help="scenario size when using --scenario")
    loadgen.add_argument("--period", type=int, default=300,
                         help="scenario period when using --scenario")
    loadgen.add_argument("--object-id", default="default")
    loadgen.add_argument("--requests", type=int, default=500)
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--window", type=int, default=4,
                         help="recent-movement window length per query")
    loadgen.add_argument("--horizon", type=int, default=5,
                         help="maximum steps ahead a query asks about")
    loadgen.add_argument("--distinct", type=int, default=50,
                         help="distinct queries in the pool (cache hit control)")
    loadgen.add_argument("-k", type=int, default=None)
    loadgen.add_argument("--deadline-ms", type=float, default=None,
                         help="per-query deadline in ms (the goodput bar)")
    loadgen.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_synth(args) -> int:
    dataset = make_dataset(
        args.scenario, args.subtrajectories, args.period, seed=args.seed
    )
    save_trajectory(dataset.trajectory, args.output)
    print(
        f"wrote {args.output}: {args.scenario}, "
        f"{dataset.num_subtrajectories} sub-trajectories x T={dataset.period}"
    )
    return 0


def _config_from(args) -> HPMConfig:
    distant = args.distant_threshold
    if distant is None:
        distant = max(1, min(60, args.period // 5))
    return HPMConfig(
        period=args.period,
        eps=args.eps,
        min_pts=args.min_pts,
        min_confidence=args.min_confidence,
        distant_threshold=distant,
    )


def _cmd_mine(args) -> int:
    trajectory = load_trajectory(args.input)
    model = HybridPredictionModel(_config_from(args))
    model.fit(trajectory)
    save_model(model, args.output)
    print(
        f"wrote {args.output}: {len(model.regions_)} frequent regions, "
        f"{model.pattern_count} trajectory patterns"
    )
    return 0


def _cmd_fit(args) -> int:
    from .core.fleet import FleetFitError, FleetPredictionModel
    from .core.persistence import save_fleet

    histories = {}
    for input_path in args.inputs:
        object_id = Path(input_path).stem
        if object_id in histories:
            raise SystemExit(
                f"duplicate object id {object_id!r}; file stems must be unique"
            )
        histories[object_id] = load_trajectory(input_path)

    def progress(object_id: str, done: int, total: int) -> None:
        print(f"[{done}/{total}] fitted {object_id}")

    fleet = FleetPredictionModel(_config_from(args))
    try:
        fleet.fit(
            histories,
            max_workers=args.workers,
            executor=args.executor,
            progress=progress,
        )
    except FleetFitError as exc:
        for object_id, error in sorted(exc.failures.items()):
            print(f"error: {object_id}: {error}", file=sys.stderr)
        return 1
    save_fleet(fleet, args.output)
    print(
        f"wrote {args.output}: {len(fleet)} object(s), "
        f"{fleet.total_patterns()} trajectory patterns"
    )
    print(_fit_phase_line(fleet.fit_phase_totals()))
    return 0


def _fit_phase_line(totals: dict[str, float]) -> str:
    """Human-readable per-phase fit time, e.g. for `repro fit` output."""
    if not totals:
        return "fit phases: (no timing recorded)"
    parts = ", ".join(
        f"{phase}={totals[phase]:.2f}s"
        for phase in ("cluster", "mine", "index")
        if phase in totals
    )
    return f"fit phases: {parts}"


def _parse_recent(spec: str) -> list[TimedPoint]:
    samples = []
    for chunk in spec.split(","):
        parts = chunk.split(":")
        if len(parts) != 3:
            raise SystemExit(
                f"bad --recent entry {chunk!r}; expected t:x:y"
            )
        samples.append(TimedPoint(int(parts[0]), float(parts[1]), float(parts[2])))
    return samples


def _cmd_predict(args) -> int:
    model = load_model(args.model)
    recent = _parse_recent(args.recent)
    predictions = model.predict(recent, args.time, k=args.k)
    for rank, p in enumerate(predictions, 1):
        extra = f" score={p.score:.3f}" if p.score is not None else ""
        pattern = f" pattern={p.pattern}" if p.pattern is not None else ""
        print(
            f"#{rank} ({p.location.x:.1f}, {p.location.y:.1f}) "
            f"method={p.method}{extra}{pattern}"
        )
    return 0


def _cmd_evaluate(args) -> int:
    from .evalx.harness import evaluate_hpm, evaluate_rmf
    from .evalx.workloads import generate_queries
    from .trajectory.dataset import TrajectoryDataset

    trajectory = load_trajectory(args.input)
    dataset = TrajectoryDataset(
        name=Path(args.input).stem, trajectory=trajectory, period=args.period
    )

    class _A:  # reuse the mine-config plumbing
        period = args.period
        eps = 30.0
        min_pts = 4
        min_confidence = 0.3
        distant_threshold = None

    model = HybridPredictionModel(_config_from(_A))
    model.fit(dataset.training_split(args.training))
    workload = generate_queries(
        dataset,
        prediction_length=args.length,
        num_queries=args.queries,
        num_training_subtrajectories=args.training,
        rng=np.random.default_rng(args.seed),
    )
    hpm = evaluate_hpm(model, workload)
    rmf = evaluate_rmf(workload)
    print(f"patterns: {model.pattern_count}")
    print(f"HPM: mean error {hpm.mean_error:.1f} ({hpm.mean_query_ms:.2f} ms/query)")
    print(f"RMF: mean error {rmf.mean_error:.1f} ({rmf.mean_query_ms:.2f} ms/query)")
    print(f"HPM answered via: {hpm.method_counts}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .core.fleet import FleetPredictionModel
    from .core.persistence import load_fleet
    from .serve import (
        ChaosConfig,
        PredictionServer,
        PredictionService,
        ServeConfig,
    )

    path = Path(args.model)
    if path.is_dir():
        fleet = load_fleet(path, max_workers=args.warmup_workers)
        print(f"warmed up {len(fleet)} object(s); {_fit_phase_line(fleet.fit_phase_totals())}")
    else:
        model = load_model(path)
        fleet = FleetPredictionModel(model.config)
        fleet.adopt_object(args.object_id, model)
    chaos = None
    if args.chaos_latency > 0 or args.chaos_errors > 0 or args.chaos_drops > 0:
        chaos = ChaosConfig(
            seed=args.chaos_seed,
            latency_probability=args.chaos_latency,
            error_probability=args.chaos_errors,
            drop_probability=args.chaos_drops,
        )
    config = ServeConfig(
        cache_entries=args.cache_entries,
        cache_ttl=args.cache_ttl if args.cache_ttl > 0 else None,
        max_batch=args.max_batch,
        batch_delay=args.batch_window_ms / 1000.0,
        update_after=args.update_after,
        refit_mode=args.refit_mode,
        refit_full_every=args.refit_full_every,
        gap_policy=args.gap_policy,
        enable_cache=args.cache_ttl > 0,
        enable_batching=args.batch_window_ms > 0,
        max_inflight_predict=args.max_inflight_predict,
        max_inflight_ingest=args.max_inflight_ingest,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        default_deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        max_body_bytes=args.max_body_bytes,
        chaos=chaos,
    )
    service = PredictionService(fleet, config)
    server = PredictionServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(
            f"serving {len(fleet)} object(s) on "
            f"http://{args.host}:{server.port} (Ctrl-C to stop)"
        )
        await server.run_forever(handle_signals=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_shard_serve(args) -> int:
    import asyncio

    from .serve.shard import (
        RouterConfig,
        RouterServer,
        RouterService,
        ShardCluster,
    )

    router_config = RouterConfig(
        num_shards=args.shards,
        replicas=args.replicas,
        salt=args.salt,
        queue_depth=args.queue_depth,
        forward_timeout=args.forward_timeout,
        probe_interval=args.probe_interval,
        probe_fail_threshold=args.probe_fail_threshold,
    )
    worker_args = list(args.worker_arg)
    if args.warmup_workers is not None:
        worker_args += ["--warmup-workers", str(args.warmup_workers)]
    worker_args += ["--grace", str(args.grace)]

    async def run() -> None:
        service = RouterService(router_config)
        cluster = ShardCluster(
            args.snapshot,
            args.shards,
            host=args.host,
            replicas=args.replicas,
            salt=args.salt,
            run_dir=args.run_dir,
            worker_args=worker_args,
            on_ready=service.attach_shard,
            on_down=service.detach_shard,
        )
        await cluster.start()
        server = RouterServer(service, host=args.host, port=args.port)
        try:
            await server.start()
            print(
                f"router on http://{args.host}:{server.port} over "
                f"{args.shards} shard worker(s) (Ctrl-C to stop)"
            )
            await server.run_forever(handle_signals=True, grace=args.grace)
        finally:
            await cluster.stop(grace=args.grace + 5.0)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_shard_worker(args) -> int:
    import asyncio

    from .serve import ServeConfig
    from .serve.shard import run_worker

    config = ServeConfig(
        cache_ttl=args.cache_ttl if args.cache_ttl > 0 else None,
        enable_cache=args.cache_ttl > 0,
        batch_delay=args.batch_window_ms / 1000.0,
        enable_batching=args.batch_window_ms > 0,
        update_after=args.update_after,
        refit_mode=args.refit_mode,
        refit_full_every=args.refit_full_every,
        gap_policy=args.gap_policy,
    )
    try:
        return asyncio.run(
            run_worker(
                args.snapshot,
                args.shard_id,
                args.shards,
                host=args.host,
                port=args.port,
                ready_file=args.ready_file,
                replicas=args.replicas,
                salt=args.salt,
                config=config,
                grace=args.grace,
                max_workers=args.warmup_workers,
                mmap=args.mmap,
            )
        )
    except KeyboardInterrupt:
        return 0


def _cmd_shard_snapshot(args) -> int:
    from .serve.shard import merge_snapshot, split_snapshot

    if args.shard_snapshot_command == "split":
        placement = split_snapshot(
            args.source,
            args.output,
            args.shards,
            replicas=args.replicas,
            salt=args.salt,
        )
        total = sum(len(ids) for ids in placement.values())
        print(
            f"wrote {args.output}: {total} object(s) split over "
            f"{args.shards} shard(s)"
        )
        for shard_id, ids in sorted(placement.items()):
            print(f"  shard {shard_id}: {len(ids)} object(s)")
    else:
        merged = merge_snapshot(args.source, args.output)
        print(f"wrote {args.output}: merged {len(merged)} object(s)")
    return 0


def _cmd_snapshot_convert(args) -> int:
    from .core.persistence import convert_snapshot

    count = convert_snapshot(
        args.source,
        args.output,
        format=args.target_format,
        max_workers=args.max_workers,
    )
    print(
        f"wrote {args.output}: {count} object(s) as format v{args.target_format}"
    )
    return 0


def _cmd_snapshot_stat(args) -> int:
    import json as _json

    from .core.snapshot2 import snapshot_stat

    print(_json.dumps(snapshot_stat(args.source), indent=2))
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from .serve.loadgen import build_workload, run_loadgen

    host, _, port_text = args.target.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(f"bad target {args.target!r}; expected host:port")
    if args.input:
        trajectory = load_trajectory(args.input)
    elif args.scenario:
        dataset = make_dataset(
            args.scenario, args.subtrajectories, args.period, seed=args.seed
        )
        trajectory = dataset.trajectory
    else:
        raise SystemExit("loadgen needs --input or --scenario")
    workload = build_workload(
        trajectory,
        object_id=args.object_id,
        requests=args.requests,
        window=args.window,
        max_horizon=args.horizon,
        distinct=args.distinct,
        k=args.k,
        deadline_ms=args.deadline_ms,
        rng=np.random.default_rng(args.seed),
    )
    report = asyncio.run(
        run_loadgen(host, int(port_text), workload, concurrency=args.concurrency)
    )
    print(report.format())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "synth": _cmd_synth,
        "mine": _cmd_mine,
        "fit": _cmd_fit,
        "predict": _cmd_predict,
        "evaluate": _cmd_evaluate,
        "serve": _cmd_serve,
        "shard-serve": _cmd_shard_serve,
        "shard-worker": _cmd_shard_worker,
        "shard-snapshot": _cmd_shard_snapshot,
        "snapshot-convert": _cmd_snapshot_convert,
        "snapshot-stat": _cmd_snapshot_stat,
        "loadgen": _cmd_loadgen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
