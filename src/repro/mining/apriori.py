"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).

The paper derives trajectory patterns by "modify[ing] the apriori algorithm
to generate trajectory patterns from the frequent regions discovered"
(Section IV).  This module implements the generic level-wise algorithm over
transactions of hashable items; the trajectory-specific constraints (time
monotonicity, single consequence) live in :mod:`repro.core.patterns` and
:mod:`repro.mining.rules`.

The implementation follows the textbook structure:

1. Count 1-itemsets, keep those with support >= ``min_support``.
2. Join: candidates of length ``k`` from frequent ``(k-1)``-itemsets sharing
   a ``(k-2)``-prefix (in a canonical item order).
3. Prune: drop candidates with an infrequent ``(k-1)``-subset (downward
   closure).
4. Count candidates and iterate.

Items are interned into one canonical order per mining run (frequent items
sorted by ``repr``, a total order over arbitrary — including mixed-type —
hashables); every itemset thereafter is an ascending tuple of item *ids*,
so the join/prune levels never re-sort or re-wrap item objects.

Two counting backends are offered:

* ``backend="bitmap"`` (default) — vertical counting: each frequent item
  carries the bitset of transactions containing it (built with
  :mod:`repro.signature.bitset`), and a candidate's support is the
  popcount of its parent's bitset AND-ed with the joined item's bitset —
  one big-int AND per candidate instead of a scan over all transactions.
* ``backend="scan"`` — the textbook O(candidates × transactions) subset
  scan, kept as the oracle the equivalence tests check the bitmaps
  against.

Both backends produce identical results (same itemsets, same supports).

An optional ``candidate_filter`` lets callers reject candidates that can
never be useful (the paper's pruning of same-offset combinations), cutting
work before the counting step.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, Sequence

from ..signature import bitset

__all__ = ["find_frequent_itemsets", "itemset_support"]

Item = Hashable
Itemset = frozenset

_BACKENDS = ("bitmap", "scan")


def find_frequent_itemsets(
    transactions: Sequence[Iterable[Item]],
    min_support: int,
    max_length: int | None = None,
    candidate_filter: Callable[[Itemset], bool] | None = None,
    backend: str = "bitmap",
) -> dict[Itemset, int]:
    """Mine all itemsets appearing in at least ``min_support`` transactions.

    Parameters
    ----------
    transactions:
        A sequence of item collections; duplicates within a transaction are
        ignored.
    min_support:
        Absolute support threshold (count of transactions), >= 1.
    max_length:
        Optional cap on itemset length.
    candidate_filter:
        Optional predicate; a candidate itemset is only counted when the
        filter returns ``True``.  Must be *anti-monotone-safe*: rejecting an
        itemset also rejects all its supersets from consideration, so only
        use predicates where no useful superset survives a rejected subset.
    backend:
        ``"bitmap"`` (vertical bitset counting, default) or ``"scan"``
        (subset-scan oracle); see the module docstring.

    Returns
    -------
    dict mapping each frequent itemset (as ``frozenset``) to its support.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if max_length is not None and max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")

    sets = [frozenset(t) for t in transactions]

    # Level 1: one pass counting each item and (for the bitmap backend)
    # collecting its transaction-id occurrence list.
    counts: dict[Item, int] = {}
    occurrences: dict[Item, list[int]] = {}
    for tid, t in enumerate(sets):
        for item in t:
            if item in counts:
                counts[item] += 1
                occurrences[item].append(tid)
            else:
                counts[item] = 1
                occurrences[item] = [tid]

    frequent_items = [item for item, c in counts.items() if c >= min_support]
    if candidate_filter is not None:
        frequent_items = [
            item for item in frequent_items if candidate_filter(frozenset((item,)))
        ]
    result: dict[Itemset, int] = {
        frozenset((item,)): counts[item] for item in frequent_items
    }
    if max_length == 1 or len(frequent_items) < 2:
        return result

    # Canonical item order for the whole run: repr gives a total order
    # over arbitrary (mixed-type) hashables; itemsets become ascending
    # id tuples from here on.
    items: list[Item] = sorted(frequent_items, key=repr)
    if backend == "bitmap":
        item_masks = [bitset.from_indices(occurrences[item]) for item in items]
        level_masks: dict[tuple[int, ...], int] = {
            (i,): item_masks[i] for i in range(len(items))
        }

    current_level: list[tuple[int, ...]] = [(i,) for i in range(len(items))]
    k = 2
    while current_level and (max_length is None or k <= max_length):
        candidates = _generate_candidates(current_level)
        if candidate_filter is not None:
            candidates = [
                c
                for c in candidates
                if candidate_filter(frozenset(items[i] for i in c))
            ]
        if not candidates:
            break

        if backend == "bitmap":
            # Candidate support = popcount of the joined bitsets; the
            # join guarantees c[:-1] was frequent at the previous level,
            # so its mask is already cached.
            candidate_masks = {
                c: level_masks[c[:-1]] & item_masks[c[-1]] for c in candidates
            }
            level_counts = {
                c: mask.bit_count() for c, mask in candidate_masks.items()
            }
        else:
            as_sets = {c: frozenset(items[i] for i in c) for c in candidates}
            scan_counts = _count_candidates(list(as_sets.values()), sets)
            level_counts = {c: scan_counts[as_sets[c]] for c in candidates}

        next_level = [c for c in candidates if level_counts[c] >= min_support]
        for c in next_level:
            result[frozenset(items[i] for i in c)] = level_counts[c]
        if backend == "bitmap":
            level_masks = {c: candidate_masks[c] for c in next_level}
        current_level = next_level
        k += 1
    return result


def _generate_candidates(
    previous_level: Sequence[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Join + prune over ascending item-id tuples.

    Two frequent ``(k-1)``-itemsets sharing their first ``k-2`` ids join
    into an ascending ``k``-tuple (the classic Apriori join — ascending
    ids make the result canonical and duplicate-free by construction);
    candidates with an infrequent ``(k-1)``-subset are pruned (downward
    closure).
    """
    prev_set = set(previous_level)
    sorted_prev = sorted(previous_level)
    candidates: list[tuple[int, ...]] = []
    n = len(sorted_prev)
    for i in range(n):
        a = sorted_prev[i]
        prefix = a[:-1]
        for j in range(i + 1, n):
            b = sorted_prev[j]
            if b[:-1] != prefix:
                break  # sorted order: no later j can share the prefix either
            candidate = a + (b[-1],)
            if _all_subsets_frequent(candidate, prev_set):
                candidates.append(candidate)
    return candidates


def _all_subsets_frequent(
    candidate: tuple[int, ...], prev_set: set[tuple[int, ...]]
) -> bool:
    """Downward-closure check: every (k-1)-subset must be frequent."""
    for pos in range(len(candidate)):
        if candidate[:pos] + candidate[pos + 1 :] not in prev_set:
            return False
    return True


def _count_candidates(
    candidates: Sequence[Itemset], transactions: Sequence[frozenset]
) -> dict[Itemset, int]:
    """Count each candidate's support with a subset scan (oracle backend)."""
    counts: dict[Itemset, int] = {c: 0 for c in candidates}
    for t in transactions:
        if len(t) < 2:
            continue
        for c in candidates:
            if c <= t:
                counts[c] += 1
    return counts


def itemset_support(
    itemset: Iterable[Item], transactions: Sequence[Iterable[Item]]
) -> int:
    """Exact support of one itemset (used by tests as an oracle)."""
    target = frozenset(itemset)
    return sum(1 for t in transactions if target <= frozenset(t))


def support_of(
    itemsets: Mapping[Itemset, int], items: Iterable[Item]
) -> int:
    """Look up the mined support of ``items``; 0 when not frequent."""
    return itemsets.get(frozenset(items), 0)
