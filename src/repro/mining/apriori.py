"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).

The paper derives trajectory patterns by "modify[ing] the apriori algorithm
to generate trajectory patterns from the frequent regions discovered"
(Section IV).  This module implements the generic level-wise algorithm over
transactions of hashable items; the trajectory-specific constraints (time
monotonicity, single consequence) live in :mod:`repro.core.patterns` and
:mod:`repro.mining.rules`.

The implementation follows the textbook structure:

1. Count 1-itemsets, keep those with support >= ``min_support``.
2. Join: candidates of length ``k`` from frequent ``(k-1)``-itemsets sharing
   a ``(k-2)``-prefix (in a canonical item order).
3. Prune: drop candidates with an infrequent ``(k-1)``-subset (downward
   closure).
4. Count candidates against the transactions and iterate.

An optional ``candidate_filter`` lets callers reject candidates that can
never be useful (the paper's pruning of same-offset combinations), cutting
work before the counting scan.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Mapping, Sequence

__all__ = ["find_frequent_itemsets", "itemset_support"]

Item = Hashable
Itemset = frozenset


def find_frequent_itemsets(
    transactions: Sequence[Iterable[Item]],
    min_support: int,
    max_length: int | None = None,
    candidate_filter: Callable[[Itemset], bool] | None = None,
) -> dict[Itemset, int]:
    """Mine all itemsets appearing in at least ``min_support`` transactions.

    Parameters
    ----------
    transactions:
        A sequence of item collections; duplicates within a transaction are
        ignored.
    min_support:
        Absolute support threshold (count of transactions), >= 1.
    max_length:
        Optional cap on itemset length.
    candidate_filter:
        Optional predicate; a candidate itemset is only counted when the
        filter returns ``True``.  Must be *anti-monotone-safe*: rejecting an
        itemset also rejects all its supersets from consideration, so only
        use predicates where no useful superset survives a rejected subset.

    Returns
    -------
    dict mapping each frequent itemset (as ``frozenset``) to its support.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if max_length is not None and max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")

    sets = [frozenset(t) for t in transactions]

    # Level 1: plain counting.
    counts: dict[Item, int] = defaultdict(int)
    for t in sets:
        for item in t:
            counts[item] += 1
    frequent: dict[Itemset, int] = {
        frozenset((item,)): c for item, c in counts.items() if c >= min_support
    }
    if candidate_filter is not None:
        frequent = {s: c for s, c in frequent.items() if candidate_filter(s)}

    result: dict[Itemset, int] = dict(frequent)
    k = 2
    current_level = list(frequent)
    while current_level and (max_length is None or k <= max_length):
        candidates = _generate_candidates(current_level, k)
        if candidate_filter is not None:
            candidates = [c for c in candidates if candidate_filter(c)]
        if not candidates:
            break
        level_counts = _count_candidates(candidates, sets)
        next_level = [c for c in candidates if level_counts[c] >= min_support]
        for c in next_level:
            result[c] = level_counts[c]
        current_level = next_level
        k += 1
    return result


def _generate_candidates(previous_level: Sequence[Itemset], k: int) -> list[Itemset]:
    """Join + prune step producing length-``k`` candidates.

    Items are ordered by ``repr`` to get a canonical total order over
    arbitrary hashable items; the join merges two itemsets sharing their
    first ``k-2`` items.
    """
    prev_set = set(previous_level)
    sorted_prev = [tuple(sorted(s, key=repr)) for s in previous_level]
    sorted_prev.sort()
    candidates: list[Itemset] = []
    seen: set[Itemset] = set()
    n = len(sorted_prev)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = sorted_prev[i], sorted_prev[j]
            if a[: k - 2] != b[: k - 2]:
                break  # sorted order: no later j can share the prefix either
            candidate = frozenset(a) | frozenset((b[-1],))
            if len(candidate) != k or candidate in seen:
                continue
            if _all_subsets_frequent(candidate, prev_set):
                seen.add(candidate)
                candidates.append(candidate)
    return candidates


def _all_subsets_frequent(candidate: Itemset, prev_set: set[Itemset]) -> bool:
    """Downward-closure check: every (k-1)-subset must be frequent."""
    for item in candidate:
        if candidate - {item} not in prev_set:
            return False
    return True


def _count_candidates(
    candidates: Sequence[Itemset], transactions: Sequence[frozenset]
) -> dict[Itemset, int]:
    """Count each candidate's support with a subset scan."""
    counts: dict[Itemset, int] = {c: 0 for c in candidates}
    for t in transactions:
        if len(t) < 2:
            continue
        for c in candidates:
            if c <= t:
                counts[c] += 1
    return counts


def itemset_support(
    itemset: Iterable[Item], transactions: Sequence[Iterable[Item]]
) -> int:
    """Exact support of one itemset (used by tests as an oracle)."""
    target = frozenset(itemset)
    return sum(1 for t in transactions if target <= frozenset(t))


def support_of(
    itemsets: Mapping[Itemset, int], items: Iterable[Item]
) -> int:
    """Look up the mined support of ``items``; 0 when not frequent."""
    return itemsets.get(frozenset(items), 0)
