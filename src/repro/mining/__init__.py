"""Mining substrate: Apriori frequent itemsets and association rules."""

from .apriori import find_frequent_itemsets, itemset_support
from .rules import AssociationRule, generate_rules, generate_rules_unpruned

__all__ = [
    "AssociationRule",
    "find_frequent_itemsets",
    "generate_rules",
    "generate_rules_unpruned",
    "itemset_support",
]
