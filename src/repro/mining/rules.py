"""Association-rule generation over mined frequent itemsets.

Two generators are provided:

* :func:`generate_rules` — the paper's *pruned* generator (Section IV).
  Given an item ordering (for trajectory patterns: the time offset), it
  emits at most one rule per frequent itemset: premise = all items but the
  maximum, consequence = the single maximum item.  This realises both
  pruning rules:

  - time monotonicity — the consequence is strictly after every premise
    item, so no rule "predicts past positions from future movements";
  - single consequence — Theorem 1 shows a multi-item-consequence rule is
    never selected over its single-consequence sibling, because
    ``conf(s -> f ∧ s2) <= conf(s -> f)``.

* :func:`generate_rules_unpruned` — the textbook Apriori generator emitting
  every non-empty premise/consequence split.  It exists purely as the
  baseline for the pruning-effect ablation (the paper reports the pruning
  removed 58 % of patterns).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Hashable, Mapping

__all__ = ["AssociationRule", "generate_rules", "generate_rules_unpruned"]

Item = Hashable
Itemset = frozenset


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``premise -> consequence`` with confidence and support.

    ``support`` is the count of transactions containing premise and
    consequence together; ``confidence = support / support(premise)``.
    """

    premise: frozenset
    consequence: frozenset
    support: int
    confidence: float

    def __post_init__(self) -> None:
        if not self.premise:
            raise ValueError("rule premise must be non-empty")
        if not self.consequence:
            raise ValueError("rule consequence must be non-empty")
        if self.premise & self.consequence:
            raise ValueError("premise and consequence must be disjoint")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")

    def __str__(self) -> str:
        prem = " ∧ ".join(sorted(map(str, self.premise)))
        cons = " ∧ ".join(sorted(map(str, self.consequence)))
        return f"{prem} --{self.confidence:.2f}--> {cons}"


def generate_rules(
    itemsets: Mapping[Itemset, int],
    min_confidence: float,
    order_key: Callable[[Item], object],
) -> list[AssociationRule]:
    """Generate the paper's pruned rules from frequent itemsets.

    Parameters
    ----------
    itemsets:
        Frequent itemsets with supports, as returned by
        :func:`repro.mining.apriori.find_frequent_itemsets`.
    min_confidence:
        Rules below this confidence are discarded (the paper's
        ``minimum confidence``, default 0.3 in the experiments).
    order_key:
        Total order over items; the single consequence is the *maximum*
        item under this key (for trajectory patterns, the latest time
        offset).

    Only itemsets of size >= 2 produce rules.
    """
    _check_confidence(min_confidence)
    rules: list[AssociationRule] = []
    for itemset, support in itemsets.items():
        if len(itemset) < 2:
            continue
        consequence_item = max(itemset, key=order_key)
        premise = itemset - {consequence_item}
        premise_support = itemsets.get(premise)
        if premise_support is None:
            # Downward closure guarantees the premise is frequent; a missing
            # entry means the caller passed an inconsistent itemset map.
            raise ValueError(f"premise {set(premise)} missing from itemsets")
        confidence = support / premise_support
        if confidence >= min_confidence:
            rules.append(
                AssociationRule(
                    premise=premise,
                    consequence=frozenset((consequence_item,)),
                    support=support,
                    confidence=confidence,
                )
            )
    return rules


def generate_rules_unpruned(
    itemsets: Mapping[Itemset, int],
    min_confidence: float,
) -> list[AssociationRule]:
    """Textbook rule generation: every premise/consequence bipartition.

    For each frequent itemset of size k this enumerates all ``2^k - 2``
    splits, including multi-item consequences and time-order-violating
    rules.  Used only by the pruning-effect ablation benchmark.
    """
    _check_confidence(min_confidence)
    rules: list[AssociationRule] = []
    for itemset, support in itemsets.items():
        if len(itemset) < 2:
            continue
        items = sorted(itemset, key=repr)
        for r in range(1, len(items)):
            for premise_tuple in combinations(items, r):
                premise = frozenset(premise_tuple)
                consequence = itemset - premise
                premise_support = itemsets.get(premise)
                if premise_support is None:
                    raise ValueError(
                        f"premise {set(premise)} missing from itemsets"
                    )
                confidence = support / premise_support
                if confidence >= min_confidence:
                    rules.append(
                        AssociationRule(
                            premise=premise,
                            consequence=consequence,
                            support=support,
                            confidence=confidence,
                        )
                    )
    return rules


def _check_confidence(min_confidence: float) -> None:
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in [0, 1], got {min_confidence}")
