"""Evaluation harness: run workloads against predictors, measure error & latency.

Mirrors the paper's protocol — per-query Euclidean distance error averaged
over the workload (accuracy experiments, Figs. 5–9) and mean per-query wall
time (cost experiments, Fig. 10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.model import HybridPredictionModel
from ..motion.base import MotionFunction, MotionFunctionFactory
from ..motion.linear import LinearMotionFunction
from ..motion.rmf import RecursiveMotionFunction
from ..trajectory.metrics import ErrorSummary, summarize_errors
from .workloads import PredictiveQuery, QueryWorkload

__all__ = [
    "EvaluationResult",
    "evaluate_baseline",
    "evaluate_hpm",
    "evaluate_motion_function",
    "evaluate_rmf",
    "evaluate_linear",
]


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy and latency of one predictor over one workload."""

    predictor: str
    errors: tuple[float, ...]
    mean_error: float
    summary: ErrorSummary
    mean_query_ms: float
    method_counts: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"{self.predictor}: mean_error={self.mean_error:.1f} "
            f"mean_query={self.mean_query_ms:.2f}ms ({self.summary})"
        )


def evaluate_hpm(
    model: HybridPredictionModel, workload: QueryWorkload | Sequence[PredictiveQuery]
) -> EvaluationResult:
    """Run every query through a fitted HPM and aggregate errors/latency.

    Top-1 predictions are scored (the paper evaluates with k = 1).
    """
    queries = _queries_of(workload)
    errors: list[float] = []
    methods: dict[str, int] = {"fqp": 0, "bqp": 0, "motion": 0}
    start = time.perf_counter()
    for query in queries:
        prediction = model.predict_one(list(query.recent), query.query_time)
        errors.append(prediction.location.distance_to(query.truth))
        methods[prediction.method] = methods.get(prediction.method, 0) + 1
    elapsed = time.perf_counter() - start
    return _result("hpm", errors, elapsed, len(queries), methods)


def evaluate_baseline(
    predictor,
    workload: QueryWorkload | Sequence[PredictiveQuery],
    name: str,
) -> EvaluationResult:
    """Evaluate any object exposing ``predict(recent, query_time) -> Point``.

    Used for the non-motion baselines (periodic mean, last position).
    """
    queries = _queries_of(workload)
    errors: list[float] = []
    start = time.perf_counter()
    for query in queries:
        predicted = predictor.predict(list(query.recent), query.query_time)
        errors.append(predicted.distance_to(query.truth))
    elapsed = time.perf_counter() - start
    return _result(name, errors, elapsed, len(queries), {})


def evaluate_motion_function(
    factory: MotionFunctionFactory,
    workload: QueryWorkload | Sequence[PredictiveQuery],
    name: str = "motion",
) -> EvaluationResult:
    """Evaluate a bare motion function: fit per query on the recent window.

    This is the comparator protocol — RMF "construct[s] and train[s]
    itself" on the recent movements of each query before predicting.
    """
    queries = _queries_of(workload)
    errors: list[float] = []
    start = time.perf_counter()
    for query in queries:
        func: MotionFunction = factory()
        try:
            func.fit(list(query.recent))
            predicted = func.predict(query.query_time)
        except ValueError:
            # Window too short for this function; fall back to linear.
            fallback = LinearMotionFunction()
            fallback.fit(list(query.recent))
            predicted = fallback.predict(query.query_time)
        errors.append(predicted.distance_to(query.truth))
    elapsed = time.perf_counter() - start
    return _result(name, errors, elapsed, len(queries), {})


def evaluate_rmf(
    workload: QueryWorkload | Sequence[PredictiveQuery],
    retrospect: int = 5,
) -> EvaluationResult:
    """Evaluate the paper's comparator (RMF) over a workload."""
    return evaluate_motion_function(
        lambda: RecursiveMotionFunction(retrospect=retrospect), workload, name="rmf"
    )


def evaluate_linear(
    workload: QueryWorkload | Sequence[PredictiveQuery],
) -> EvaluationResult:
    """Evaluate the linear motion baseline over a workload."""
    return evaluate_motion_function(LinearMotionFunction, workload, name="linear")


def _queries_of(
    workload: QueryWorkload | Sequence[PredictiveQuery],
) -> Sequence[PredictiveQuery]:
    if isinstance(workload, QueryWorkload):
        return workload.queries
    return list(workload)


def _result(
    name: str,
    errors: list[float],
    elapsed_s: float,
    num_queries: int,
    methods: dict[str, int],
) -> EvaluationResult:
    summary = summarize_errors(errors)
    return EvaluationResult(
        predictor=name,
        errors=tuple(errors),
        mean_error=summary.mean,
        summary=summary,
        mean_query_ms=1000.0 * elapsed_s / max(num_queries, 1),
        method_counts=methods,
    )
