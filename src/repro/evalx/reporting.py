"""Plain-text rendering of experiment series (the benches print these)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """ASCII table with right-aligned numeric columns.

    Floats are rendered with one decimal; everything else via ``str``.
    """
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A titled table block, ready for printing."""
    table = format_table(headers, rows)
    bar = "=" * max(len(title), 8)
    return f"\n{title}\n{bar}\n{table}\n"


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
