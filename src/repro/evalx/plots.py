"""Terminal plots for experiment series.

The paper presents its evaluation as small line charts; these helpers
render comparable ASCII charts so a full reproduction run can be read at
a glance in CI logs.  Log-scaled rendering is available because several
figures (Fig. 5, Fig. 11b) span orders of magnitude.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    title: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render one or more series as an ASCII line chart.

    Parameters
    ----------
    title:
        Chart heading.
    x_values:
        Shared x coordinates (ascending).
    series:
        Mapping of series name to y values (same length as ``x_values``).
    width / height:
        Plot-area size in characters.
    log_y:
        Log-scale the y axis (zeros clamped to the smallest positive y).
    """
    if not series:
        raise ValueError("need at least one series")
    xs = [float(x) for x in x_values]
    if len(xs) < 2:
        raise ValueError("need at least two x values")
    if xs != sorted(xs):
        raise ValueError("x values must be ascending")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} values for {len(xs)} x values"
            )
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4 characters")

    all_y = [float(y) for ys in series.values() for y in ys]
    if log_y:
        positive = [y for y in all_y if y > 0]
        floor = min(positive) if positive else 1.0
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
        y_lo = transform(min(all_y, default=floor))
        y_hi = transform(max(all_y, default=floor))
    else:
        transform = float
        y_lo = min(all_y)
        y_hi = max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = xs[0], xs[-1]

    def col(x: float) -> int:
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(y: float) -> int:
        frac = (transform(y) - y_lo) / (y_hi - y_lo)
        return (height - 1) - round(frac * (height - 1))

    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        # Mark points and join consecutive points with linear interpolation.
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            c0, c1 = col(x0), col(x1)
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                y = y0 + t * (y1 - y0)
                r = min(max(row(y), 0), height - 1)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in zip(xs, ys):
            grid[min(max(row(y), 0), height - 1)][col(x)] = marker

    y_top = f"{(10 ** y_hi if log_y else y_hi):.6g}"
    y_bottom = f"{(10 ** y_lo if log_y else y_lo):.6g}"
    label_width = max(len(y_top), len(y_bottom))
    lines = [title, ("(log y) " if log_y else "") + "=" * max(len(title), 8)]
    for r, cells in enumerate(grid):
        label = y_top if r == 0 else y_bottom if r == height - 1 else ""
        lines.append(f"{label.rjust(label_width)} |{''.join(cells)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{xs[0]:.6g}".ljust(width - 8) + f"{xs[-1]:.6g}".rjust(8)
    lines.append(" " * (label_width + 2) + x_axis[:width])
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
