"""Experiment runners — one per table/figure of the paper's Section VII.

Every runner returns plain row dictionaries so the benchmark harness can
print them and EXPERIMENTS.md can record them.  The paper's full sweep
sizes are expensive in pure Python; :class:`ExperimentScale` captures the
protocol knobs, with :func:`quick_scale` (default for the benches) and
:func:`paper_scale` (the paper's exact 60-training/50-query protocol,
enabled with ``REPRO_FULL=1``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..core.config import HPMConfig
from ..core.keys import KeyCodec
from ..core.model import HybridPredictionModel
from ..core.patterns import (
    TrajectoryPattern,
    count_rules_unpruned,
    region_visit_masks,
)
from ..core.prediction import HybridPredictor
from ..core.regions import FrequentRegion, RegionSet
from ..core.tpt import TrajectoryPatternTree
from ..trajectory.dataset import TrajectoryDataset
from ..trajectory.point import BoundingBox, Point
from .harness import evaluate_hpm, evaluate_rmf
from .workloads import generate_queries

__all__ = [
    "ExperimentScale",
    "quick_scale",
    "paper_scale",
    "scale_from_env",
    "fit_model",
    "full_sweeps_enabled",
    "run_baseline_comparison",
    "run_chooseleaf_ablation",
    "run_fanout_ablation",
    "run_prediction_length",
    "run_subtrajectories",
    "run_eps",
    "run_minpts",
    "run_confidence",
    "run_query_time",
    "run_tpt_scaling",
    "run_pruning_ablation",
    "run_weight_functions",
    "run_time_relaxation",
    "run_top_k",
    "synthesize_regions",
    "synthesize_patterns",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Protocol knobs shared by the accuracy/cost experiments."""

    dataset_subtrajectories: int = 80
    training_subtrajectories: int = 60
    num_queries: int = 50
    period: int = 300
    seed: int = 123

    def __post_init__(self) -> None:
        if self.training_subtrajectories >= self.dataset_subtrajectories:
            raise ValueError(
                "need held-out sub-trajectories: training "
                f"{self.training_subtrajectories} >= dataset "
                f"{self.dataset_subtrajectories}"
            )


def quick_scale() -> ExperimentScale:
    """Reduced protocol for routine benchmark runs."""
    return ExperimentScale(
        dataset_subtrajectories=45,
        training_subtrajectories=30,
        num_queries=20,
    )


def paper_scale() -> ExperimentScale:
    """The paper's protocol: 60 training sub-trajectories, 50 queries."""
    return ExperimentScale(
        dataset_subtrajectories=80,
        training_subtrajectories=60,
        num_queries=50,
    )


def scale_from_env() -> ExperimentScale:
    """``paper_scale`` when ``REPRO_FULL=1`` is set, else ``quick_scale``."""
    return paper_scale() if os.environ.get("REPRO_FULL") == "1" else quick_scale()


def full_sweeps_enabled() -> bool:
    """Whether benches should run the paper's full parameter grids."""
    return os.environ.get("REPRO_FULL") == "1"


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------
def fit_model(
    dataset: TrajectoryDataset,
    scale: ExperimentScale,
    **config_overrides,
) -> HybridPredictionModel:
    """Fit an HPM on the dataset's training split under ``scale``.

    The paper's d = 60 only makes sense for T = 300; for smaller periods
    (test-scale datasets) the distant threshold defaults to T/5 instead.
    """
    if "distant_threshold" not in config_overrides:
        config_overrides["distant_threshold"] = max(1, min(60, dataset.period // 5))
    config = HPMConfig(period=dataset.period, **config_overrides)
    model = HybridPredictionModel(config)
    model.fit(dataset.training_split(scale.training_subtrajectories))
    return model


def _workload(
    dataset: TrajectoryDataset,
    prediction_length: int,
    scale: ExperimentScale,
    recent_window: int,
    seed_offset: int = 0,
):
    rng = np.random.default_rng(scale.seed + seed_offset)
    return generate_queries(
        dataset,
        prediction_length=prediction_length,
        num_queries=scale.num_queries,
        num_training_subtrajectories=scale.training_subtrajectories,
        recent_window=recent_window,
        rng=rng,
    )


# ----------------------------------------------------------------------
# Fig. 5 — effect of prediction length
# ----------------------------------------------------------------------
def run_prediction_length(
    dataset: TrajectoryDataset,
    lengths: list[int],
    scale: ExperimentScale,
    **config_overrides,
) -> list[dict]:
    """HPM vs RMF average error for each prediction length (Fig. 5)."""
    model = fit_model(dataset, scale, **config_overrides)
    rows: list[dict] = []
    for length in lengths:
        workload = _workload(
            dataset, length, scale, model.config.recent_window, seed_offset=length
        )
        hpm = evaluate_hpm(model, workload)
        rmf = evaluate_rmf(workload)
        rows.append(
            {
                "dataset": dataset.name,
                "prediction_length": length,
                "hpm_error": hpm.mean_error,
                "rmf_error": rmf.mean_error,
                "hpm_methods": dict(hpm.method_counts),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 6 — effect of the number of training sub-trajectories
# ----------------------------------------------------------------------
def run_subtrajectories(
    dataset: TrajectoryDataset,
    counts: list[int],
    scale: ExperimentScale,
    prediction_length: int = 50,
    **config_overrides,
) -> list[dict]:
    """HPM vs RMF error as the training corpus grows (Fig. 6)."""
    rows: list[dict] = []
    for count in counts:
        sub_scale = ExperimentScale(
            dataset_subtrajectories=scale.dataset_subtrajectories,
            training_subtrajectories=count,
            num_queries=scale.num_queries,
            period=scale.period,
            seed=scale.seed,
        )
        model = fit_model(dataset, sub_scale, **config_overrides)
        workload = _workload(
            dataset,
            prediction_length,
            sub_scale,
            model.config.recent_window,
            seed_offset=count,
        )
        hpm = evaluate_hpm(model, workload)
        rmf = evaluate_rmf(workload)
        rows.append(
            {
                "dataset": dataset.name,
                "num_subtrajectories": count,
                "hpm_error": hpm.mean_error,
                "rmf_error": rmf.mean_error,
                "num_patterns": model.pattern_count,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figs. 7/8 — effect of the DBSCAN parameters
# ----------------------------------------------------------------------
def run_eps(
    dataset: TrajectoryDataset,
    eps_values: list[float],
    scale: ExperimentScale,
    prediction_length: int = 50,
    **config_overrides,
) -> list[dict]:
    """Pattern count and error as Eps varies (Fig. 7)."""
    rows: list[dict] = []
    for eps in eps_values:
        model = fit_model(dataset, scale, eps=eps, **config_overrides)
        workload = _workload(
            dataset,
            prediction_length,
            scale,
            model.config.recent_window,
            seed_offset=int(eps),
        )
        hpm = evaluate_hpm(model, workload)
        rows.append(
            {
                "dataset": dataset.name,
                "eps": eps,
                "num_patterns": model.pattern_count,
                "hpm_error": hpm.mean_error,
            }
        )
    return rows


def run_minpts(
    dataset: TrajectoryDataset,
    minpts_values: list[int],
    scale: ExperimentScale,
    prediction_length: int = 50,
    **config_overrides,
) -> list[dict]:
    """Pattern count and error as MinPts varies (Fig. 8)."""
    rows: list[dict] = []
    for min_pts in minpts_values:
        model = fit_model(dataset, scale, min_pts=min_pts, **config_overrides)
        workload = _workload(
            dataset,
            prediction_length,
            scale,
            model.config.recent_window,
            seed_offset=min_pts,
        )
        hpm = evaluate_hpm(model, workload)
        rows.append(
            {
                "dataset": dataset.name,
                "min_pts": min_pts,
                "num_patterns": model.pattern_count,
                "hpm_error": hpm.mean_error,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 9 — effect of minimum confidence
# ----------------------------------------------------------------------
def run_confidence(
    dataset: TrajectoryDataset,
    confidence_values: list[float],
    scale: ExperimentScale,
    prediction_length: int = 50,
    **config_overrides,
) -> list[dict]:
    """Pattern count and error as the confidence threshold varies (Fig. 9).

    Mines once at confidence 0 and filters per threshold — same corpus the
    paper would get from re-mining, without re-running DBSCAN/Apriori.
    """
    base_model = fit_model(dataset, scale, min_confidence=0.0, **config_overrides)
    all_patterns = base_model.patterns_
    rows: list[dict] = []
    for threshold in confidence_values:
        kept = [p for p in all_patterns if p.confidence >= threshold]
        predictor = _predictor_from_patterns(
            base_model.regions_, kept, base_model.config
        )
        workload = _workload(
            dataset,
            prediction_length,
            scale,
            base_model.config.recent_window,
            seed_offset=int(threshold * 100),
        )
        if predictor is None:
            # No patterns survive: every query falls back to the motion
            # function, equivalent to evaluating RMF.
            result = evaluate_rmf(workload)
        else:
            result = _evaluate_predictor(predictor, workload)
        rows.append(
            {
                "dataset": dataset.name,
                "min_confidence": threshold,
                "num_patterns": len(kept),
                "hpm_error": result.mean_error,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 10 — query response time
# ----------------------------------------------------------------------
def run_query_time(
    dataset: TrajectoryDataset,
    counts: list[int],
    scale: ExperimentScale,
    prediction_length: int = 50,
    num_queries: int = 30,
    **config_overrides,
) -> list[dict]:
    """HPM vs RMF mean query latency as the training corpus grows (Fig. 10).

    The paper averages 30 queries; HPM's cost falls with more patterns
    because fewer queries fall back to (expensive) RMF fitting.
    """
    rows: list[dict] = []
    for count in counts:
        sub_scale = ExperimentScale(
            dataset_subtrajectories=scale.dataset_subtrajectories,
            training_subtrajectories=count,
            num_queries=num_queries,
            period=scale.period,
            seed=scale.seed,
        )
        model = fit_model(dataset, sub_scale, **config_overrides)
        workload = _workload(
            dataset,
            prediction_length,
            sub_scale,
            model.config.recent_window,
            seed_offset=1000 + count,
        )
        hpm = evaluate_hpm(model, workload)
        rmf = evaluate_rmf(workload)
        rows.append(
            {
                "dataset": dataset.name,
                "num_subtrajectories": count,
                "hpm_ms": hpm.mean_query_ms,
                "rmf_ms": rmf.mean_query_ms,
                "motion_fallbacks": hpm.method_counts.get("motion", 0),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 11 — TPT storage and search cost at scale
# ----------------------------------------------------------------------
def synthesize_regions(
    num_regions: int, period: int, rng: np.random.Generator
) -> RegionSet:
    """A synthetic region universe for index-scaling experiments.

    Regions are spread uniformly over the period's offsets with random
    single-point geometry — enough structure for key encoding without a
    mining run.
    """
    if num_regions < 2:
        raise ValueError(f"num_regions must be >= 2, got {num_regions}")
    regions: list[FrequentRegion] = []
    per_offset: dict[int, int] = {}
    for i in range(num_regions):
        offset = int((i * period) / num_regions) % period
        index = per_offset.get(offset, 0)
        per_offset[offset] = index + 1
        center = rng.uniform(0.0, 10000.0, 2)
        points = center[None, :].repeat(2, axis=0)
        regions.append(
            FrequentRegion(
                offset=offset,
                index=index,
                center=Point(float(center[0]), float(center[1])),
                points=points,
                bbox=BoundingBox(
                    float(center[0]), float(center[1]), float(center[0]), float(center[1])
                ),
                subtrajectory_ids=(0, 1),
            )
        )
    return RegionSet(regions, period=period, eps=30.0)


def synthesize_patterns(
    regions: RegionSet,
    num_patterns: int,
    rng: np.random.Generator,
    max_premise_length: int = 2,
) -> list[TrajectoryPattern]:
    """Random trajectory patterns over a synthetic region universe."""
    if num_patterns < 1:
        raise ValueError(f"num_patterns must be >= 1, got {num_patterns}")
    all_regions = list(regions)
    all_regions.sort(key=lambda r: (r.offset, r.index))
    patterns: list[TrajectoryPattern] = []
    while len(patterns) < num_patterns:
        length = int(rng.integers(1, max_premise_length + 1))
        picks = sorted(
            rng.choice(len(all_regions), size=length + 1, replace=False).tolist()
        )
        chosen = [all_regions[i] for i in picks]
        offsets = [r.offset for r in chosen]
        if len(set(offsets)) != len(offsets):
            continue  # premise/consequence offsets must be distinct
        patterns.append(
            TrajectoryPattern(
                premise=tuple(chosen[:-1]),
                consequence=chosen[-1],
                support=int(rng.integers(4, 60)),
                confidence=float(rng.uniform(0.3, 1.0)),
            )
        )
    return patterns


def run_tpt_scaling(
    pattern_counts: list[int],
    region_counts: list[int],
    period: int = 300,
    num_queries: int = 200,
    seed: int = 7,
) -> list[dict]:
    """TPT storage and search cost vs corpus size (Figs. 11a/11b).

    For each (patterns, regions) combination: build the TPT, estimate its
    storage analytically from node geometry, and time an Intersect search
    against the TPT and against a brute-force scan of the same corpus.
    """
    rows: list[dict] = []
    for num_regions in region_counts:
        rng = np.random.default_rng(seed + num_regions)
        regions = synthesize_regions(num_regions, period, rng)
        for num_patterns in pattern_counts:
            patterns = synthesize_patterns(regions, num_patterns, rng)
            codec = KeyCodec.from_patterns(regions, patterns)
            tree = TrajectoryPatternTree(codec)
            tree.bulk_load_patterns(patterns)
            stats = tree.stats()
            storage_mb = stats.storage_bytes() / (1024.0 * 1024.0)

            encoded = [(codec.encode_pattern(p), p) for p in patterns]
            query_keys = [
                codec.encode_query(
                    encoded[int(rng.integers(len(encoded)))][1].premise,
                    encoded[int(rng.integers(len(encoded)))][1].consequence_offset,
                )
                for _ in range(num_queries)
            ]

            start = time.perf_counter()
            for qk in query_keys:
                tree.search_candidates(qk)
            tpt_ms = 1000.0 * (time.perf_counter() - start) / num_queries

            start = time.perf_counter()
            for qk in query_keys:
                [p for key, p in encoded if key.intersects(qk)]
            brute_ms = 1000.0 * (time.perf_counter() - start) / num_queries

            rows.append(
                {
                    "num_regions": num_regions,
                    "num_patterns": num_patterns,
                    "storage_mb": storage_mb,
                    "tpt_ms": tpt_ms,
                    "brute_ms": brute_ms,
                    "tree_height": stats.height,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Text-claim ablations
# ----------------------------------------------------------------------
def run_pruning_ablation(
    dataset: TrajectoryDataset, scale: ExperimentScale, **config_overrides
) -> dict:
    """Pruned vs unpruned rule counts (Section IV reports a 58 % reduction)."""
    model = fit_model(dataset, scale, **config_overrides)
    pruned = model.pattern_count
    stats = model.mining_stats_
    # Reuse the mining run's vertical masks when they were counted over
    # the same transaction universe; rebuild them from the fitted regions
    # otherwise, so the ablation always counts through the shipped bitmap
    # path (never the subset-scan fallback).
    masks = (
        stats.region_masks
        if stats.num_transactions == scale.training_subtrajectories
        else region_visit_masks(model.regions_, scale.training_subtrajectories)
    )
    unpruned = count_rules_unpruned(
        model.patterns_,
        model.regions_,
        scale.training_subtrajectories,
        model.config.min_confidence,
        masks=masks,
    )
    reduction = 0.0 if unpruned == 0 else 100.0 * (1.0 - pruned / unpruned)
    return {
        "dataset": dataset.name,
        "pruned_patterns": pruned,
        "unpruned_rules": unpruned,
        "reduction_pct": reduction,
    }


def run_weight_functions(
    dataset: TrajectoryDataset,
    scale: ExperimentScale,
    prediction_length: int = 30,
    **config_overrides,
) -> list[dict]:
    """Error per premise-weight family (Section VI-A: linear/quadratic best).

    The weight family only affects query-time ranking, so the corpus is
    mined once and re-queried under each family on the *same* workload
    (paired comparison).  Longer premises (length 3) are mined so the
    families actually have room to disagree — with the default length-2
    premises every intersecting candidate tends to tie at S_r = 1.
    """
    config_overrides.setdefault("max_premise_length", 3)
    config_overrides.setdefault("max_premise_span", 4)
    model = fit_model(dataset, scale, **config_overrides)
    workload = _workload(
        dataset, prediction_length, scale, model.config.recent_window
    )
    rows: list[dict] = []
    for kind in ("linear", "quadratic", "exponential", "factorial"):
        predictor = _requery_predictor(model, weight_function=kind)
        result = (
            _evaluate_predictor(predictor, workload)
            if predictor is not None
            else evaluate_rmf(workload)
        )
        rows.append(
            {
                "dataset": dataset.name,
                "weight_function": kind,
                "hpm_error": result.mean_error,
            }
        )
    return rows


def run_time_relaxation(
    dataset: TrajectoryDataset,
    scale: ExperimentScale,
    relaxations: list[int] = [1, 2, 3, 5, 8],
    prediction_length: int = 100,
    **config_overrides,
) -> list[dict]:
    """Distant-query error per time relaxation t_eps (Section VI-C: 1–3 best).

    t_eps only affects BQP's interval retrieval, so the corpus is mined
    once and every relaxation is evaluated on the same workload.
    """
    model = fit_model(dataset, scale, **config_overrides)
    workload = _workload(
        dataset, prediction_length, scale, model.config.recent_window
    )
    rows: list[dict] = []
    for t_eps in relaxations:
        predictor = _requery_predictor(model, time_relaxation=t_eps)
        result = (
            _evaluate_predictor(predictor, workload)
            if predictor is not None
            else evaluate_rmf(workload)
        )
        rows.append(
            {
                "dataset": dataset.name,
                "time_relaxation": t_eps,
                "hpm_error": result.mean_error,
            }
        )
    return rows


def _requery_predictor(
    model: HybridPredictionModel, **query_overrides
) -> HybridPredictor | None:
    """A predictor over the model's mined corpus with query-time overrides.

    Returns ``None`` for pattern-free models (caller falls back to RMF).
    """
    if model.tree_ is None or model.codec_ is None:
        return None
    return HybridPredictor(
        regions=model.regions_,
        codec=model.codec_,
        tree=model.tree_,
        config=model.config.with_overrides(**query_overrides),
    )


# ----------------------------------------------------------------------
# top-k accuracy (the paper returns k results but never sweeps k)
# ----------------------------------------------------------------------
def run_top_k(
    dataset: TrajectoryDataset,
    ks: list[int],
    scale: ExperimentScale,
    prediction_length: int = 50,
    **config_overrides,
) -> list[dict]:
    """Best-of-k error vs k on one shared workload.

    Error@k is the distance from the *closest* of the k returned
    locations to the truth — the metric a UI showing k candidate
    destinations cares about.  Monotone non-increasing in k by
    construction.

    Since many patterns share a consequence region, raw top-k patterns
    (the paper's output) collapse onto few distinct places; candidates
    are deduplicated by location here so each of the k slots carries new
    information.
    """
    if not ks or any(k < 1 for k in ks):
        raise ValueError(f"ks must be positive, got {ks}")
    model = fit_model(dataset, scale, **config_overrides)
    workload = _workload(
        dataset, prediction_length, scale, model.config.recent_window
    )
    ks = sorted(ks)
    max_k = ks[-1]
    per_query_distinct: list[list[float]] = []
    for query in workload.queries:
        # Over-fetch ranked patterns, keep the first occurrence of each
        # distinct predicted location.
        predictions = model.predict(
            list(query.recent), query.query_time, k=max_k * 8
        )
        distinct: list[float] = []
        seen: set[tuple[float, float]] = set()
        for p in predictions:
            spot = (p.location.x, p.location.y)
            if spot not in seen:
                seen.add(spot)
                distinct.append(p.location.distance_to(query.truth))
            if len(distinct) >= max_k:
                break
        per_query_distinct.append(distinct)

    rows: list[dict] = []
    for k in ks:
        errors = [min(d[:k]) for d in per_query_distinct]
        rows.append(
            {
                "dataset": dataset.name,
                "k": k,
                "error_at_k": float(np.mean(errors)),
            }
        )
    return rows


# ----------------------------------------------------------------------
# index-design ablations (DESIGN.md decisions)
# ----------------------------------------------------------------------
def run_chooseleaf_ablation(
    num_patterns: int = 20000,
    num_regions: int = 300,
    period: int = 300,
    num_queries: int = 200,
    seed: int = 5,
) -> dict:
    """Paper's Algorithm-1 ChooseLeaf vs the generic signature-tree rule.

    The paper's insertion additionally prefers entries whose keys
    *Intersect* the new key on both parts ("This condition is useful for
    efficient query processing ... cannot be achieved by the construction
    algorithm of signature tree").  The ablation builds the same corpus
    under both policies and compares nodes visited per Intersect query.
    """

    class GenericChooseLeafTPT(TrajectoryPatternTree):
        """TPT with the base signature-tree ChooseLeaf (no Intersect case)."""

        def _choose_subtree(self, node, signature):  # noqa: D401
            from ..signature.signature_tree import SignatureTree

            return SignatureTree._choose_subtree(self, node, signature)

    rng = np.random.default_rng(seed)
    regions = synthesize_regions(num_regions, period, rng)
    patterns = synthesize_patterns(regions, num_patterns, rng)
    codec = KeyCodec.from_patterns(regions, patterns)

    trees = {
        "algorithm1": TrajectoryPatternTree(codec),
        "generic": GenericChooseLeafTPT(codec),
    }
    for tree in trees.values():
        for p in patterns:  # identical insert order for both policies
            tree.insert_pattern(p)

    query_keys = []
    for _ in range(num_queries):
        probe = patterns[int(rng.integers(len(patterns)))]
        query_keys.append(codec.encode_query(probe.premise, probe.consequence_offset))

    result: dict = {"num_patterns": num_patterns, "num_regions": num_regions}
    for name, tree in trees.items():
        shift = codec.premise_length
        premise_mask = (1 << shift) - 1
        visited_total = 0
        hits_total = 0
        for qk in query_keys:
            q_rk = qk.value & premise_mask
            q_ck = qk.value >> shift

            def predicate(sig: int) -> bool:
                return (sig & premise_mask) & q_rk != 0 and (sig >> shift) & q_ck != 0

            hits, visited = tree.search_stats(predicate)
            visited_total += visited
            hits_total += len(hits)
        result[f"{name}_nodes_per_query"] = visited_total / num_queries
        result[f"{name}_hits"] = hits_total
    return result


def run_fanout_ablation(
    fanouts: list[int] = [8, 16, 32, 64, 128],
    num_patterns: int = 20000,
    num_regions: int = 300,
    period: int = 300,
    num_queries: int = 200,
    seed: int = 6,
) -> list[dict]:
    """TPT node capacity vs build time, storage and search cost."""
    rng = np.random.default_rng(seed)
    regions = synthesize_regions(num_regions, period, rng)
    patterns = synthesize_patterns(regions, num_patterns, rng)
    codec = KeyCodec.from_patterns(regions, patterns)
    probes = [
        codec.encode_query(p.premise, p.consequence_offset)
        for p in (patterns[int(rng.integers(len(patterns)))] for _ in range(num_queries))
    ]

    rows: list[dict] = []
    for fanout in fanouts:
        tree = TrajectoryPatternTree(codec, max_entries=fanout)
        start = time.perf_counter()
        tree.bulk_load_patterns(patterns)
        build_s = time.perf_counter() - start
        start = time.perf_counter()
        for qk in probes:
            tree.search_candidates(qk)
        search_ms = 1000.0 * (time.perf_counter() - start) / num_queries
        stats = tree.stats()
        rows.append(
            {
                "fanout": fanout,
                "build_s": build_s,
                "search_ms": search_ms,
                "height": stats.height,
                "storage_mb": stats.storage_bytes() / (1024.0 * 1024.0),
            }
        )
    return rows


# ----------------------------------------------------------------------
# extended baseline comparison (beyond the paper's HPM-vs-RMF)
# ----------------------------------------------------------------------
def run_baseline_comparison(
    dataset: TrajectoryDataset,
    scale: ExperimentScale,
    prediction_lengths: list[int] = [20, 100],
    **config_overrides,
) -> list[dict]:
    """HPM vs RMF vs linear vs periodic mean vs last position.

    The periodic-mean baseline isolates the value of the rule machinery:
    it exploits periodicity (like HPM) but knows nothing about alternative
    routes or recent movements.  Last-position is the floor.
    """
    from ..motion.linear import LinearMotionFunction
    from ..motion.polynomial import PolynomialMotionFunction
    from .baselines import LastPositionPredictor, PeriodicMeanPredictor
    from .harness import evaluate_baseline, evaluate_motion_function

    model = fit_model(dataset, scale, **config_overrides)
    training = dataset.training_split(scale.training_subtrajectories)
    periodic = PeriodicMeanPredictor(dataset.period).fit(training)
    last = LastPositionPredictor()

    rows: list[dict] = []
    for length in prediction_lengths:
        workload = _workload(
            dataset, length, scale, model.config.recent_window, seed_offset=length
        )
        rows.append(
            {
                "dataset": dataset.name,
                "prediction_length": length,
                "hpm": evaluate_hpm(model, workload).mean_error,
                "rmf": evaluate_rmf(workload).mean_error,
                "linear": evaluate_motion_function(
                    LinearMotionFunction, workload, name="linear"
                ).mean_error,
                "polynomial": evaluate_motion_function(
                    PolynomialMotionFunction, workload, name="polynomial"
                ).mean_error,
                "periodic_mean": evaluate_baseline(
                    periodic, workload, "periodic_mean"
                ).mean_error,
                "last_position": evaluate_baseline(
                    last, workload, "last_position"
                ).mean_error,
            }
        )
    return rows


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _predictor_from_patterns(
    regions: RegionSet, patterns: list[TrajectoryPattern], config: HPMConfig
) -> HybridPredictor | None:
    if not patterns:
        return None
    codec = KeyCodec.from_patterns(regions, patterns)
    tree = TrajectoryPatternTree(
        codec,
        max_entries=config.tree_max_entries,
        min_entries=config.tree_min_entries,
    )
    tree.bulk_load_patterns(patterns)
    return HybridPredictor(regions=regions, codec=codec, tree=tree, config=config)


def _evaluate_predictor(predictor: HybridPredictor, workload):
    """Evaluate a bare predictor (no model facade) over a workload."""
    from ..trajectory.metrics import summarize_errors
    import time as _time

    errors = []
    start = _time.perf_counter()
    for query in workload.queries:
        prediction = predictor.predict(list(query.recent), query.query_time, k=1)[0]
        errors.append(prediction.location.distance_to(query.truth))
    elapsed = _time.perf_counter() - start
    from .harness import EvaluationResult

    summary = summarize_errors(errors)
    return EvaluationResult(
        predictor="hpm",
        errors=tuple(errors),
        mean_error=summary.mean,
        summary=summary,
        mean_query_ms=1000.0 * elapsed / max(len(errors), 1),
        method_counts=dict(predictor.stats),
    )
