"""Additional prediction baselines for the evaluation harness.

Beyond the paper's comparator (RMF) and the linear motion model, two
reference points sharpen the ablation story:

* :class:`PeriodicMeanPredictor` — "pattern information only, no index,
  no rules": predict the historical mean location at the query's time
  offset.  It shares HPM's core insight (periodicity) but has no notion
  of alternative routes, confidences or premise similarity — the gap
  between it and HPM measures what the rule machinery adds.
* :class:`LastPositionPredictor` — the degenerate "object doesn't move"
  floor every predictor must beat.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..trajectory.point import Point, TimedPoint
from ..trajectory.trajectory import Trajectory

__all__ = ["PeriodicMeanPredictor", "LastPositionPredictor"]


class PeriodicMeanPredictor:
    """Predicts the mean historical location at ``tq mod T``.

    Fit once on the training history; queries are O(1) lookups.
    """

    def __init__(self, period: int):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self._means: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._means is not None

    def fit(self, history: Trajectory) -> "PeriodicMeanPredictor":
        """Average every offset group of the history."""
        if len(history) < self.period:
            raise ValueError(
                f"history of {len(history)} samples is shorter than one "
                f"period ({self.period})"
            )
        means = np.empty((self.period, 2), dtype=np.float64)
        for group in history.offset_groups(self.period):
            if len(group) == 0:
                means[group.offset] = np.nan
            else:
                means[group.offset] = group.positions.mean(axis=0)
        # Offsets never observed inherit their nearest observed neighbour.
        observed = ~np.isnan(means[:, 0])
        if not observed.any():
            raise ValueError("history has no usable samples")
        if not observed.all():
            observed_idx = np.nonzero(observed)[0]
            for t in np.nonzero(~observed)[0]:
                nearest = observed_idx[np.argmin(np.abs(observed_idx - t))]
                means[t] = means[nearest]
        self._means = means
        return self

    def predict(self, recent: Sequence[TimedPoint], query_time: int) -> Point:
        """Mean location at the query's time offset (recent is ignored)."""
        if self._means is None:
            raise RuntimeError("PeriodicMeanPredictor.predict called before fit")
        x, y = self._means[query_time % self.period]
        return Point(float(x), float(y))


class LastPositionPredictor:
    """Predicts the object's last known position, whatever the horizon."""

    def predict(self, recent: Sequence[TimedPoint], query_time: int) -> Point:
        samples = list(recent)
        if not samples:
            raise ValueError("recent movements must be non-empty")
        return samples[-1].point
