"""Predictive-query workloads for the evaluation harness.

Protocol (Section VII-A): the model trains on the first
``num_training_subtrajectories`` sub-trajectories; queries are sampled from
held-out sub-trajectories.  Each query supplies the object's recent
movements (the trailing window up to the current time ``tc``), a query time
``tq = tc + prediction_length`` inside the same period (Definition 2
assumes ``tq < T``), and the ground-truth location actually visited at
``tq``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trajectory.dataset import TrajectoryDataset
from ..trajectory.point import Point, TimedPoint

__all__ = ["PredictiveQuery", "QueryWorkload", "generate_queries"]


@dataclass(frozen=True)
class PredictiveQuery:
    """One evaluation query with its ground truth.

    ``recent`` ends at the current time; ``query_time`` is strictly later;
    ``truth`` is where the object actually was at ``query_time``.
    """

    recent: tuple[TimedPoint, ...]
    query_time: int
    truth: Point

    def __post_init__(self) -> None:
        if not self.recent:
            raise ValueError("query needs at least one recent sample")
        if self.query_time <= self.recent[-1].t:
            raise ValueError("query_time must be after the last recent sample")

    @property
    def current_time(self) -> int:
        """``tc`` — the timestamp of the newest recent sample."""
        return self.recent[-1].t

    @property
    def prediction_length(self) -> int:
        """``tq - tc``."""
        return self.query_time - self.current_time


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of queries sharing one protocol configuration."""

    dataset_name: str
    prediction_length: int
    queries: tuple[PredictiveQuery, ...]

    def __len__(self) -> int:
        return len(self.queries)


def generate_queries(
    dataset: TrajectoryDataset,
    prediction_length: int,
    num_queries: int,
    num_training_subtrajectories: int,
    recent_window: int = 10,
    rng: np.random.Generator | None = None,
) -> QueryWorkload:
    """Sample ``num_queries`` queries from the held-out sub-trajectories.

    Each query picks a test sub-trajectory and a current offset ``tc`` such
    that the recent window fits before it and ``tc + prediction_length``
    stays within the same period.
    """
    if prediction_length < 1:
        raise ValueError(f"prediction_length must be >= 1, got {prediction_length}")
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    if recent_window < 2:
        raise ValueError(f"recent_window must be >= 2, got {recent_window}")
    rng = rng or np.random.default_rng()

    period = dataset.period
    max_tc = period - prediction_length - 1
    min_tc = recent_window - 1
    if max_tc < min_tc:
        raise ValueError(
            f"prediction length {prediction_length} plus recent window "
            f"{recent_window} does not fit in one period of {period}"
        )

    subtrajectories = dataset.subtrajectories()
    test_subs = [
        s
        for s in subtrajectories[num_training_subtrajectories:]
        if s.is_complete
    ]
    if not test_subs:
        raise ValueError(
            "no complete held-out sub-trajectories after "
            f"{num_training_subtrajectories} training ones"
        )

    queries: list[PredictiveQuery] = []
    for _ in range(num_queries):
        sub = test_subs[int(rng.integers(len(test_subs)))]
        tc_offset = int(rng.integers(min_tc, max_tc + 1))
        recent = tuple(
            TimedPoint(
                sub.global_time(offset),
                sub.at_offset(offset).x,
                sub.at_offset(offset).y,
            )
            for offset in range(tc_offset - recent_window + 1, tc_offset + 1)
        )
        truth_offset = tc_offset + prediction_length
        queries.append(
            PredictiveQuery(
                recent=recent,
                query_time=sub.global_time(truth_offset),
                truth=sub.at_offset(truth_offset),
            )
        )
    return QueryWorkload(
        dataset_name=dataset.name,
        prediction_length=prediction_length,
        queries=tuple(queries),
    )
