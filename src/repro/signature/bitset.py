"""Bitmap-signature operations (Section V-A's "pattern key operations").

Signatures are arbitrary-width Python integers; bit ``i`` set means item
``i`` is present.  The paper defines, with ``&``, ``|`` and ``⊕`` the bitwise
AND / OR / XOR:

* ``Union(pk1..pkn)``  = ``pk1 | pk2 | ... | pkn``
* ``Size(pk)``         = number of 1s in ``pk``
* ``Contain(pk1, pk2)``= true iff ``pk1 & pk2 == pk2``
* ``Difference(pk1, pk2)`` = ``Size(pk1 ⊕ (pk1 & pk2))`` — the number of 1s
  of ``pk1`` not covered by ``pk2`` (note the asymmetry).
* ``Intersect`` is pattern-key specific (split into consequence/premise
  parts) and lives in :mod:`repro.core.keys`; the plain any-common-bit test
  here serves the generic signature tree.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = [
    "union",
    "size",
    "contain",
    "difference",
    "intersects",
    "iter_set_bits",
    "from_indices",
    "to_indices",
    "to_bit_string",
    "position_of_bit",
]


def union(*signatures: int) -> int:
    """Bitwise OR of all arguments (0 for no arguments)."""
    result = 0
    for sig in signatures:
        result |= sig
    return result


def size(signature: int) -> int:
    """Number of set bits — the paper's ``Size``."""
    if signature < 0:
        raise ValueError(f"signatures are non-negative, got {signature}")
    return signature.bit_count()


def contain(outer: int, inner: int) -> bool:
    """The paper's ``Contain``: every bit of ``inner`` is set in ``outer``."""
    return outer & inner == inner


def difference(a: int, b: int) -> int:
    """The paper's ``Difference(a, b) = Size(a XOR (a AND b))``.

    Counts the bits of ``a`` that ``b`` does not cover; adding ``b``'s bits
    to an entry with signature ``a`` grows it by ``difference(b, a)`` bits.
    """
    return size(a ^ (a & b))


def intersects(a: int, b: int) -> bool:
    """Whether the signatures share at least one set bit."""
    return a & b != 0


def iter_set_bits(signature: int) -> Iterator[int]:
    """Yield the indices of set bits in increasing order."""
    if signature < 0:
        raise ValueError(f"signatures are non-negative, got {signature}")
    index = 0
    while signature:
        if signature & 1:
            yield index
        signature >>= 1
        index += 1


def from_indices(indices: Iterable[int]) -> int:
    """Signature with exactly the given bit indices set."""
    result = 0
    for i in indices:
        if i < 0:
            raise ValueError(f"bit indices are non-negative, got {i}")
        result |= 1 << i
    return result


def to_indices(signature: int) -> list[int]:
    """List of set-bit indices in increasing order."""
    return list(iter_set_bits(signature))


def to_bit_string(signature: int, width: int) -> str:
    """Fixed-width binary rendering, most-significant bit first.

    Matches the paper's presentation (e.g. region key ``00001``).
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if signature >= 1 << width:
        raise ValueError(f"signature {signature:#x} does not fit in {width} bits")
    return format(signature, f"0{width}b")


def position_of_bit(signature: int, bit_index: int) -> int:
    """1-based rank of the set bit at ``bit_index`` counted from the right.

    This is the paper's premise-key position numbering ("we number the
    position of '1' in a premise key from right to left starting from 1"),
    restricted to the *set* bits of ``signature``.  Raises ``ValueError``
    when the bit is not set.
    """
    if not signature >> bit_index & 1:
        raise ValueError(f"bit {bit_index} is not set in {signature:#x}")
    below_mask = (1 << bit_index) - 1
    return size(signature & below_mask) + 1
