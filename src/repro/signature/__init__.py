"""Signature-index substrate: bitset operations and the generic signature tree."""

from . import bitset
from .signature_tree import LeafEntry, Node, SignatureTree, TreeStats

__all__ = ["LeafEntry", "Node", "SignatureTree", "TreeStats", "bitset"]
