"""Generic signature tree (Mamoulis, Cheung & Lian — ICDE 2003).

"Signature tree is a dynamic balanced tree and specifically designed for
signature bitmaps.  Each node contains entries of the form <sig, ptr>.  In a
leaf node entry, sig is the signature of the transaction and ptr is a
transaction id.  Each internal node entry is the logical OR on all
signatures in its subtree."  (Section V of the HPM paper.)

This module implements the substrate tree; the Trajectory Pattern Tree
(:mod:`repro.core.tpt`) subclasses it to install the paper's three-case
ChooseLeaf and the two-part Intersect predicate.

Structure
---------
* A node holds between ``min_entries`` and ``max_entries`` entries (the root
  may underflow).
* Leaf entries carry ``(signature, payload)``; internal entries carry
  ``(signature, child)`` where the signature is the OR over the child's
  subtree and is maintained incrementally on insert/split.
* Search is depth-first with a caller-supplied predicate that must be
  *OR-monotone*: if it rejects a union signature it must reject every
  signature ORed into it.  Any-common-bit intersection and containment both
  qualify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from . import bitset

__all__ = ["LeafEntry", "Node", "SignatureTree", "TreeStats"]


@dataclass(slots=True)
class LeafEntry:
    """A stored signature with its payload (the paper's <sig, ptr>)."""

    signature: int
    payload: Any


@dataclass(slots=True)
class Node:
    """One tree node; ``children[i]`` pairs with ``signatures[i]``.

    For leaves, ``entries`` holds :class:`LeafEntry` objects and
    ``children`` is empty.  For internal nodes, ``entries`` is empty and
    ``signatures[i]`` is the OR over ``children[i]``'s subtree.
    """

    is_leaf: bool
    entries: list[LeafEntry] = field(default_factory=list)
    signatures: list[int] = field(default_factory=list)
    children: list["Node"] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def local_union(self) -> int:
        """OR of everything stored directly in this node."""
        if self.is_leaf:
            return bitset.union(*(e.signature for e in self.entries))
        return bitset.union(*self.signatures)


@dataclass(frozen=True, slots=True)
class TreeStats:
    """Structural statistics, used by the Fig. 11a storage model."""

    height: int
    node_count: int
    leaf_count: int
    entry_count: int
    signature_bits: int

    def storage_bytes(self, pointer_bytes: int = 4, payload_bytes: int = 8) -> int:
        """Analytic storage estimate.

        Every entry (leaf or internal) stores its signature bitmap plus a
        pointer; leaf entries additionally store their payload (for TPT:
        confidence + consequence pointer = ``payload_bytes``).  This mirrors
        how the paper reports TPT storage in MB as a function of the number
        of patterns and the signature width.
        """
        sig_bytes = (self.signature_bits + 7) // 8
        internal_entries = self.node_count - 1  # every non-root node has one
        leaf_entries = self.entry_count
        return (
            internal_entries * (sig_bytes + pointer_bytes)
            + leaf_entries * (sig_bytes + pointer_bytes + payload_bytes)
        )


class SignatureTree:
    """Balanced signature tree with R-tree-style insertion.

    Parameters
    ----------
    max_entries:
        Node capacity ``M`` (>= 4).
    min_entries:
        Minimum fill after a split (defaults to ``M // 3``, at least 2).
    signature_bits:
        Nominal signature width, only used for storage accounting; keys
        wider than this are still stored correctly.
    """

    def __init__(
        self,
        max_entries: int = 32,
        min_entries: int | None = None,
        signature_bits: int = 0,
    ):
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        if min_entries is None:
            min_entries = max(2, max_entries // 3)
        if not 2 <= min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must be in [2, {max_entries // 2}], got {min_entries}"
            )
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.signature_bits = signature_bits
        self.root = Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def insert(self, signature: int, payload: Any) -> None:
        """Insert one signature/payload pair."""
        if signature < 0:
            raise ValueError(f"signatures are non-negative, got {signature}")
        self.signature_bits = max(self.signature_bits, signature.bit_length())
        leaf, path = self._choose_leaf_path(signature)
        leaf.entries.append(LeafEntry(signature, payload))
        self._size += 1
        self._handle_overflow(leaf, path)
        self._refresh_signatures_along(path)

    def bulk_load(self, items: Sequence[tuple[int, Any]]) -> None:
        """Bottom-up bulk load of many ``(signature, payload)`` pairs.

        The paper's static-data path ("The system uses bulk loading to
        build TPT for the static data"): entries are sorted by signature —
        clustering similar keys — packed into full leaves, and parent
        levels are built directly, which is an order of magnitude faster
        than repeated ChooseLeaf insertion and yields a well-packed tree.

        Only valid on an empty tree; on a non-empty tree the pairs fall
        back to one-by-one insertion.
        """
        if self._size:
            for signature, payload in sorted(items, key=lambda kv: kv[0]):
                self.insert(signature, payload)
            return
        pairs = sorted(items, key=lambda kv: kv[0])
        if not pairs:
            return
        for signature, _payload in pairs:
            if signature < 0:
                raise ValueError(f"signatures are non-negative, got {signature}")
        self.signature_bits = max(
            self.signature_bits, pairs[-1][0].bit_length()
        )

        leaves: list[Node] = []
        for chunk in self._packed_chunks(len(pairs)):
            node = Node(is_leaf=True)
            node.entries = [LeafEntry(s, p) for s, p in pairs[chunk]]
            leaves.append(node)
        self._size = len(pairs)

        level = leaves
        while len(level) > 1:
            parents: list[Node] = []
            for chunk in self._packed_chunks(len(level)):
                parent = Node(is_leaf=False)
                parent.children = level[chunk]
                parent.signatures = [
                    self._subtree_signature(c) for c in parent.children
                ]
                parents.append(parent)
            level = parents
        self.root = level[0]

    def export_packed(self) -> tuple[list[LeafEntry], list[int]]:
        """Serialise a bulk-loaded tree as flat signature sequences.

        Returns ``(entries, node_signatures)``: the leaf entries in
        left-to-right order and every internal ``signatures`` list
        flattened bottom-up (parents of leaves first, root last) — the
        exact consumption order of :meth:`bulk_load_packed`.  Because
        :meth:`bulk_load` packs deterministically, a tree rebuilt from
        these sequences (with the same ``max_entries``/``min_entries``)
        is structurally identical to the original, without re-sorting or
        re-deriving a single union signature.
        """
        levels: list[list[Node]] = [[self.root]]
        while not levels[-1][0].is_leaf:
            levels.append(
                [child for node in levels[-1] for child in node.children]
            )
        entries = [e for leaf in levels[-1] for e in leaf.entries]
        node_signatures: list[int] = []
        for level in reversed(levels[:-1]):
            for node in level:
                node_signatures.extend(node.signatures)
        return entries, node_signatures

    def bulk_load_packed(
        self,
        signatures: Sequence[int],
        payloads: Sequence[Any],
        node_signatures: Sequence[int],
    ) -> None:
        """Rebuild a bulk-loaded tree from :meth:`export_packed` output.

        ``signatures``/``payloads`` must already be in final (sorted)
        leaf order and ``node_signatures`` in the flattened bottom-up
        level order; the chunk structure is replayed with
        :meth:`_packed_chunks`, so no sorting or union computation
        happens.  Only valid on an empty tree.
        """
        if self._size:
            raise ValueError("bulk_load_packed requires an empty tree")
        if len(signatures) != len(payloads):
            raise ValueError(
                f"{len(signatures)} signatures but {len(payloads)} payloads"
            )
        if not signatures:
            return
        self.signature_bits = max(
            self.signature_bits, signatures[-1].bit_length()
        )
        leaves: list[Node] = []
        for chunk in self._packed_chunks(len(signatures)):
            node = Node(is_leaf=True)
            node.entries = [
                LeafEntry(s, p)
                for s, p in zip(signatures[chunk], payloads[chunk])
            ]
            leaves.append(node)
        self._size = len(signatures)

        cursor = 0
        level = leaves
        while len(level) > 1:
            parents: list[Node] = []
            for chunk in self._packed_chunks(len(level)):
                parent = Node(is_leaf=False)
                parent.children = level[chunk]
                count = len(parent.children)
                parent.signatures = list(
                    node_signatures[cursor : cursor + count]
                )
                if len(parent.signatures) != count:
                    raise ValueError(
                        "packed tree is truncated: ran out of node signatures"
                    )
                cursor += count
                parents.append(parent)
            level = parents
        if cursor != len(node_signatures):
            raise ValueError(
                f"packed tree has {len(node_signatures) - cursor} unused "
                "node signatures (corrupt or mismatched structure)"
            )
        self.root = level[0]

    def _packed_chunks(self, n: int) -> list[slice]:
        """Split ``n`` ordered items into runs of at most ``max_entries``,
        each at least ``min_entries`` long (except a single run)."""
        if n <= self.max_entries:
            return [slice(0, n)]
        chunks: list[slice] = []
        start = 0
        while start < n:
            end = min(start + self.max_entries, n)
            remainder = n - end
            if 0 < remainder < self.min_entries:
                # Shrink this run so the final one reaches the minimum.
                end -= self.min_entries - remainder
            chunks.append(slice(start, end))
            start = end
        return chunks

    def delete(
        self, signature: int, match: Callable[[Any], bool] | None = None
    ) -> bool:
        """Remove one leaf entry with this exact signature.

        ``match`` optionally narrows deletion to entries whose payload it
        accepts (several patterns can share a key).  Returns ``True`` when
        an entry was removed.  Underflowing nodes are condensed R-tree
        style: the node is dissolved and its remaining entries reinserted.
        """
        if signature < 0:
            raise ValueError(f"signatures are non-negative, got {signature}")
        found = self._delete_from(self.root, signature, match, [])
        if not found:
            return False
        self._size -= 1
        # Shrink the root when it has a single internal child; an emptied
        # internal root degenerates back to an empty leaf.
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        if not self.root.is_leaf and not self.root.children:
            self.root = Node(is_leaf=True)
        return True

    def _delete_from(
        self,
        node: Node,
        signature: int,
        match: Callable[[Any], bool] | None,
        path: list[tuple[Node, int]],
    ) -> bool:
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.signature == signature and (
                    match is None or match(entry.payload)
                ):
                    del node.entries[i]
                    self._condense(node, path)
                    return True
            return False
        for i, (sig, child) in enumerate(zip(node.signatures, node.children)):
            # The stored key can only live under entries containing it.
            if not bitset.contain(sig, signature):
                continue
            path.append((node, i))
            if self._delete_from(child, signature, match, path):
                return True
            path.pop()
        return False

    def _condense(self, node: Node, path: list[tuple[Node, int]]) -> None:
        """Dissolve underflowing ancestors and refresh path signatures."""
        orphans: list[LeafEntry] = []
        current = node
        for parent, idx in reversed(path):
            if len(current) < self.min_entries and current is not self.root:
                orphans.extend(self._collect_entries(current))
                del parent.children[idx]
                del parent.signatures[idx]
                current = parent
            else:
                break
        # Recompute every signature along the surviving path, bottom-up.
        # (Indices recorded in `path` may be stale after deletions, so the
        # whole signature list of each ancestor is rebuilt — O(fanout) per
        # level since children carry their unions.)
        for parent, _idx in reversed(path):
            parent.signatures = [
                self._subtree_signature(child) for child in parent.children
            ]
        for entry in orphans:
            self._size -= 1  # insert() re-increments
            self.insert(entry.signature, entry.payload)

    def _collect_entries(self, node: Node) -> list[LeafEntry]:
        if node.is_leaf:
            return list(node.entries)
        collected: list[LeafEntry] = []
        for child in node.children:
            collected.extend(self._collect_entries(child))
        return collected

    def search(self, predicate: Callable[[int], bool]) -> list[LeafEntry]:
        """All leaf entries whose signature satisfies an OR-monotone predicate."""
        return list(self.iter_search(predicate))

    def iter_search(self, predicate: Callable[[int], bool]) -> Iterator[LeafEntry]:
        """Depth-first generator over matching leaf entries."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    if predicate(entry.signature):
                        yield entry
            else:
                for sig, child in zip(node.signatures, node.children):
                    if predicate(sig):
                        stack.append(child)

    def search_stats(
        self, predicate: Callable[[int], bool]
    ) -> tuple[list[LeafEntry], int]:
        """Like :meth:`search`, additionally counting visited nodes.

        The node count is the machine-independent search-cost metric used
        by the index ablations (clustering quality shows up as fewer
        visited nodes for the same result set).
        """
        hits: list[LeafEntry] = []
        visited = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            visited += 1
            if node.is_leaf:
                for entry in node.entries:
                    if predicate(entry.signature):
                        hits.append(entry)
            else:
                for sig, child in zip(node.signatures, node.children):
                    if predicate(sig):
                        stack.append(child)
        return hits, visited

    def search_intersecting(self, query: int) -> list[LeafEntry]:
        """Entries sharing at least one bit with ``query`` (classic usage)."""
        return self.search(lambda sig: bitset.intersects(sig, query))

    def all_entries(self) -> list[LeafEntry]:
        """Every stored entry (tree order)."""
        return self.search(lambda _sig: True)

    def stats(self) -> TreeStats:
        """Structural statistics for storage/size accounting."""
        height = 0
        node_count = 0
        leaf_count = 0
        entry_count = 0
        stack: list[tuple[Node, int]] = [(self.root, 1)]
        while stack:
            node, depth = stack.pop()
            node_count += 1
            height = max(height, depth)
            if node.is_leaf:
                leaf_count += 1
                entry_count += len(node.entries)
            else:
                for child in node.children:
                    stack.append((child, depth + 1))
        return TreeStats(
            height=height,
            node_count=node_count,
            leaf_count=leaf_count,
            entry_count=entry_count,
            signature_bits=self.signature_bits,
        )

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breakage.

        Invariants: internal signatures equal the OR over their subtree;
        every leaf is at the same depth; node occupancy respects
        ``min_entries``/``max_entries`` (root exempt from the minimum).
        """
        leaf_depths: set[int] = set()
        self._validate_node(self.root, depth=1, is_root=True, leaf_depths=leaf_depths)
        assert len(leaf_depths) <= 1, f"leaves at multiple depths: {leaf_depths}"
        assert self._count_entries(self.root) == self._size, "size counter drifted"

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------
    def _choose_leaf_path(self, signature: int) -> tuple[Node, list[tuple[Node, int]]]:
        """Descend from the root; returns the leaf and the (node, child-index) path."""
        node = self.root
        path: list[tuple[Node, int]] = []
        while not node.is_leaf:
            idx = self._choose_subtree(node, signature)
            path.append((node, idx))
            node = node.children[idx]
        return node, path

    def _choose_subtree(self, node: Node, signature: int) -> int:
        """Pick the child whose signature needs the least enlargement.

        The generic signature-tree heuristic: smallest
        ``Difference(signature, entry)`` — i.e. fewest new bits — with ties
        broken by the smallest entry ``Size``.  (TPT overrides this with the
        paper's Algorithm 1.)
        """
        best_idx = 0
        best_key: tuple[int, int] | None = None
        for i, sig in enumerate(node.signatures):
            key = (bitset.difference(signature, sig), bitset.size(sig))
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx

    def _handle_overflow(self, node: Node, path: list[tuple[Node, int]]) -> None:
        """Split overflowing nodes upward, growing the tree at the root."""
        while len(node) > self.max_entries:
            sibling = self._split(node)
            if path:
                parent, idx = path.pop()
                parent.signatures[idx] = self._subtree_signature(node)
                parent.children.append(sibling)
                parent.signatures.append(self._subtree_signature(sibling))
                node = parent
            else:
                # Root split: grow a new root above.
                new_root = Node(is_leaf=False)
                new_root.children = [node, sibling]
                new_root.signatures = [
                    self._subtree_signature(node),
                    self._subtree_signature(sibling),
                ]
                self.root = new_root
                return

    def _split(self, node: Node) -> Node:
        """Quadratic split on signature waste; returns the new sibling.

        Seeds are the pair maximising the symmetric signature difference;
        remaining members go to the side with the smaller bit enlargement,
        subject to the minimum-fill constraint.
        """
        if node.is_leaf:
            members: list[Any] = list(node.entries)
            sig_of = lambda m: m.signature  # noqa: E731 - tiny local accessor
        else:
            members = list(zip(node.signatures, node.children))
            sig_of = lambda m: m[0]  # noqa: E731

        seed_a, seed_b = self._pick_seeds([sig_of(m) for m in members])
        group_a = [members[seed_a]]
        group_b = [members[seed_b]]
        union_a = sig_of(members[seed_a])
        union_b = sig_of(members[seed_b])
        rest = [m for i, m in enumerate(members) if i not in (seed_a, seed_b)]

        for i, m in enumerate(rest):
            remaining = len(rest) - i
            # Force-assign when one group must take everything left to make
            # its minimum fill.
            if len(group_a) + remaining <= self.min_entries:
                group_a.append(m)
                union_a |= sig_of(m)
                continue
            if len(group_b) + remaining <= self.min_entries:
                group_b.append(m)
                union_b |= sig_of(m)
                continue
            sig = sig_of(m)
            enlarge_a = bitset.difference(sig, union_a)
            enlarge_b = bitset.difference(sig, union_b)
            if (enlarge_a, len(group_a)) <= (enlarge_b, len(group_b)):
                group_a.append(m)
                union_a |= sig
            else:
                group_b.append(m)
                union_b |= sig

        sibling = Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.signatures = [g[0] for g in group_a]
            node.children = [g[1] for g in group_a]
            sibling.signatures = [g[0] for g in group_b]
            sibling.children = [g[1] for g in group_b]
        return sibling

    @staticmethod
    def _pick_seeds(signatures: Sequence[int]) -> tuple[int, int]:
        """Indices of the most mutually dissimilar pair of signatures."""
        best = (0, 1)
        best_waste = -1
        for i in range(len(signatures)):
            for j in range(i + 1, len(signatures)):
                waste = bitset.size(signatures[i] ^ signatures[j])
                if waste > best_waste:
                    best_waste = waste
                    best = (i, j)
        return best

    def _refresh_signatures_along(self, path: list[tuple[Node, int]]) -> None:
        """Re-derive parent signatures bottom-up after an insert."""
        for parent, idx in reversed(path):
            if idx < len(parent.children):
                parent.signatures[idx] = self._subtree_signature(parent.children[idx])

    def _subtree_signature(self, node: Node) -> int:
        return node.local_union()

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _validate_node(
        self, node: Node, depth: int, is_root: bool, leaf_depths: set[int]
    ) -> int:
        if node.is_leaf:
            leaf_depths.add(depth)
            if not is_root:
                assert (
                    self.min_entries <= len(node.entries) <= self.max_entries
                ), f"leaf occupancy {len(node.entries)} outside bounds"
            return node.local_union()
        assert node.children, "internal node with no children"
        if not is_root:
            assert (
                self.min_entries <= len(node.children) <= self.max_entries
            ), f"internal occupancy {len(node.children)} outside bounds"
        else:
            assert len(node.children) >= 2, "internal root with < 2 children"
        combined = 0
        for sig, child in zip(node.signatures, node.children):
            child_sig = self._validate_node(child, depth + 1, False, leaf_depths)
            assert child_sig == sig, "stale internal signature"
            combined |= child_sig
        return combined

    def _count_entries(self, node: Node) -> int:
        if node.is_leaf:
            return len(node.entries)
        return sum(self._count_entries(c) for c in node.children)
