"""Uniform grid index for fixed-radius neighbour queries.

DBSCAN's inner loop is the ε-neighbourhood query.  A uniform grid with cell
side ε answers it by scanning the 3x3 block of cells around the query point,
which keeps region discovery linear-ish in practice for the paper's offset
groups (a few hundred points each) and scales to the large synthetic corpora
used by the TPT benchmarks.

Two query shapes are offered:

* :meth:`GridIndex.neighbors` / :meth:`GridIndex.neighbors_of_point` — one
  ε-neighbourhood at a time (the classic probe);
* :meth:`GridIndex.neighborhoods` — every point's ε-neighbourhood in one
  batched pass, returned as CSR-style ``(indptr, indices)`` adjacency.
  Candidate gathering and distance filtering are vectorised over whole
  cell blocks, so the batch costs a handful of numpy passes instead of
  ``n`` Python-level probes; DBSCAN's fit path consumes this form.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["GridIndex"]

# Cap on the (row, candidate) scratch pairs materialised per filtering
# chunk inside neighborhoods(); bounds peak memory for dense inputs where
# whole groups collapse into one cell (worst case n^2 candidate pairs).
_MAX_CHUNK_PAIRS = 1 << 21


class GridIndex:
    """Static grid over a fixed point set, tuned for radius-``eps`` queries.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of the indexed points.  Coordinates must be
        finite — NaN/inf would silently hash into one garbage bucket and
        corrupt every neighbourhood answer, so they are rejected here.
    eps:
        Query radius; also the grid cell side.
    """

    __slots__ = (
        "_points",
        "_eps",
        "_cells",
        "_cell_keys",
        "_cell_start",
        "_cell_count",
        "_point_order",
        "_point_cell",
    )

    def __init__(self, points: np.ndarray, eps: float):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        if not math.isfinite(eps) or eps <= 0:
            raise ValueError(f"eps must be a positive finite number, got {eps}")
        if points.size and not np.isfinite(points).all():
            bad = int(np.nonzero(~np.isfinite(points).all(axis=1))[0][0])
            raise ValueError(
                "points must have finite coordinates; "
                f"point {bad} is {points[bad].tolist()}"
            )
        self._points = points
        self._eps = float(eps)
        n = points.shape[0]
        if n == 0:
            self._cells: dict[tuple[int, int], list[int]] = {}
            self._cell_keys = np.empty((0, 2), dtype=np.int64)
            self._cell_start = np.empty(0, dtype=np.int64)
            self._cell_count = np.empty(0, dtype=np.int64)
            self._point_order = np.empty(0, dtype=np.int64)
            self._point_cell = np.empty(0, dtype=np.int64)
            return
        # np.floor(x / eps) in float64 matches int(math.floor(x / eps))
        # exactly for finite coordinates, so the vectorised build fills
        # the same buckets as a per-point Python loop.
        coords = np.floor(points / self._eps).astype(np.int64)
        cell_keys, point_cell = np.unique(coords, axis=0, return_inverse=True)
        point_cell = point_cell.reshape(-1).astype(np.int64, copy=False)
        order = np.argsort(point_cell, kind="stable")
        counts = np.bincount(point_cell, minlength=cell_keys.shape[0]).astype(
            np.int64
        )
        starts = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
        self._cell_keys = cell_keys
        self._cell_start = starts
        self._cell_count = counts
        self._point_order = order
        self._point_cell = point_cell
        # Bucket lists for the per-point probe path; stable argsort keeps
        # each bucket in ascending point order, same as appending i = 0..n.
        self._cells = {
            (int(cx), int(cy)): order[s : s + c].tolist()
            for (cx, cy), s, c in zip(
                cell_keys.tolist(), starts.tolist(), counts.tolist()
            )
        }

    @property
    def eps(self) -> float:
        """The query radius this index was built for."""
        return self._eps

    def __len__(self) -> int:
        return self._points.shape[0]

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self._eps)), int(math.floor(y / self._eps)))

    def neighbors(self, index: int) -> np.ndarray:
        """Indices of points within ``eps`` of point ``index`` (inclusive of itself).

        DBSCAN counts the point itself as part of its ε-neighbourhood, so it
        is not removed here.
        """
        if not 0 <= index < len(self):
            raise IndexError(f"point index {index} outside [0, {len(self)})")
        x, y = self._points[index]
        return self.neighbors_of_point(float(x), float(y))

    def neighbors_of_point(self, x: float, y: float) -> np.ndarray:
        """Indices of indexed points within ``eps`` of an arbitrary location."""
        cx, cy = self._cell_of(x, y)
        candidates: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = self._cells.get((cx + dx, cy + dy))
                if bucket:
                    candidates.extend(bucket)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(candidates, dtype=np.int64)
        diffs = self._points[cand] - np.array([x, y], dtype=np.float64)
        dist2 = np.einsum("ij,ij->i", diffs, diffs)
        return cand[dist2 <= self._eps * self._eps]

    def neighborhoods(self) -> tuple[np.ndarray, np.ndarray]:
        """Every point's ε-neighbourhood as CSR ``(indptr, indices)`` arrays.

        ``indices[indptr[i]:indptr[i + 1]]`` holds the same point indices,
        in the same order, as ``neighbors(i)`` — the 3x3 cell-block probe
        order (block offsets outermost, ascending point index within each
        bucket) filtered by ``dist² <= eps²``.  All neighbourhoods are
        computed with whole-block numpy distance math: for each of the 9
        block offsets, every (point, candidate-cell) pairing is expanded
        into flat index arrays, distance-filtered in bulk, and the kept
        pairs assembled into CSR rows with one stable sort.
        """
        n = self._points.shape[0]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n == 0:
            return indptr, np.empty(0, dtype=np.int64)
        points = self._points
        eps2 = self._eps * self._eps
        order = self._point_order
        starts = self._cell_start
        counts = self._cell_count
        point_cell = self._point_cell
        keys = [(int(cx), int(cy)) for cx, cy in self._cell_keys.tolist()]
        key_to_cell = {key: g for g, key in enumerate(keys)}
        num_cells = len(keys)

        rows_kept: list[np.ndarray] = []
        cols_kept: list[np.ndarray] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                # For every cell, the id of its (dx, dy) neighbour cell.
                neighbor_cell = np.fromiter(
                    (
                        key_to_cell.get((cx + dx, cy + dy), -1)
                        for cx, cy in keys
                    ),
                    dtype=np.int64,
                    count=num_cells,
                )
                target = neighbor_cell[point_cell]  # (n,) candidate cell per point
                row_idx = np.nonzero(target >= 0)[0]
                if row_idx.size == 0:
                    continue
                cand_cell = target[row_idx]
                cand_count = counts[cand_cell]
                pair_cum = np.cumsum(cand_count)
                total_pairs = int(pair_cum[-1])
                if total_pairs == 0:
                    continue
                lo = 0
                while lo < row_idx.size:
                    base = int(pair_cum[lo - 1]) if lo else 0
                    hi = int(
                        np.searchsorted(pair_cum, base + _MAX_CHUNK_PAIRS, "right")
                    )
                    hi = max(hi, lo + 1)
                    chunk_count = cand_count[lo:hi]
                    chunk_total = int(pair_cum[hi - 1]) - base
                    rows = np.repeat(row_idx[lo:hi], chunk_count)
                    # Concatenate the candidate-cell slices of `order`
                    # without a Python loop: per-row slice start, shifted
                    # by the running position inside the chunk.
                    slice_start = starts[cand_cell[lo:hi]]
                    prefix = np.cumsum(chunk_count) - chunk_count
                    cols = order[
                        np.repeat(slice_start - prefix, chunk_count)
                        + np.arange(chunk_total)
                    ]
                    diffs = points[rows] - points[cols]
                    within = np.einsum("ij,ij->i", diffs, diffs) <= eps2
                    rows_kept.append(rows[within])
                    cols_kept.append(cols[within])
                    lo = hi

        all_rows = np.concatenate(rows_kept)
        all_cols = np.concatenate(cols_kept)
        # Stable sort by row preserves, within each row, the block-offset
        # append order and the in-bucket candidate order — exactly the
        # per-point probe's output order.
        perm = np.argsort(all_rows, kind="stable")
        indices = all_cols[perm]
        np.cumsum(np.bincount(all_rows, minlength=n), out=indptr[1:])
        return indptr, indices

    def count_within(self, x: float, y: float) -> int:
        """Number of indexed points within ``eps`` of ``(x, y)``."""
        return int(self.neighbors_of_point(x, y).size)
