"""Uniform grid index for fixed-radius neighbour queries.

DBSCAN's inner loop is the ε-neighbourhood query.  A uniform grid with cell
side ε answers it by scanning the 3x3 block of cells around the query point,
which keeps region discovery linear-ish in practice for the paper's offset
groups (a few hundred points each) and scales to the large synthetic corpora
used by the TPT benchmarks.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

__all__ = ["GridIndex"]


class GridIndex:
    """Static grid over a fixed point set, tuned for radius-``eps`` queries.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of the indexed points.
    eps:
        Query radius; also the grid cell side.
    """

    __slots__ = ("_points", "_eps", "_cells")

    def __init__(self, points: np.ndarray, eps: float):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {points.shape}")
        if not math.isfinite(eps) or eps <= 0:
            raise ValueError(f"eps must be a positive finite number, got {eps}")
        self._points = points
        self._eps = float(eps)
        cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        for i, (x, y) in enumerate(points):
            cells[self._cell_of(x, y)].append(i)
        self._cells = dict(cells)

    @property
    def eps(self) -> float:
        """The query radius this index was built for."""
        return self._eps

    def __len__(self) -> int:
        return self._points.shape[0]

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self._eps)), int(math.floor(y / self._eps)))

    def neighbors(self, index: int) -> np.ndarray:
        """Indices of points within ``eps`` of point ``index`` (inclusive of itself).

        DBSCAN counts the point itself as part of its ε-neighbourhood, so it
        is not removed here.
        """
        if not 0 <= index < len(self):
            raise IndexError(f"point index {index} outside [0, {len(self)})")
        x, y = self._points[index]
        return self.neighbors_of_point(float(x), float(y))

    def neighbors_of_point(self, x: float, y: float) -> np.ndarray:
        """Indices of indexed points within ``eps`` of an arbitrary location."""
        cx, cy = self._cell_of(x, y)
        candidates: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = self._cells.get((cx + dx, cy + dy))
                if bucket:
                    candidates.extend(bucket)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(candidates, dtype=np.int64)
        diffs = self._points[cand] - np.array([x, y], dtype=np.float64)
        dist2 = np.einsum("ij,ij->i", diffs, diffs)
        return cand[dist2 <= self._eps * self._eps]

    def count_within(self, x: float, y: float) -> int:
        """Number of indexed points within ``eps`` of ``(x, y)``."""
        return int(self.neighbors_of_point(x, y).size)
