"""Clustering substrate: grid-accelerated DBSCAN for frequent-region discovery."""

from .dbscan import NOISE, DBSCANResult, dbscan
from .grid_index import GridIndex

__all__ = ["NOISE", "DBSCANResult", "GridIndex", "dbscan"]
