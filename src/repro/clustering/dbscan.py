"""DBSCAN (Ester et al., KDD 1996), implemented from scratch.

The paper discovers frequent regions by running DBSCAN over each offset
group ``G_t`` (Section IV): "They then apply the density-based clustering
algorithm DBSCAN to find clusters (frequent regions) for each time offset t.
In this case, MinPts and Eps parameters of DBSCAN play the same role as
support of mining frequent item sets."

This is the classic label-propagation formulation: a point with at least
``min_pts`` neighbours within ``eps`` (itself included) is a *core* point;
clusters are the maximal sets of density-connected core points plus their
border points; everything else is noise (label ``-1``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .grid_index import GridIndex

__all__ = ["NOISE", "dbscan", "DBSCANResult"]

NOISE = -1
_UNVISITED = -2


@dataclass(frozen=True)
class DBSCANResult:
    """Outcome of a DBSCAN run.

    Attributes
    ----------
    labels:
        ``(n,)`` int array; cluster id per point, ``-1`` for noise.
        Cluster ids are contiguous and start at 0, numbered in order of
        discovery (deterministic given the input order).
    num_clusters:
        Number of clusters found.
    core_mask:
        ``(n,)`` bool array; ``True`` where the point is a core point.
    """

    labels: np.ndarray
    num_clusters: int
    core_mask: np.ndarray

    def members(self, cluster_id: int) -> np.ndarray:
        """Indices of points labelled ``cluster_id``."""
        if not 0 <= cluster_id < self.num_clusters:
            raise ValueError(
                f"cluster id {cluster_id} outside [0, {self.num_clusters})"
            )
        return np.nonzero(self.labels == cluster_id)[0]

    def noise(self) -> np.ndarray:
        """Indices of noise points."""
        return np.nonzero(self.labels == NOISE)[0]


def dbscan(points: np.ndarray, eps: float, min_pts: int) -> DBSCANResult:
    """Cluster ``points`` with DBSCAN.

    Parameters
    ----------
    points:
        ``(n, 2)`` array.
    eps:
        Maximum distance between neighbours (the paper's ``Eps``).
    min_pts:
        Minimum neighbourhood size (self-inclusive) for a core point
        (the paper's ``MinPts``).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {points.shape}")
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    n = points.shape[0]
    labels = np.full(n, _UNVISITED, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    if n == 0:
        return DBSCANResult(labels=labels, num_clusters=0, core_mask=core_mask)

    index = GridIndex(points, eps)
    # Precompute neighbourhoods once; DBSCAN revisits them during expansion.
    neighborhoods: list[np.ndarray] = [index.neighbors(i) for i in range(n)]
    core_mask = np.array([len(nb) >= min_pts for nb in neighborhoods], dtype=bool)

    cluster_id = 0
    for seed in range(n):
        if labels[seed] != _UNVISITED:
            continue
        if not core_mask[seed]:
            # Classic DBSCAN: provisionally noise.  A later cluster
            # expansion may still reach this point and relabel it as a
            # border member (the NOISE -> border path below).
            labels[seed] = NOISE
            continue
        # Breadth-first expansion from an unclaimed core point.
        labels[seed] = cluster_id
        queue: deque[int] = deque(int(j) for j in neighborhoods[seed])
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster_id  # border point previously marked noise
            if labels[j] != _UNVISITED:
                continue
            labels[j] = cluster_id
            if core_mask[j]:
                queue.extend(int(k) for k in neighborhoods[j])
        cluster_id += 1

    labels[labels == _UNVISITED] = NOISE
    return DBSCANResult(labels=labels, num_clusters=cluster_id, core_mask=core_mask)
