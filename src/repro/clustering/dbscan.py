"""DBSCAN (Ester et al., KDD 1996), implemented from scratch.

The paper discovers frequent regions by running DBSCAN over each offset
group ``G_t`` (Section IV): "They then apply the density-based clustering
algorithm DBSCAN to find clusters (frequent regions) for each time offset t.
In this case, MinPts and Eps parameters of DBSCAN play the same role as
support of mining frequent item sets."

This is the classic label-propagation formulation: a point with at least
``min_pts`` neighbours within ``eps`` (itself included) is a *core* point;
clusters are the maximal sets of density-connected core points plus their
border points; everything else is noise (label ``-1``).

Implementation notes
--------------------
All ε-neighbourhoods come from one batched :meth:`GridIndex.neighborhoods`
call (CSR adjacency), and each cluster expansion is a level-synchronous
BFS over CSR slices — whole frontiers are claimed and expanded with array
ops instead of a per-point Python queue.  The labels are identical to the
classic one-point-at-a-time loop: a point's final label depends only on
the seed order (ascending point index) and on which clusters can reach
it, never on the order points are visited *within* one expansion — border
points are claimed by the earliest-discovered adjacent cluster either
way.  The test suite pins this equivalence against a brute-force oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid_index import GridIndex

__all__ = ["NOISE", "dbscan", "DBSCANResult"]

NOISE = -1
_UNVISITED = -2


@dataclass(frozen=True)
class DBSCANResult:
    """Outcome of a DBSCAN run.

    Attributes
    ----------
    labels:
        ``(n,)`` int array; cluster id per point, ``-1`` for noise.
        Cluster ids are contiguous and start at 0, numbered in order of
        discovery (deterministic given the input order).
    num_clusters:
        Number of clusters found.
    core_mask:
        ``(n,)`` bool array; ``True`` where the point is a core point.
    """

    labels: np.ndarray
    num_clusters: int
    core_mask: np.ndarray

    def members(self, cluster_id: int) -> np.ndarray:
        """Indices of points labelled ``cluster_id``."""
        if not 0 <= cluster_id < self.num_clusters:
            raise ValueError(
                f"cluster id {cluster_id} outside [0, {self.num_clusters})"
            )
        return np.nonzero(self.labels == cluster_id)[0]

    def noise(self) -> np.ndarray:
        """Indices of noise points."""
        return np.nonzero(self.labels == NOISE)[0]


def dbscan(points: np.ndarray, eps: float, min_pts: int) -> DBSCANResult:
    """Cluster ``points`` with DBSCAN.

    Parameters
    ----------
    points:
        ``(n, 2)`` array.
    eps:
        Maximum distance between neighbours (the paper's ``Eps``).
    min_pts:
        Minimum neighbourhood size (self-inclusive) for a core point
        (the paper's ``MinPts``).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {points.shape}")
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    n = points.shape[0]
    labels = np.full(n, _UNVISITED, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    if n == 0:
        return DBSCANResult(labels=labels, num_clusters=0, core_mask=core_mask)

    index = GridIndex(points, eps)
    indptr, indices = index.neighborhoods()
    core_mask = (indptr[1:] - indptr[:-1]) >= min_pts

    # Non-core points can never seed a cluster; in the classic loop each
    # sits provisionally at NOISE until some expansion claims it as a
    # border member.  Marking them NOISE upfront is label-identical and
    # lets the frontier logic distinguish "unclaimed core" (_UNVISITED)
    # from "unclaimed border candidate" (NOISE) with one comparison.
    labels[~core_mask] = NOISE

    cluster_id = 0
    for seed in range(n):
        if labels[seed] != _UNVISITED:
            continue
        # Level-synchronous BFS from an unclaimed core point.
        labels[seed] = cluster_id
        frontier = indices[indptr[seed] : indptr[seed + 1]]
        while frontier.size:
            status = labels[frontier]
            # Unclaimed cores join and keep expanding; unclaimed
            # non-cores (still NOISE) join as border points and stop.
            expand = np.unique(frontier[status == _UNVISITED])
            border = frontier[status == NOISE]
            labels[border] = cluster_id
            if expand.size == 0:
                break
            labels[expand] = cluster_id
            row_start = indptr[expand]
            row_count = indptr[expand + 1] - row_start
            total = int(row_count.sum())
            prefix = np.cumsum(row_count) - row_count
            frontier = indices[
                np.repeat(row_start - prefix, row_count) + np.arange(total)
            ]
        cluster_id += 1

    return DBSCANResult(labels=labels, num_clusters=cluster_id, core_mask=core_mask)
