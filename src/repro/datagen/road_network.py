"""Synthetic road network for the Car scenario.

The paper's Car dataset "has many sudden changes of direction on road
intersections" — the property that breaks motion-function extrapolation.
We model it with a perturbed grid graph (networkx): intersections sit on a
jittered lattice, a fraction of edges is removed (keeping the graph
connected), and routes are shortest paths, which produce the sharp 90°-ish
turns the paper relies on.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .routes import Route

__all__ = ["RoadNetwork"]


class RoadNetwork:
    """A jittered-grid road graph with shortest-path routing.

    Parameters
    ----------
    grid_size:
        Number of intersections per side.
    extent:
        The network spans ``[0, extent]²``.
    removal_fraction:
        Fraction of edges to randomly remove (connectivity preserved).
    jitter_fraction:
        Intersection displacement as a fraction of the cell size.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        grid_size: int = 10,
        extent: float = 10000.0,
        removal_fraction: float = 0.2,
        jitter_fraction: float = 0.15,
        rng: np.random.Generator | None = None,
    ):
        if grid_size < 2:
            raise ValueError(f"grid_size must be >= 2, got {grid_size}")
        if extent <= 0:
            raise ValueError(f"extent must be positive, got {extent}")
        if not 0.0 <= removal_fraction < 1.0:
            raise ValueError(
                f"removal_fraction must be in [0, 1), got {removal_fraction}"
            )
        if rng is None:
            rng = np.random.default_rng()
        self.extent = float(extent)
        cell = extent / (grid_size - 1)

        graph = nx.grid_2d_graph(grid_size, grid_size)
        # Jittered intersection coordinates.
        coords: dict[tuple[int, int], np.ndarray] = {}
        for node in graph.nodes:
            base = np.array([node[0] * cell, node[1] * cell])
            coords[node] = base + rng.normal(0.0, jitter_fraction * cell, 2)

        # Remove a random subset of edges without disconnecting the graph.
        edges = list(graph.edges)
        rng.shuffle(edges)
        to_remove = int(removal_fraction * len(edges))
        removed = 0
        for edge in edges:
            if removed >= to_remove:
                break
            graph.remove_edge(*edge)
            if nx.is_connected(graph):
                removed += 1
            else:
                graph.add_edge(*edge)

        for u, v in graph.edges:
            graph.edges[u, v]["length"] = float(np.linalg.norm(coords[u] - coords[v]))

        self.graph = graph
        self.coords = coords
        self._nodes = list(graph.nodes)
        self._rng = rng

    @property
    def num_intersections(self) -> int:
        """Number of intersections in the network."""
        return len(self._nodes)

    def nearest_node(self, x: float, y: float) -> tuple[int, int]:
        """The intersection closest to ``(x, y)``."""
        target = np.array([x, y])
        return min(
            self._nodes,
            key=lambda n: float(np.linalg.norm(self.coords[n] - target)),
        )

    def route_between(
        self, start: tuple[float, float], end: tuple[float, float], name: str = "drive"
    ) -> Route:
        """Shortest-path route between the intersections nearest the endpoints."""
        a = self.nearest_node(*start)
        b = self.nearest_node(*end)
        if a == b:
            raise ValueError("start and end map to the same intersection")
        path = nx.shortest_path(self.graph, a, b, weight="length")
        waypoints = np.array([self.coords[n] for n in path])
        return Route(waypoints, name=name)

    def random_route(self, rng: np.random.Generator | None = None, name: str = "drive") -> Route:
        """Shortest path between two random distinct intersections."""
        rng = rng or self._rng
        idx = rng.choice(len(self._nodes), size=2, replace=False)
        a, b = self._nodes[int(idx[0])], self._nodes[int(idx[1])]
        path = nx.shortest_path(self.graph, a, b, weight="length")
        if len(path) < 2:
            return self.random_route(rng, name)
        waypoints = np.array([self.coords[n] for n in path])
        return Route(waypoints, name=name)
