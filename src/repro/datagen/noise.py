"""Noise models for synthetic trajectory generation.

The periodic generator perturbs route-following days with Gaussian GPS
jitter and replaces pattern-free days with a smoothed random walk, the two
ingredients of the Mamoulis et al. generator the paper adapts ("we modified
the periodic data generator [10] to be able to produce trajectories
implying patterns").
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_jitter", "random_walk", "moving_average", "detour"]


def gaussian_jitter(
    positions: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Positions plus isotropic Gaussian noise of scale ``sigma``."""
    positions = np.asarray(positions, dtype=np.float64)
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        return positions.copy()
    return positions + rng.normal(0.0, sigma, positions.shape)


def random_walk(
    start: np.ndarray | tuple[float, float],
    num_steps: int,
    step_scale: float,
    rng: np.random.Generator,
    momentum: float = 0.8,
) -> np.ndarray:
    """A correlated random walk of ``num_steps`` positions from ``start``.

    Steps are an AR(1) process (``momentum`` controls how much of the
    previous heading persists), which produces wandering-but-smooth motion
    like an off-pattern day rather than white-noise teleportation.
    """
    if num_steps < 1:
        raise ValueError(f"num_steps must be >= 1, got {num_steps}")
    if step_scale < 0:
        raise ValueError(f"step_scale must be non-negative, got {step_scale}")
    if not 0.0 <= momentum < 1.0:
        raise ValueError(f"momentum must be in [0, 1), got {momentum}")
    positions = np.empty((num_steps, 2), dtype=np.float64)
    positions[0] = np.asarray(start, dtype=np.float64)
    velocity = rng.normal(0.0, step_scale, 2)
    for i in range(1, num_steps):
        velocity = momentum * velocity + (1.0 - momentum) * rng.normal(
            0.0, step_scale, 2
        )
        positions[i] = positions[i - 1] + velocity
    return positions


def detour(
    base: np.ndarray,
    amplitude: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A day that *roughly* follows ``base`` but drifts off it smoothly.

    Adds a smoothed Brownian offset path scaled to a random amplitude in
    ``[0.5, 1.5] x amplitude``.  This models the off-pattern days of the
    Mamoulis-style generator — the object takes a different-but-nearby
    course rather than teleporting into white noise — so the dataset's
    pattern strength degrades gracefully with ``1 - f``.
    """
    base = np.asarray(base, dtype=np.float64)
    if base.ndim != 2 or base.shape[1] != 2:
        raise ValueError(f"base must have shape (n, 2), got {base.shape}")
    if amplitude < 0:
        raise ValueError(f"amplitude must be non-negative, got {amplitude}")
    n = base.shape[0]
    if n == 0 or amplitude == 0:
        return base.copy()
    offset = np.cumsum(rng.normal(0.0, 1.0, (n, 2)), axis=0)
    offset = moving_average(offset, window=max(3, n // 10))
    max_norm = float(np.linalg.norm(offset, axis=1).max())
    if max_norm > 0:
        offset *= amplitude * float(rng.uniform(0.5, 1.5)) / max_norm
    return base + offset


def moving_average(positions: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average along the time axis (edge-padded).

    Used to smooth synthetic routes so sampled headings change gradually.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or positions.shape[0] <= 2:
        return positions.copy()
    pad = window // 2
    padded = np.pad(positions, ((pad, pad), (0, 0)), mode="edge")
    kernel = np.ones(window) / window
    out = np.empty_like(positions)
    for dim in range(positions.shape[1]):
        out[:, dim] = np.convolve(padded[:, dim], kernel, mode="valid")[
            : positions.shape[0]
        ]
    return out
