"""The periodic trajectory generator (after Mamoulis et al. [10]).

Section VII: "We then generated 199 similar trajectories having T = 300 to
each original trajectory ... we modified the periodic data generator [10]
to be able to produce trajectories implying patterns.  We set most
parameters of the generator to the same values as the study except the
probability f that a generated trajectory was similar to the given
trajectory."

For every sub-trajectory (one period):

* with probability ``f`` the object follows one of its routes (picked by
  route weight — e.g. weekday vs weekend) plus Gaussian jitter — a
  *patterned* day;
* otherwise it wanders on a correlated random walk from the route start —
  a *pattern-free* day contributing noise to every offset group.

The finished trajectory is normalised to ``[0, extent]²`` to match the
paper's data space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trajectory.trajectory import Trajectory
from .noise import detour, gaussian_jitter, random_walk
from .routes import Route

__all__ = ["WeightedRoute", "PeriodicTrajectoryGenerator"]


@dataclass(frozen=True)
class WeightedRoute:
    """A route with its selection weight (relative frequency of use)."""

    route: Route
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"route weight must be positive, got {self.weight}")


class PeriodicTrajectoryGenerator:
    """Synthesises a long periodic trajectory from one or more routes.

    Parameters
    ----------
    routes:
        The object's habitual routes with selection weights.
    pattern_probability:
        The paper's ``f`` — chance a sub-trajectory follows a route.
    noise_sigma:
        GPS jitter scale on patterned days (in route units, pre-normalise).
    deviation_mode:
        What a pattern-free day looks like: ``"detour"`` (default) drifts
        smoothly around the chosen route — the object still travels its
        general course but off the habitual line; ``"walk"`` abandons the
        route entirely for a correlated random walk (used for the weakly
        patterned Airplane dataset).
    deviation_amplitude:
        Peak drift of a detour day (ignored for ``"walk"``); ``None``
        derives 6 % of the extent.
    deviation_step_scale:
        Random-walk step scale on ``"walk"`` days; ``None`` derives it
        from the first route's mean per-step displacement.
    phase_jitter:
        Half-width of the per-day uniform schedule shift (fraction of the
        period).  Zero keeps every patterned day perfectly offset-aligned;
        larger values smear positions across offsets, weakening the
        clusters DBSCAN can find — this is the dial that turns a Bike-like
        dataset into an Airplane-like one.
    extent:
        Output data-space size; positions are normalised to
        ``[0, extent]²`` (the paper uses 10000).
    """

    def __init__(
        self,
        routes: list[WeightedRoute] | list[Route],
        pattern_probability: float,
        noise_sigma: float,
        deviation_mode: str = "detour",
        deviation_amplitude: float | None = None,
        deviation_step_scale: float | None = None,
        phase_jitter: float = 0.0,
        extent: float = 10000.0,
    ):
        if not routes:
            raise ValueError("need at least one route")
        normalised: list[WeightedRoute] = []
        for r in routes:
            normalised.append(r if isinstance(r, WeightedRoute) else WeightedRoute(r))
        if not 0.0 <= pattern_probability <= 1.0:
            raise ValueError(
                f"pattern_probability must be in [0, 1], got {pattern_probability}"
            )
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if deviation_mode not in ("detour", "walk"):
            raise ValueError(
                f"deviation_mode must be 'detour' or 'walk', got {deviation_mode!r}"
            )
        if deviation_amplitude is not None and deviation_amplitude < 0:
            raise ValueError(
                f"deviation_amplitude must be non-negative, got {deviation_amplitude}"
            )
        if not 0.0 <= phase_jitter < 0.5:
            raise ValueError(f"phase_jitter must be in [0, 0.5), got {phase_jitter}")
        if extent <= 0:
            raise ValueError(f"extent must be positive, got {extent}")
        self.routes = normalised
        self.pattern_probability = pattern_probability
        self.noise_sigma = noise_sigma
        self.deviation_mode = deviation_mode
        self.deviation_amplitude = (
            0.06 * extent if deviation_amplitude is None else float(deviation_amplitude)
        )
        self.deviation_step_scale = deviation_step_scale
        self.phase_jitter = phase_jitter
        self.extent = float(extent)

    def generate(
        self,
        num_subtrajectories: int,
        period: int,
        rng: np.random.Generator,
    ) -> Trajectory:
        """Generate ``num_subtrajectories`` periods of ``period`` samples each."""
        if num_subtrajectories < 1:
            raise ValueError(
                f"num_subtrajectories must be >= 1, got {num_subtrajectories}"
            )
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")

        weights = np.array([r.weight for r in self.routes], dtype=np.float64)
        weights /= weights.sum()
        reference = self.routes[0].route.sample(period)
        step_scale = self.deviation_step_scale
        if step_scale is None:
            steps = np.linalg.norm(np.diff(reference, axis=0), axis=1)
            step_scale = float(steps.mean()) if steps.size else 1.0

        blocks: list[np.ndarray] = []
        for _ in range(num_subtrajectories):
            route_idx = int(rng.choice(len(self.routes), p=weights))
            route = self.routes[route_idx].route
            if rng.random() < self.pattern_probability:
                phase = (
                    float(rng.uniform(-self.phase_jitter, self.phase_jitter))
                    if self.phase_jitter > 0
                    else 0.0
                )
                base = route.sample(period, phase=phase)
                block = gaussian_jitter(base, self.noise_sigma, rng)
            elif self.deviation_mode == "detour":
                block = detour(route.sample(period), self.deviation_amplitude, rng)
            else:
                block = random_walk(
                    route.sample(period)[0], period, step_scale, rng
                )
            blocks.append(block)

        positions = np.vstack(blocks)
        return Trajectory(self._normalise(positions))

    def _normalise(self, positions: np.ndarray) -> np.ndarray:
        """Affine-map positions into ``[0, extent]²`` preserving aspect ratio.

        A single uniform scale keeps route geometry (turn angles, relative
        region sizes) intact, as the paper's normalisation does.
        """
        mins = positions.min(axis=0)
        maxs = positions.max(axis=0)
        span = float((maxs - mins).max())
        if span == 0:
            return np.full_like(positions, self.extent / 2.0)
        scale = self.extent / span
        return (positions - mins) * scale
