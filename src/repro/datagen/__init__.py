"""Synthetic data substrate: periodic generator and the paper's scenarios."""

from .generator import PeriodicTrajectoryGenerator, WeightedRoute
from .noise import gaussian_jitter, moving_average, random_walk
from .road_network import RoadNetwork
from .routes import Route, wiggly_route
from .scenarios import (
    SCENARIO_NAMES,
    make_airplane,
    make_bike,
    make_car,
    make_cow,
    make_dataset,
    paper_datasets,
)

__all__ = [
    "PeriodicTrajectoryGenerator",
    "RoadNetwork",
    "Route",
    "SCENARIO_NAMES",
    "WeightedRoute",
    "gaussian_jitter",
    "make_airplane",
    "make_bike",
    "make_car",
    "make_cow",
    "make_dataset",
    "moving_average",
    "paper_datasets",
    "random_walk",
    "wiggly_route",
]
