"""The paper's four evaluation datasets, synthesised (Section VII).

Each scenario mirrors the seed trace the authors collected and the pattern
strength they injected ("We set different probabilities to each data
generation (Bike > Cow > Car > Airplane)"):

* **Bike** — a ride between two towns: one habitual smooth route, f = 0.9
  (strongest patterns; the paper's Fig. 7 shows its pattern counts
  exploding with Eps while accuracy stays flat).
* **Cow** — virtual-fencing cattle: daily grazing loops inside a paddock
  with two habitual circuits, f = 0.8.
* **Car** — a commute on a road network: shortest-path routes with sudden
  direction changes at intersections (the property that defeats motion
  functions), a weekday and an alternate route, f = 0.7.
* **Airplane** — synthetic airport-to-airport segments over several
  schedules, f = 0.5 ("Airplane had weak movement patterns", so HPM's
  advantage shrinks and pattern-parameter sweeps bite hardest).

All datasets: 200 sub-trajectories x T = 300 positions, extent normalised
to [0, 10000]² — the paper's shape exactly.
"""

from __future__ import annotations

import numpy as np

from ..trajectory.dataset import TrajectoryDataset
from .generator import PeriodicTrajectoryGenerator, WeightedRoute
from .road_network import RoadNetwork
from .routes import Route, wiggly_route

__all__ = [
    "make_bike",
    "make_cow",
    "make_car",
    "make_airplane",
    "make_dataset",
    "paper_datasets",
    "SCENARIO_NAMES",
]

SCENARIO_NAMES = ("bike", "cow", "car", "airplane")

_DEFAULT_SUBTRAJECTORIES = 200
_DEFAULT_PERIOD = 300
_EXTENT = 10000.0


def make_bike(
    num_subtrajectories: int = _DEFAULT_SUBTRAJECTORIES,
    period: int = _DEFAULT_PERIOD,
    seed: int = 7,
) -> TrajectoryDataset:
    """The Bike dataset: one town-to-town route, pattern probability 0.9."""
    rng = np.random.default_rng(seed)
    route = wiggly_route(
        start=(600.0, 800.0),
        end=(9200.0, 9300.0),
        num_waypoints=14,
        wiggle=700.0,
        rng=rng,
        name="town-to-town",
    )
    generator = PeriodicTrajectoryGenerator(
        routes=[WeightedRoute(route)],
        pattern_probability=0.9,
        noise_sigma=10.0,
        deviation_mode="detour",
        deviation_amplitude=600.0,
        phase_jitter=0.0,
        extent=_EXTENT,
    )
    return _build("bike", generator, num_subtrajectories, period, rng, seed, f=0.9)


def make_cow(
    num_subtrajectories: int = _DEFAULT_SUBTRAJECTORIES,
    period: int = _DEFAULT_PERIOD,
    seed: int = 11,
) -> TrajectoryDataset:
    """The Cow dataset: two grazing circuits in a paddock, f = 0.8."""
    rng = np.random.default_rng(seed)
    # Two closed circuits with dwell at grazing spots and the water hole.
    circuit_a = Route(
        np.array(
            [
                [2000.0, 2000.0],  # water hole
                [3500.0, 5200.0],
                [2600.0, 7800.0],  # north grazing
                [5200.0, 8300.0],
                [6800.0, 6100.0],
                [4800.0, 3400.0],
                [2000.0, 2000.0],
            ]
        ),
        dwell=(0.05, 0.0, 0.25, 0.0, 0.12, 0.0, 0.05),
        name="north-circuit",
    )
    circuit_b = Route(
        np.array(
            [
                [2000.0, 2000.0],  # water hole
                [5400.0, 1800.0],
                [8400.0, 2600.0],  # east grazing
                [8900.0, 5400.0],
                [6300.0, 4600.0],
                [2000.0, 2000.0],
            ]
        ),
        dwell=(0.05, 0.0, 0.3, 0.07, 0.0, 0.05),
        name="east-circuit",
    )
    generator = PeriodicTrajectoryGenerator(
        routes=[WeightedRoute(circuit_a, 5.0), WeightedRoute(circuit_b, 2.0)],
        pattern_probability=0.8,
        noise_sigma=12.0,
        deviation_mode="detour",
        deviation_amplitude=600.0,
        phase_jitter=0.0,
        extent=_EXTENT,
    )
    return _build("cow", generator, num_subtrajectories, period, rng, seed, f=0.8)


def make_car(
    num_subtrajectories: int = _DEFAULT_SUBTRAJECTORIES,
    period: int = _DEFAULT_PERIOD,
    seed: int = 13,
) -> TrajectoryDataset:
    """The Car dataset: commute on a road network with sharp turns, f = 0.7."""
    rng = np.random.default_rng(seed)
    network = RoadNetwork(
        grid_size=9, extent=_EXTENT, removal_fraction=0.25, rng=rng
    )
    home = (900.0, 1100.0)
    work = (8900.0, 8600.0)
    mall = (8300.0, 1500.0)
    commute = network.route_between(home, work, name="commute")
    errand = network.route_between(home, mall, name="errand")
    # Dwell at origin/destination (parked car) bookending each drive.
    commute = Route(commute.waypoints, _parked_dwell(commute), "commute")
    errand = Route(errand.waypoints, _parked_dwell(errand), "errand")
    generator = PeriodicTrajectoryGenerator(
        routes=[WeightedRoute(commute, 5.0), WeightedRoute(errand, 2.0)],
        pattern_probability=0.7,
        noise_sigma=8.0,
        deviation_mode="detour",
        deviation_amplitude=700.0,
        phase_jitter=0.0,
        extent=_EXTENT,
    )
    return _build("car", generator, num_subtrajectories, period, rng, seed, f=0.7)


def make_airplane(
    num_subtrajectories: int = _DEFAULT_SUBTRAJECTORIES,
    period: int = _DEFAULT_PERIOD,
    seed: int = 17,
) -> TrajectoryDataset:
    """The Airplane dataset: airport-pair segments, weak patterns (f = 0.5)."""
    rng = np.random.default_rng(seed)
    # "Some points were sampled from real data (road networks in California)
    # to serve as airports, then random locations were synthetically
    # generated on the segment connecting two random airports."  The
    # object flies one dominant multi-leg itinerary plus an occasional
    # alternate itinerary sharing the departure airport; half of all days
    # (f = 0.5) deviate on wide detours, which is what keeps this the
    # weakest-patterned dataset of the four.
    airports = rng.uniform(800.0, 9200.0, size=(5, 2))
    dominant = Route(
        np.vstack([airports[0], airports[1], airports[2]]),
        dwell=(0.12, 0.08, 0.1),
        name="itinerary-a",
    )
    alternate = Route(
        np.vstack([airports[0], airports[3], airports[4]]),
        dwell=(0.12, 0.08, 0.1),
        name="itinerary-b",
    )
    generator = PeriodicTrajectoryGenerator(
        routes=[WeightedRoute(dominant, 4.0), WeightedRoute(alternate, 1.5)],
        pattern_probability=0.5,
        noise_sigma=18.0,
        deviation_mode="detour",
        deviation_amplitude=2200.0,
        phase_jitter=0.0,
        extent=_EXTENT,
    )
    return _build(
        "airplane", generator, num_subtrajectories, period, rng, seed, f=0.5
    )


def make_dataset(
    name: str,
    num_subtrajectories: int = _DEFAULT_SUBTRAJECTORIES,
    period: int = _DEFAULT_PERIOD,
    seed: int | None = None,
) -> TrajectoryDataset:
    """Scenario dispatch by name (``bike``/``cow``/``car``/``airplane``)."""
    makers = {
        "bike": make_bike,
        "cow": make_cow,
        "car": make_car,
        "airplane": make_airplane,
    }
    try:
        maker = makers[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(makers)}"
        ) from None
    if seed is None:
        return maker(num_subtrajectories, period)
    return maker(num_subtrajectories, period, seed)


def paper_datasets(
    num_subtrajectories: int = _DEFAULT_SUBTRAJECTORIES,
    period: int = _DEFAULT_PERIOD,
) -> dict[str, TrajectoryDataset]:
    """All four evaluation datasets with their default seeds."""
    return {name: make_dataset(name, num_subtrajectories, period) for name in SCENARIO_NAMES}


def _parked_dwell(route: Route) -> tuple[float, ...]:
    """Dwell profile: parked 20 % at the origin, 25 % at the destination."""
    dwell = [0.0] * route.waypoints.shape[0]
    dwell[0] = 0.20
    dwell[-1] = 0.25
    return tuple(dwell)


def _build(
    name: str,
    generator: PeriodicTrajectoryGenerator,
    num_subtrajectories: int,
    period: int,
    rng: np.random.Generator,
    seed: int,
    f: float,
) -> TrajectoryDataset:
    trajectory = generator.generate(num_subtrajectories, period, rng)
    return TrajectoryDataset(
        name=name,
        trajectory=trajectory,
        period=period,
        metadata={
            "pattern_probability": f,
            "seed": seed,
            "num_subtrajectories": num_subtrajectories,
            "extent": _EXTENT,
        },
    )
