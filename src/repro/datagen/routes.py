"""Routes: waypoint polylines sampled into fixed-length position sequences.

A :class:`Route` is the "original trajectory" of the paper's generator —
the daily journey a patterned sub-trajectory follows.  Sampling is
arc-length parameterised (constant speed along the polyline), with optional
dwell segments for stop-and-stay behaviour (home before leaving, paddock
grazing, airport turnaround).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Route", "wiggly_route"]


@dataclass(frozen=True)
class Route:
    """A polyline route with optional dwell fractions at each waypoint.

    Attributes
    ----------
    waypoints:
        ``(m, 2)`` array of the corner points, in visit order.
    dwell:
        Optional per-waypoint fractions of total time spent stationary at
        that waypoint (must sum to < 1; the remainder is travel time).
    name:
        Label for diagnostics.
    """

    waypoints: np.ndarray
    dwell: tuple[float, ...] | None = None
    name: str = "route"

    def __post_init__(self) -> None:
        wp = np.asarray(self.waypoints, dtype=np.float64)
        if wp.ndim != 2 or wp.shape[1] != 2 or wp.shape[0] < 2:
            raise ValueError(
                f"waypoints must have shape (m >= 2, 2), got {wp.shape}"
            )
        object.__setattr__(self, "waypoints", wp)
        if self.dwell is not None:
            if len(self.dwell) != wp.shape[0]:
                raise ValueError(
                    f"dwell needs one fraction per waypoint "
                    f"({len(self.dwell)} != {wp.shape[0]})"
                )
            if any(d < 0 for d in self.dwell):
                raise ValueError("dwell fractions must be non-negative")
            if sum(self.dwell) >= 1.0:
                raise ValueError("dwell fractions must sum to < 1")

    @property
    def length(self) -> float:
        """Total polyline length."""
        return float(
            np.linalg.norm(np.diff(self.waypoints, axis=0), axis=1).sum()
        )

    def sample(self, num_positions: int, phase: float = 0.0) -> np.ndarray:
        """``(num_positions, 2)`` positions along the route at constant pace.

        Dwell waypoints hold the position for their share of the samples;
        travel segments are covered at uniform arc-length speed.

        ``phase`` shifts the day's schedule: positive means the journey
        starts late (the object lingers at the first waypoint and the
        period ends before the route completes); negative means it starts
        early and dwells at the destination.  Time fractions are clipped
        to [0, 1].  Per-day random phases are how the generator produces
        *weakly aligned* datasets (the paper's Airplane).
        """
        if num_positions < 2:
            raise ValueError(f"num_positions must be >= 2, got {num_positions}")
        fractions = np.clip(np.linspace(0.0, 1.0, num_positions) - phase, 0.0, 1.0)
        return self.sample_at(fractions)

    def sample_at(self, fractions: np.ndarray) -> np.ndarray:
        """Positions at arbitrary time fractions in [0, 1] along the schedule."""
        fractions = np.asarray(fractions, dtype=np.float64)
        if fractions.ndim != 1 or fractions.size == 0:
            raise ValueError("fractions must be a non-empty 1-D array")
        if np.any(fractions < 0.0) or np.any(fractions > 1.0):
            raise ValueError("time fractions must lie in [0, 1]")
        wp = self.waypoints
        seg_lengths = np.linalg.norm(np.diff(wp, axis=0), axis=1)
        total = seg_lengths.sum()
        if total == 0:
            return np.tile(wp[0], (fractions.size, 1))

        dwell = self.dwell or tuple(0.0 for _ in range(wp.shape[0]))
        travel_fraction = 1.0 - sum(dwell)

        # Build a mapping from time-fraction u in [0, 1] to arc position:
        # alternating dwell (flat) and travel (linear in arc length) spans.
        time_marks = [0.0]  # time fraction at each breakpoint
        arc_marks = [0.0]  # cumulative arc length at each breakpoint
        cumulative_arc = 0.0
        for i in range(wp.shape[0]):
            if dwell[i] > 0:
                time_marks.append(time_marks[-1] + dwell[i])
                arc_marks.append(cumulative_arc)
            if i < wp.shape[0] - 1:
                seg_time = travel_fraction * seg_lengths[i] / total
                cumulative_arc += seg_lengths[i]
                time_marks.append(time_marks[-1] + seg_time)
                arc_marks.append(cumulative_arc)
        time_marks[-1] = 1.0  # absorb float drift

        arcs = np.interp(fractions, time_marks, arc_marks)
        return self._positions_at_arcs(arcs, wp, seg_lengths)

    @staticmethod
    def _positions_at_arcs(
        arcs: np.ndarray, wp: np.ndarray, seg_lengths: np.ndarray
    ) -> np.ndarray:
        boundaries = np.concatenate([[0.0], np.cumsum(seg_lengths)])
        out = np.empty((arcs.shape[0], 2), dtype=np.float64)
        for i, arc in enumerate(arcs):
            seg = int(np.searchsorted(boundaries, arc, side="right")) - 1
            seg = min(max(seg, 0), len(seg_lengths) - 1)
            seg_len = seg_lengths[seg]
            frac = 0.0 if seg_len == 0 else (arc - boundaries[seg]) / seg_len
            out[i] = wp[seg] + frac * (wp[seg + 1] - wp[seg])
        return out

    def reversed(self) -> "Route":
        """The same route travelled in the opposite direction."""
        dwell = None if self.dwell is None else tuple(reversed(self.dwell))
        return Route(self.waypoints[::-1].copy(), dwell, f"{self.name}-reversed")


def wiggly_route(
    start: tuple[float, float],
    end: tuple[float, float],
    num_waypoints: int,
    wiggle: float,
    rng: np.random.Generator,
    name: str = "route",
) -> Route:
    """A route from ``start`` to ``end`` with lateral random deviations.

    Intermediate waypoints sit on the straight line, displaced
    perpendicular to it by ``N(0, wiggle)`` — the shape of a real road or
    bike path between two towns.
    """
    if num_waypoints < 2:
        raise ValueError(f"num_waypoints must be >= 2, got {num_waypoints}")
    if wiggle < 0:
        raise ValueError(f"wiggle must be non-negative, got {wiggle}")
    a = np.asarray(start, dtype=np.float64)
    b = np.asarray(end, dtype=np.float64)
    direction = b - a
    norm = np.linalg.norm(direction)
    if norm == 0:
        raise ValueError("start and end coincide")
    perpendicular = np.array([-direction[1], direction[0]]) / norm
    fractions = np.linspace(0.0, 1.0, num_waypoints)
    waypoints = a + np.outer(fractions, direction)
    lateral = rng.normal(0.0, wiggle, num_waypoints)
    lateral[0] = lateral[-1] = 0.0  # endpoints stay put
    waypoints += np.outer(lateral, perpendicular)
    return Route(waypoints, name=name)
