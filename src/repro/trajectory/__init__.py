"""Trajectory substrate: geometric primitives, containers, IO and metrics."""

from .dataset import TrajectoryDataset
from .io import (
    load_trajectories,
    load_trajectory,
    save_trajectories,
    save_trajectory,
)
from .metrics import (
    ErrorSummary,
    euclidean_error,
    mean_error,
    median_error,
    percentile_error,
    root_mean_squared_error,
    summarize_errors,
)
from .periodicity import PeriodScore, estimate_period, score_period
from .point import BoundingBox, Point, TimedPoint
from .preprocessing import (
    StayPoint,
    fill_gaps,
    remove_speed_spikes,
    resample_uniform,
    stay_points,
)
from .trajectory import OffsetGroup, SubTrajectory, Trajectory

__all__ = [
    "BoundingBox",
    "ErrorSummary",
    "OffsetGroup",
    "PeriodScore",
    "Point",
    "StayPoint",
    "SubTrajectory",
    "TimedPoint",
    "Trajectory",
    "TrajectoryDataset",
    "estimate_period",
    "euclidean_error",
    "fill_gaps",
    "load_trajectories",
    "load_trajectory",
    "mean_error",
    "median_error",
    "percentile_error",
    "remove_speed_spikes",
    "resample_uniform",
    "root_mean_squared_error",
    "save_trajectories",
    "save_trajectory",
    "score_period",
    "stay_points",
    "summarize_errors",
]
