"""CSV import/export for trajectories.

The on-disk format is a plain CSV with a header ``t,x,y`` and one row per
sample.  Multi-trajectory files add an ``object_id`` column.  The format is
deliberately trivial so real GPS exports (e.g. the paper's bike/cow/car
traces) can be dropped in with a one-line conversion.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping

import numpy as np

from .trajectory import Trajectory

__all__ = [
    "save_trajectory",
    "load_trajectory",
    "save_trajectories",
    "load_trajectories",
]

_HEADER = ["t", "x", "y"]
_MULTI_HEADER = ["object_id", "t", "x", "y"]


def save_trajectory(trajectory: Trajectory, path: str | Path) -> None:
    """Write one trajectory to ``path`` as ``t,x,y`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        t = trajectory.start_time
        for x, y in trajectory.positions:
            writer.writerow([t, repr(float(x)), repr(float(y))])
            t += 1


def load_trajectory(path: str | Path) -> Trajectory:
    """Read a single-trajectory ``t,x,y`` CSV written by :func:`save_trajectory`.

    Timestamps must be consecutive integers; the file may list rows in any
    order.
    """
    path = Path(path)
    rows: list[tuple[int, float, float]] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"{path}: expected header {_HEADER}, got {header}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ValueError(f"{path}:{lineno}: expected 3 columns, got {len(row)}")
            rows.append((int(row[0]), float(row[1]), float(row[2])))
    if not rows:
        raise ValueError(f"{path}: no samples")
    rows.sort(key=lambda r: r[0])
    times = [r[0] for r in rows]
    start = times[0]
    expected = list(range(start, start + len(rows)))
    if times != expected:
        raise ValueError(f"{path}: timestamps are not consecutive integers")
    positions = np.array([[r[1], r[2]] for r in rows], dtype=np.float64)
    return Trajectory(positions, start_time=start)


def save_trajectories(trajectories: Mapping[str, Trajectory], path: str | Path) -> None:
    """Write a mapping of object id -> trajectory as ``object_id,t,x,y`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_MULTI_HEADER)
        for object_id in sorted(trajectories):
            traj = trajectories[object_id]
            t = traj.start_time
            for x, y in traj.positions:
                writer.writerow([object_id, t, repr(float(x)), repr(float(y))])
                t += 1


def load_trajectories(path: str | Path) -> dict[str, Trajectory]:
    """Read a multi-object CSV written by :func:`save_trajectories`."""
    path = Path(path)
    per_object: dict[str, list[tuple[int, float, float]]] = {}
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _MULTI_HEADER:
            raise ValueError(f"{path}: expected header {_MULTI_HEADER}, got {header}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            per_object.setdefault(row[0], []).append(
                (int(row[1]), float(row[2]), float(row[3]))
            )
    result: dict[str, Trajectory] = {}
    for object_id, rows in per_object.items():
        rows.sort(key=lambda r: r[0])
        times = [r[0] for r in rows]
        start = times[0]
        if times != list(range(start, start + len(rows))):
            raise ValueError(
                f"{path}: object {object_id!r} timestamps are not consecutive"
            )
        positions = np.array([[r[1], r[2]] for r in rows], dtype=np.float64)
        result[object_id] = Trajectory(positions, start_time=start)
    return result
