"""Dataset container binding a trajectory to its periodic structure.

The paper's experiments operate on "datasets" of 200 sub-trajectories with
T = 300 positions each (Section VII).  A :class:`TrajectoryDataset` is a
trajectory plus its period and a human-readable name, with helpers for the
train/test splits used by the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trajectory import SubTrajectory, Trajectory

__all__ = ["TrajectoryDataset"]


@dataclass(frozen=True)
class TrajectoryDataset:
    """A named periodic trajectory dataset.

    Attributes
    ----------
    name:
        Scenario label (e.g. ``"bike"``).
    trajectory:
        The full movement history.
    period:
        The pattern period ``T`` (number of timestamps per sub-trajectory).
    metadata:
        Free-form generation parameters, recorded for reproducibility.
    """

    name: str
    trajectory: Trajectory
    period: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if len(self.trajectory) == 0:
            raise ValueError("dataset trajectory is empty")

    @property
    def num_subtrajectories(self) -> int:
        """Number of (possibly partial) sub-trajectories in the dataset."""
        n = len(self.trajectory)
        return (n + self.period - 1) // self.period

    def subtrajectories(self) -> list[SubTrajectory]:
        """Periodic decomposition of the whole trajectory."""
        return self.trajectory.decompose(self.period)

    def training_split(self, num_subtrajectories: int) -> Trajectory:
        """First ``num_subtrajectories`` full periods, for pattern mining.

        The paper trains on a configurable number of sub-trajectories
        (60 by default, swept in Fig. 6).
        """
        if num_subtrajectories <= 0:
            raise ValueError(
                f"need at least one training sub-trajectory, got {num_subtrajectories}"
            )
        if num_subtrajectories > self.num_subtrajectories:
            raise ValueError(
                f"asked for {num_subtrajectories} training sub-trajectories, "
                f"dataset has {self.num_subtrajectories}"
            )
        return self.trajectory.slice(0, num_subtrajectories * self.period)

    def test_split(self, num_training_subtrajectories: int) -> Trajectory:
        """Everything after the training split, used to sample queries."""
        start = num_training_subtrajectories * self.period
        if start >= len(self.trajectory):
            raise ValueError(
                "no samples left for testing after "
                f"{num_training_subtrajectories} training sub-trajectories"
            )
        return self.trajectory.slice(start, len(self.trajectory))

    def __repr__(self) -> str:
        return (
            f"TrajectoryDataset(name={self.name!r}, period={self.period}, "
            f"subtrajectories={self.num_subtrajectories})"
        )
