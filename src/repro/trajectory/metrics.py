"""Error metrics for location prediction.

Section VII-A: "A prediction error is measured as the distance between a
predicted location and its actual location.  We test 50 queries ... and
average their errors."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .point import Point

__all__ = [
    "euclidean_error",
    "mean_error",
    "root_mean_squared_error",
    "median_error",
    "percentile_error",
    "ErrorSummary",
    "summarize_errors",
]


def euclidean_error(predicted: Point, actual: Point) -> float:
    """Distance between a predicted and an actual location."""
    return predicted.distance_to(actual)


def _as_array(errors: Sequence[float]) -> np.ndarray:
    arr = np.asarray(errors, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"errors must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("no errors to aggregate")
    if np.any(arr < 0):
        raise ValueError("errors must be non-negative")
    return arr


def mean_error(errors: Sequence[float]) -> float:
    """Average error — the paper's headline accuracy metric."""
    return float(_as_array(errors).mean())


def root_mean_squared_error(errors: Sequence[float]) -> float:
    """RMSE over per-query distance errors."""
    arr = _as_array(errors)
    return float(math.sqrt(float((arr * arr).mean())))


def median_error(errors: Sequence[float]) -> float:
    """Median error (robust to a few divergent motion-function predictions)."""
    return float(np.median(_as_array(errors)))


def percentile_error(errors: Sequence[float], q: float) -> float:
    """``q``-th percentile error, ``0 <= q <= 100``."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(_as_array(errors), q))


@dataclass(frozen=True, slots=True)
class ErrorSummary:
    """Aggregate statistics over a batch of per-query distance errors."""

    count: int
    mean: float
    median: float
    rmse: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} median={self.median:.1f} "
            f"rmse={self.rmse:.1f} p90={self.p90:.1f} max={self.maximum:.1f}"
        )


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Build an :class:`ErrorSummary` from raw per-query errors."""
    arr = _as_array(errors)
    maximum = float(arr.max())
    # Pairwise summation can push the mean of near-identical values one
    # ULP past the maximum; clamp so mean <= maximum always holds.
    return ErrorSummary(
        count=int(arr.size),
        mean=min(float(arr.mean()), maximum),
        median=float(np.median(arr)),
        rmse=float(math.sqrt(float((arr * arr).mean()))),
        p90=float(np.percentile(arr, 90)),
        maximum=maximum,
    )
