"""Geometric primitives for moving-object trajectories.

The paper models an object's trajectory as a sequence of 2-D locations
sampled at consecutive integer timestamps (Section III).  ``Point`` is the
location primitive and ``BoundingBox`` the axis-aligned rectangle used to
summarise frequent regions and tree entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = ["Point", "TimedPoint", "BoundingBox"]


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2-D location."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``.

        This is the error metric used throughout the paper's evaluation
        ("a prediction error is measured as the distance between a
        predicted location and its actual location", Section VII-A).
        """
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class TimedPoint:
    """A location stamped with an integer timestamp.

    Timestamps are global (monotonically increasing over the whole
    trajectory); the periodic *time offset* of the paper is obtained with
    ``offset = t mod T`` for a period ``T``.
    """

    t: int
    x: float
    y: float

    @property
    def point(self) -> Point:
        """The spatial component as a :class:`Point`."""
        return Point(self.x, self.y)

    def offset(self, period: int) -> int:
        """Time offset of this sample within a period of length ``period``."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        return self.t % period

    def as_tuple(self) -> tuple[int, float, float]:
        """Return ``(t, x, y)``."""
        return (self.t, self.x, self.y)


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate bounding box: "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point | tuple[float, float]]) -> "BoundingBox":
        """Smallest box containing every point in ``points``.

        Raises ``ValueError`` for an empty iterable.
        """
        xs: list[float] = []
        ys: list[float] = []
        for p in points:
            px, py = (p.x, p.y) if isinstance(p, Point) else (p[0], p[1])
            xs.append(px)
            ys.append(py)
        if not xs:
            raise ValueError("cannot build a bounding box from no points")
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def center(self) -> Point:
        """Centroid of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, point: Point | tuple[float, float]) -> bool:
        """Whether ``point`` lies inside the (closed) box."""
        px, py = (point.x, point.y) if isinstance(point, Point) else (point[0], point[1])
        return self.min_x <= px <= self.max_x and self.min_y <= py <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two (closed) boxes overlap."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the box (nearest point inside it)."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("cannot take the centroid of no points")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    return Point(sx / len(points), sy / len(points))
