"""Preprocessing raw GPS logs into the uniform trajectories HPM mines.

The paper's seed data are real GPS traces (a cow's ear tag, a bike ride,
a car on Tehran-ro).  Real logs are irregularly sampled, have gaps and
spikes; the mining pipeline expects one location per integer timestamp.
This module provides the standard cleaning steps:

* :func:`resample_uniform` — map (timestamp, x, y) fixes onto a uniform
  tick grid by linear interpolation;
* :func:`fill_gaps` — interpolate interior gaps up to a bound, refusing
  to invent movement across longer outages;
* :func:`remove_speed_spikes` — drop fixes implying impossible speeds
  (multipath jumps), iteratively;
* :func:`stay_points` — detect dwell episodes (the raw-data analogue of
  the dwell behaviour the scenario routes model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .point import Point
from .trajectory import Trajectory

__all__ = [
    "resample_uniform",
    "fill_gaps",
    "remove_speed_spikes",
    "stay_points",
    "StayPoint",
]


def _validate_fixes(
    times: np.ndarray, positions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=np.float64)
    positions = np.asarray(positions, dtype=np.float64)
    if times.ndim != 1:
        raise ValueError(f"times must be 1-D, got shape {times.shape}")
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if len(times) != len(positions):
        raise ValueError(
            f"times ({len(times)}) and positions ({len(positions)}) must align"
        )
    if len(times) == 0:
        raise ValueError("no fixes")
    if not np.all(np.isfinite(times)) or not np.all(np.isfinite(positions)):
        raise ValueError("fixes must be finite")
    if np.any(np.diff(times) <= 0):
        order = np.argsort(times, kind="stable")
        times = times[order]
        positions = positions[order]
        if np.any(np.diff(times) == 0):
            # Keep the last fix of duplicate timestamps (newest wins).
            keep = np.concatenate([np.diff(times) > 0, [True]])
            times = times[keep]
            positions = positions[keep]
    return times, positions


def resample_uniform(
    times: Sequence[float],
    positions: np.ndarray,
    tick: float = 1.0,
    start_time: int = 0,
) -> Trajectory:
    """Linearly resample irregular fixes onto a uniform tick grid.

    Tick ``i`` of the result is the interpolated location at
    ``times[0] + i * tick``; the grid covers the full observation span.
    ``start_time`` sets the integer timestamp of the first output sample.
    """
    if tick <= 0:
        raise ValueError(f"tick must be positive, got {tick}")
    t, p = _validate_fixes(np.asarray(times), positions)
    if len(t) < 2:
        return Trajectory(p[:1].copy(), start_time=start_time)
    num_ticks = int(np.floor((t[-1] - t[0]) / tick)) + 1
    grid = t[0] + tick * np.arange(num_ticks)
    out = np.column_stack(
        [np.interp(grid, t, p[:, 0]), np.interp(grid, t, p[:, 1])]
    )
    return Trajectory(out, start_time=start_time)


def fill_gaps(
    times: Sequence[float],
    positions: np.ndarray,
    max_gap: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Split fixes into segments at gaps longer than ``max_gap``.

    Returns ``(times, positions)`` of the *longest* contiguous segment —
    the standard conservative choice when an outage is too long to
    interpolate across.  (Use :func:`resample_uniform` afterwards.)
    """
    if max_gap <= 0:
        raise ValueError(f"max_gap must be positive, got {max_gap}")
    t, p = _validate_fixes(np.asarray(times), positions)
    breaks = np.nonzero(np.diff(t) > max_gap)[0]
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks + 1, [len(t)]])
    lengths = ends - starts
    best = int(np.argmax(lengths))
    sl = slice(int(starts[best]), int(ends[best]))
    return t[sl].copy(), p[sl].copy()


def remove_speed_spikes(
    times: Sequence[float],
    positions: np.ndarray,
    max_speed: float,
    max_iterations: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """Iteratively drop fixes implying speeds above ``max_speed``.

    A multipath spike makes both its incoming and outgoing legs too fast;
    dropping the offending fix and re-checking converges quickly.
    """
    if max_speed <= 0:
        raise ValueError(f"max_speed must be positive, got {max_speed}")
    t, p = _validate_fixes(np.asarray(times), positions)
    for _ in range(max_iterations):
        if len(t) < 2:
            break
        dt = np.diff(t)
        dist = np.linalg.norm(np.diff(p, axis=0), axis=1)
        speeds = dist / dt
        fast = speeds > max_speed
        if not fast.any():
            break
        # A spike point arrives fast AND leaves fast (or is the last fix):
        # drop exactly those, never the first sample.
        n = len(t)
        drop = [
            i
            for i in range(1, n)
            if fast[i - 1] and (i == n - 1 or fast[i])
        ]
        if not drop:
            # No lone spike (e.g. a pair of adjacent bad fixes moving
            # together): drop the arrival of the first fast leg and retry.
            drop = [int(np.nonzero(fast)[0][0]) + 1]
        keep = np.ones(n, dtype=bool)
        keep[drop] = False
        t, p = t[keep], p[keep]
    return t, p


@dataclass(frozen=True)
class StayPoint:
    """A dwell episode: the object stayed within ``radius`` for a while."""

    center: Point
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def stay_points(
    times: Sequence[float],
    positions: np.ndarray,
    radius: float,
    min_duration: float,
) -> list[StayPoint]:
    """Detect stay points: maximal episodes within ``radius`` of their
    first fix lasting at least ``min_duration``.

    The classic Li et al. formulation; useful for choosing the dwell
    fractions of scenario routes from real logs.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if min_duration <= 0:
        raise ValueError(f"min_duration must be positive, got {min_duration}")
    t, p = _validate_fixes(np.asarray(times), positions)
    result: list[StayPoint] = []
    i = 0
    n = len(t)
    while i < n:
        j = i + 1
        while j < n and np.linalg.norm(p[j] - p[i]) <= radius:
            j += 1
        if t[j - 1] - t[i] >= min_duration:
            centroid = p[i:j].mean(axis=0)
            result.append(
                StayPoint(
                    center=Point(float(centroid[0]), float(centroid[1])),
                    start_time=float(t[i]),
                    end_time=float(t[j - 1]),
                )
            )
            i = j
        else:
            i += 1
    return result
