"""Estimating the pattern period ``T`` from raw movement history.

Section III: "``T`` is data-dependent and has no definite value.  For
example, ``T`` can be set to 'a day' in traffic control applications ...
while the behaviors of animals' annual migration can be discovered by
``T = 'a year'``."  When the sampling cadence of a trace is unknown, the
period must be estimated before anything can be mined.

The estimator scores each candidate period by *offset-group coherence*:
for the true ``T``, the locations at a fixed offset across
sub-trajectories collapse into tight clusters (that is exactly why
DBSCAN finds frequent regions), while any wrong period smears them
across the route.  The score is the mean per-offset spread, normalised
by the overall spread so datasets of different extents are comparable;
lower is better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trajectory import Trajectory

__all__ = ["PeriodScore", "score_period", "estimate_period"]


@dataclass(frozen=True)
class PeriodScore:
    """Coherence score of one candidate period (lower = more periodic)."""

    period: int
    coherence: float
    num_subtrajectories: int

    def __lt__(self, other: "PeriodScore") -> bool:
        return self.coherence < other.coherence


def score_period(
    trajectory: Trajectory, period: int, max_offsets: int = 64
) -> PeriodScore:
    """Offset-group coherence of one candidate period.

    ``coherence`` is the mean per-offset standard deviation divided by the
    whole trajectory's standard deviation; 0 means perfectly repeating
    movement, ~1 means the candidate explains nothing.  At most
    ``max_offsets`` evenly spaced offsets are sampled for speed.
    """
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    n = len(trajectory)
    if n < 2 * period:
        raise ValueError(
            f"need at least two periods of history ({2 * period}), got {n}"
        )
    positions = trajectory.positions
    global_spread = float(positions.std(axis=0).mean())
    if global_spread == 0:
        return PeriodScore(period=period, coherence=0.0, num_subtrajectories=n // period)

    num_full = n // period
    trimmed = positions[: num_full * period].reshape(num_full, period, 2)
    step = max(1, period // max_offsets)
    sampled = trimmed[:, ::step, :]  # (subs, offsets, 2)
    per_offset_spread = sampled.std(axis=0).mean()
    return PeriodScore(
        period=period,
        coherence=float(per_offset_spread / global_spread),
        num_subtrajectories=num_full,
    )


def estimate_period(
    trajectory: Trajectory,
    candidates: list[int] | None = None,
    min_period: int = 2,
    max_period: int | None = None,
) -> list[PeriodScore]:
    """Rank candidate periods by coherence, best first.

    Parameters
    ----------
    trajectory:
        The movement history (at least two repetitions of the true period
        must be present for it to win).
    candidates:
        Explicit periods to score; when omitted, every period in
        ``[min_period, max_period]`` with at least two full repetitions
        is scored (``max_period`` defaults to ``len(trajectory) // 2``).

    Note that multiples of the true period also score well (a two-day
    window repeats daily patterns); prefer the *smallest* candidate among
    near-tied leaders.
    """
    n = len(trajectory)
    if candidates is None:
        if max_period is None:
            max_period = n // 2
        if min_period < 2:
            raise ValueError(f"min_period must be >= 2, got {min_period}")
        if max_period < min_period:
            raise ValueError(
                f"max_period {max_period} below min_period {min_period}"
            )
        candidates = list(range(min_period, max_period + 1))
    if not candidates:
        raise ValueError("no candidate periods")
    scores = [
        score_period(trajectory, p) for p in candidates if n >= 2 * p
    ]
    if not scores:
        raise ValueError(
            "history too short for every candidate (need two repetitions)"
        )
    return sorted(scores)
