"""Trajectory container and the paper's periodic decomposition.

Section III: "An object's trajectory is typically represented as a sequence
``(l_0, l_1, ..., l_{n-1})`` where ``l_i`` denotes the object is at location
``l`` at time ``i``.  Given ``T`` ... an object's trajectory is decomposed
into ``ceil(n / T)`` sub-trajectories ... All locations from sub-trajectories
which have the same time offset ``t`` of ``T`` will be gathered onto one
group ``G_t``."

Positions are stored densely as a ``(n, 2)`` ``float64`` array; the sample
at row ``i`` implicitly carries timestamp ``start_time + i``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .point import BoundingBox, Point, TimedPoint

__all__ = ["Trajectory", "SubTrajectory", "OffsetGroup"]


class Trajectory:
    """A uniformly sampled 2-D trajectory.

    Parameters
    ----------
    positions:
        Array-like of shape ``(n, 2)``; row ``i`` is the location at
        timestamp ``start_time + i``.
    start_time:
        Global timestamp of the first sample (default 0).
    """

    __slots__ = ("_positions", "_start_time")

    def __init__(self, positions: np.ndarray | Sequence[Sequence[float]], start_time: int = 0):
        arr = np.asarray(positions, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"positions must have shape (n, 2), got {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ValueError("positions must be finite")
        self._positions = arr
        self._start_time = int(start_time)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """The raw ``(n, 2)`` position array (read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def start_time(self) -> int:
        """Global timestamp of the first sample."""
        return self._start_time

    @property
    def end_time(self) -> int:
        """Global timestamp of the last sample."""
        return self._start_time + len(self) - 1

    def __len__(self) -> int:
        return self._positions.shape[0]

    def __getitem__(self, index: int) -> Point:
        x, y = self._positions[index]
        return Point(float(x), float(y))

    def __iter__(self) -> Iterator[Point]:
        for x, y in self._positions:
            yield Point(float(x), float(y))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            self._start_time == other._start_time
            and self._positions.shape == other._positions.shape
            and bool(np.array_equal(self._positions, other._positions))
        )

    def __repr__(self) -> str:
        return (
            f"Trajectory(n={len(self)}, start_time={self._start_time}, "
            f"bbox={self.bounding_box() if len(self) else None})"
        )

    # ------------------------------------------------------------------
    # time-indexed access
    # ------------------------------------------------------------------
    def at(self, t: int) -> Point:
        """Location at global timestamp ``t``."""
        idx = t - self._start_time
        if not 0 <= idx < len(self):
            raise IndexError(
                f"timestamp {t} outside [{self._start_time}, {self.end_time}]"
            )
        return self[idx]

    def timed_point(self, t: int) -> TimedPoint:
        """Location at global timestamp ``t`` as a :class:`TimedPoint`."""
        p = self.at(t)
        return TimedPoint(t, p.x, p.y)

    def window(self, t_from: int, t_to: int) -> list[TimedPoint]:
        """Timed samples for ``t_from <= t <= t_to`` (inclusive)."""
        if t_to < t_from:
            raise ValueError(f"empty window [{t_from}, {t_to}]")
        return [self.timed_point(t) for t in range(t_from, t_to + 1)]

    def slice(self, start: int, stop: int) -> "Trajectory":
        """Sub-range ``[start, stop)`` by array index, keeping global time."""
        if not (0 <= start <= stop <= len(self)):
            raise ValueError(f"invalid slice [{start}, {stop}) for length {len(self)}")
        return Trajectory(self._positions[start:stop].copy(), self._start_time + start)

    def bounding_box(self) -> BoundingBox:
        """Smallest axis-aligned box containing every sample."""
        if len(self) == 0:
            raise ValueError("empty trajectory has no bounding box")
        mins = self._positions.min(axis=0)
        maxs = self._positions.max(axis=0)
        return BoundingBox(float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    # ------------------------------------------------------------------
    # periodic decomposition (Section III / Fig. 2)
    # ------------------------------------------------------------------
    def decompose(self, period: int) -> list["SubTrajectory"]:
        """Split into ``ceil(n / period)`` sub-trajectories of ``period`` samples.

        The final sub-trajectory may be shorter when ``n`` is not a multiple
        of ``period``.
        """
        self._check_period(period)
        subs: list[SubTrajectory] = []
        for k, start in enumerate(range(0, len(self), period)):
            stop = min(start + period, len(self))
            subs.append(SubTrajectory(self, index=k, start=start, stop=stop, period=period))
        return subs

    def offset_group(self, offset: int, period: int) -> "OffsetGroup":
        """The group ``G_t``: every sample whose time offset equals ``offset``.

        Returns positions from all sub-trajectories at that offset, together
        with the sub-trajectory index each sample came from.
        """
        self._check_period(period)
        if not 0 <= offset < period:
            raise ValueError(f"offset {offset} outside [0, {period})")
        # Global timestamps congruent to `offset` mod `period`.  The
        # sub-trajectory id is index-based to stay consistent with
        # decompose(); both views agree when start_time is period-aligned
        # (the mining pipeline's assumption).
        times = np.arange(self._start_time, self._start_time + len(self))
        mask = (times % period) == offset
        idx = np.nonzero(mask)[0]
        sub_ids = idx // period
        return OffsetGroup(
            offset=offset,
            period=period,
            positions=self._positions[idx].copy(),
            subtrajectory_ids=sub_ids.astype(np.int64),
        )

    def offset_groups(self, period: int) -> list["OffsetGroup"]:
        """All groups ``G_0 .. G_{T-1}`` for period ``T``."""
        self._check_period(period)
        return [self.offset_group(t, period) for t in range(period)]

    def _check_period(self, period: int) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def concatenate(cls, parts: Sequence["Trajectory"]) -> "Trajectory":
        """Join trajectories end-to-end; timestamps restart from the first part."""
        if not parts:
            raise ValueError("cannot concatenate no trajectories")
        arrays = [p._positions for p in parts]
        return cls(np.vstack(arrays), start_time=parts[0].start_time)

    @classmethod
    def from_subtrajectories(
        cls, rows: Sequence[np.ndarray | Sequence[Sequence[float]]], start_time: int = 0
    ) -> "Trajectory":
        """Build one long trajectory from per-period position blocks."""
        if not rows:
            raise ValueError("cannot build a trajectory from no sub-trajectories")
        arrays = [np.asarray(r, dtype=np.float64) for r in rows]
        return cls(np.vstack(arrays), start_time=start_time)


class SubTrajectory:
    """One period-length window of a parent trajectory (Fig. 2a).

    Sub-trajectory ``k`` covers array rows ``[k*T, (k+1)*T)`` of the parent.
    Indexing is by *time offset* within the period.
    """

    __slots__ = ("_parent", "index", "_start", "_stop", "period")

    def __init__(self, parent: Trajectory, index: int, start: int, stop: int, period: int):
        self._parent = parent
        self.index = index
        self._start = start
        self._stop = stop
        self.period = period

    def __len__(self) -> int:
        return self._stop - self._start

    @property
    def is_complete(self) -> bool:
        """Whether this sub-trajectory spans a full period."""
        return len(self) == self.period

    def at_offset(self, offset: int) -> Point:
        """Location at time offset ``offset`` within this sub-trajectory."""
        if not 0 <= offset < len(self):
            raise IndexError(f"offset {offset} outside [0, {len(self)})")
        return self._parent[self._start + offset]

    def positions(self) -> np.ndarray:
        """Positions of this sub-trajectory as an ``(m, 2)`` array copy."""
        return self._parent.positions[self._start : self._stop].copy()

    def global_time(self, offset: int) -> int:
        """Global timestamp of the sample at ``offset``."""
        if not 0 <= offset < len(self):
            raise IndexError(f"offset {offset} outside [0, {len(self)})")
        return self._parent.start_time + self._start + offset

    def __iter__(self) -> Iterator[Point]:
        for i in range(len(self)):
            yield self.at_offset(i)

    def __repr__(self) -> str:
        return f"SubTrajectory(index={self.index}, len={len(self)}, period={self.period})"


class OffsetGroup:
    """The group ``G_t`` of all samples at one time offset (Fig. 2b).

    ``positions[i]`` came from sub-trajectory ``subtrajectory_ids[i]``.
    Clustering this group yields the frequent regions ``R_t^j``.
    """

    __slots__ = ("offset", "period", "positions", "subtrajectory_ids")

    def __init__(
        self,
        offset: int,
        period: int,
        positions: np.ndarray,
        subtrajectory_ids: np.ndarray,
    ):
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must have shape (m, 2), got {positions.shape}")
        if len(positions) != len(subtrajectory_ids):
            raise ValueError("positions and subtrajectory_ids must align")
        self.offset = offset
        self.period = period
        self.positions = positions
        self.subtrajectory_ids = subtrajectory_ids

    def __len__(self) -> int:
        return self.positions.shape[0]

    def __repr__(self) -> str:
        return f"OffsetGroup(offset={self.offset}, n={len(self)})"
