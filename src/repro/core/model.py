"""The public HPM facade: fit on history, predict future locations.

Typical use::

    from repro import HybridPredictionModel, HPMConfig

    model = HybridPredictionModel(HPMConfig(period=300, eps=30, min_pts=4))
    model.fit(history)                      # a repro.trajectory.Trajectory
    predictions = model.predict(recent, query_time)

``fit`` runs the full offline pipeline of Sections IV and V — frequent-
region discovery, pruned pattern mining, key-table construction, TPT
build — and wires up the Section VI query processor.  When the history is
too weak to yield any pattern the model degrades to its motion function
(the paper's fallback), so ``predict`` always answers.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..motion.base import MotionFunctionFactory
from ..trajectory.point import TimedPoint
from ..trajectory.trajectory import Trajectory
from .config import HPMConfig
from .keys import KeyCodec
from .patterns import PatternMiningStats, TrajectoryPattern, mine_trajectory_patterns
from .plan import PreparedQuery
from .prediction import HybridPredictor, Prediction, default_motion_factory
from .refit import (
    CorpusDelta,
    RefitStats,
    StagedUpdate,
    StaleUpdateError,
    delta_discover_frequent_regions,
    delta_mine_trajectory_patterns,
    intern_regions,
)
from .regions import RegionSet, discover_frequent_regions
from .tpt import TrajectoryPatternTree

__all__ = ["HybridPredictionModel"]


class HybridPredictionModel:
    """End-to-end Hybrid Prediction Model (the paper's HPM).

    Parameters
    ----------
    config:
        A full :class:`HPMConfig`; keyword overrides may be passed instead
        (``HybridPredictionModel(period=300, eps=25)``).
    motion_factory:
        Zero-argument callable producing a fresh motion function per
        fallback query (default: RMF, the paper's choice).
    """

    def __init__(
        self,
        config: HPMConfig | None = None,
        motion_factory: MotionFunctionFactory = default_motion_factory,
        **overrides,
    ):
        if config is None:
            config = HPMConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.motion_factory = motion_factory
        self._history: Trajectory | None = None
        self._regions: RegionSet | None = None
        self._patterns: list[TrajectoryPattern] = []
        self._mining_stats: PatternMiningStats | None = None
        self._codec: KeyCodec | None = None
        self._tree: TrajectoryPatternTree | None = None
        self._predictor: HybridPredictor | None = None
        self._metrics = None
        self._fit_phase_seconds: dict[str, float] = {}
        # Monotonic token identifying the installed fitted state; a staged
        # update prepared against an older token is refused by
        # commit_update (see StaleUpdateError).
        self._state_token = 0
        self._deltas_since_full = 0
        self._last_refit_stats: RefitStats | None = None

    def bind_metrics(self, registry) -> None:
        """Attach a metrics registry to instrument the predict hot path.

        ``registry`` is duck-typed — any object with ``counter(name)`` and
        ``histogram(name)`` returning ``.inc()`` / ``.observe(seconds)``
        instruments works (:class:`repro.serve.metrics.MetricsRegistry`
        is the in-tree implementation).  Pass ``None`` to detach.
        """
        self._metrics = registry
        if self._predictor is not None:
            self._predictor.metrics = registry

    def __getstate__(self) -> dict:
        # Registries hold threading locks and are process-local; a model
        # crossing a pickle boundary (parallel fit workers, predict_all
        # process scoring) travels bare and is re-bound on adoption.
        state = self.__dict__.copy()
        state["_metrics"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Snapshots written before the incremental-refit bookkeeping
        # existed restore with fresh counters.
        self.__dict__.setdefault("_state_token", 0)
        self.__dict__.setdefault("_deltas_since_full", 0)
        self.__dict__.setdefault("_last_refit_stats", None)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, trajectory: Trajectory) -> "HybridPredictionModel":
        """Mine patterns from ``trajectory`` and build the TPT."""
        if len(trajectory) < self.config.period:
            raise ValueError(
                f"history of {len(trajectory)} samples is shorter than one "
                f"period ({self.config.period}); nothing periodic to mine"
            )
        self._history = trajectory
        self._fit_phase_seconds = {}
        self._rebuild()
        self._observe_fit_phases()
        self._state_token += 1
        self._deltas_since_full = 0
        self._last_refit_stats = None
        return self

    def update(
        self,
        new_positions: np.ndarray | Sequence[Sequence[float]],
        *,
        refit: str | None = None,
    ) -> "HybridPredictionModel":
        """Append newly observed movements and refresh the pattern corpus.

        The paper's dynamic-data path folds accumulated data back into the
        mined state.  With ``refit="delta"`` (the config default) only the
        offsets that received new rows are re-clustered and only the rules
        a changed region can move are re-scored; the TPT is patched in
        place via the paper's dynamic insertion (Algorithm 1) and entry
        removal.  ``refit="full"`` re-mines the whole history.  Both modes
        produce state byte-identical to :meth:`fit` over the concatenated
        history, and both rebuild the index when the key geometry drifts
        (new/removed frequent regions or consequence offsets).

        Equivalent to ``commit_update(prepare_update(...))``; callers that
        hold a lock during model mutation can run :meth:`prepare_update`
        outside it and only serialise the cheap commit.
        """
        staged = self.prepare_update(new_positions, refit=refit)
        self.commit_update(staged)
        return self

    def prepare_update(
        self,
        new_positions: np.ndarray | Sequence[Sequence[float]],
        *,
        refit: str | None = None,
    ) -> StagedUpdate:
        """Compute a model refresh without mutating the model.

        Runs the heavy phases — (delta) clustering, (delta) mining and the
        corpus diff — against a snapshot of the current state and returns
        a :class:`StagedUpdate` for :meth:`commit_update`.  Thread-safe
        with concurrent readers; a concurrent writer that lands first
        makes the eventual commit raise :class:`StaleUpdateError`.
        """
        self._require_fitted()
        # Token first: a concurrent install between this read and the
        # field reads below is caught by commit_update's token check.
        token = self._state_token
        old_history = self._history
        old_regions = self._regions
        old_patterns = self._patterns
        old_stats = self._mining_stats
        old_codec = self._codec
        old_tree = self._tree
        assert old_history is not None and old_regions is not None
        cfg = self.config

        new_rows = np.asarray(new_positions, dtype=np.float64)
        if new_rows.ndim != 2 or new_rows.shape[1] != 2:
            raise ValueError(
                f"new_positions must have shape (n, 2), got {new_rows.shape}"
            )
        if new_rows.shape[0] == 0:
            raise ValueError("new_positions is empty; nothing to fold in")
        history = Trajectory(
            np.vstack([old_history.positions, new_rows]),
            start_time=old_history.start_time,
        )

        mode = refit if refit is not None else cfg.refit_mode
        if mode not in ("delta", "full"):
            raise ValueError(f"refit must be 'delta' or 'full', got {mode!r}")
        fallback = None
        if (
            mode == "delta"
            and cfg.refit_full_every is not None
            and self._deltas_since_full >= cfg.refit_full_every
        ):
            mode, fallback = "full", "staleness"

        num_subs = (len(history) + cfg.period - 1) // cfg.period
        phase_seconds: dict[str, float] = {}
        cluster_start = time.perf_counter()
        if mode == "delta":
            first_new = old_history.end_time + 1
            dirty = np.unique(
                (first_new + np.arange(new_rows.shape[0])) % cfg.period
            )
            dirty_count = int(dirty.shape[0])
            regions, changed = delta_discover_frequent_regions(
                history,
                old_regions,
                dirty.tolist(),
                eps=cfg.eps,
                min_pts=cfg.min_pts,
            )
        else:
            dirty_count = cfg.period
            fresh = discover_frequent_regions(
                history, period=cfg.period, eps=cfg.eps, min_pts=cfg.min_pts
            )
            regions, changed = intern_regions(fresh, old_regions)
        mine_start = time.perf_counter()
        phase_seconds["cluster"] = mine_start - cluster_start

        corpus_delta: CorpusDelta | None = None
        if len(regions) == 0:
            patterns: list[TrajectoryPattern] = []
            mining_stats = PatternMiningStats(
                num_transactions=num_subs,
                num_frequent_items=0,
                num_frequent_premises=0,
                num_patterns=0,
            )
        elif mode == "delta":
            patterns, mining_stats, corpus_delta = delta_mine_trajectory_patterns(
                regions,
                num_subtrajectories=num_subs,
                min_support=cfg.effective_min_support,
                min_confidence=cfg.min_confidence,
                old_patterns=old_patterns,
                old_masks=old_stats.region_masks if old_stats is not None else None,
                changed_regions=changed,
                max_premise_length=cfg.max_premise_length,
                max_premise_span=cfg.max_premise_span,
                max_consequence_gap=cfg.effective_max_consequence_gap,
                far_premise_stride=cfg.far_premise_stride,
            )
        else:
            patterns, mining_stats = mine_trajectory_patterns(
                regions,
                num_subtrajectories=num_subs,
                min_support=cfg.effective_min_support,
                min_confidence=cfg.min_confidence,
                max_premise_length=cfg.max_premise_length,
                max_premise_span=cfg.max_premise_span,
                max_consequence_gap=cfg.effective_max_consequence_gap,
                far_premise_stride=cfg.far_premise_stride,
                return_stats=True,
            )
        phase_seconds["mine"] = time.perf_counter() - mine_start

        consequence_offsets = sorted({p.consequence.offset for p in patterns})
        if not patterns:
            plan = "clear"
        elif mode != "delta" or old_tree is None or old_codec is None:
            # A full re-mine rebuilds its index wholesale — that *is* the
            # baseline the delta path is measured against; diffing a fully
            # re-mined corpus would cost more than the rebuild.
            plan = "rebuild"
        elif [(r.offset, r.index) for r in regions] != [
            (r.offset, r.index) for r in old_regions
        ]:
            # Region universe changed: every region id (hence every stored
            # premise key) would shift — re-encode from scratch.
            plan = "rebuild"
        elif consequence_offsets != old_codec.consequence_offsets():
            plan = "rebuild"
        else:
            plan = "patch"

        if plan == "clear":
            index_desc = "cleared"
        elif plan == "rebuild":
            index_desc = "rebuilt"
        elif corpus_delta.empty:
            index_desc = "kept"
        else:
            index_desc = "patched"
        if corpus_delta is not None:
            added, removed = corpus_delta.added, corpus_delta.removed
            replaced, kept = corpus_delta.replaced, corpus_delta.kept
        else:
            # Full re-mine: the corpus is not diffed (see plan above);
            # report wholesale replacement.
            added, removed, replaced, kept = len(patterns), len(old_patterns), 0, 0
        stats = RefitStats(
            mode=mode,
            fallback=fallback,
            index=index_desc,
            new_rows=int(new_rows.shape[0]),
            dirty_offsets=dirty_count,
            changed_regions=len(changed),
            patterns_added=added,
            patterns_removed=removed,
            patterns_replaced=replaced,
            patterns_kept=kept,
        )
        use_ops = plan == "patch" and corpus_delta is not None
        return StagedUpdate(
            token=token,
            history=history,
            regions=regions,
            patterns=patterns,
            mining_stats=mining_stats,
            refit=stats,
            index_plan=plan,
            consequence_offsets=consequence_offsets,
            insert_ops=corpus_delta.inserts if use_ops else [],
            remove_ops=corpus_delta.removes if use_ops else [],
            rebind_ops=corpus_delta.rebinds if use_ops else [],
            phase_seconds=phase_seconds,
        )

    def commit_update(self, staged: StagedUpdate) -> "HybridPredictionModel":
        """Install a refresh prepared by :meth:`prepare_update`.

        Cheap relative to preparation: a pointer swap plus bounded TPT
        surgery (or a fresh index build on geometry drift).  Raises
        :class:`StaleUpdateError` without touching any state when the
        model was re-fitted/updated after the staged update was prepared.
        """
        self._require_fitted()
        if staged.token != self._state_token:
            raise StaleUpdateError(
                "model state advanced since prepare_update (token "
                f"{staged.token} != {self._state_token}); prepare again"
            )
        index_start = time.perf_counter()
        self._history = staged.history
        self._regions = staged.regions
        self._patterns = staged.patterns
        self._mining_stats = staged.mining_stats
        self._fit_phase_seconds = dict(staged.phase_seconds)
        if staged.index_plan == "patch":
            tree = self._tree
            assert tree is not None
            codec = KeyCodec(staged.regions, staged.consequence_offsets)
            tree.rebind_codec(codec)
            self._codec = codec
            # Re-scored same-position rules first: their keys are
            # unchanged, so they are payload swaps, not tree surgery.
            tree.rebind_patterns(staged.rebind_ops)
            for pattern in staged.remove_ops:
                tree.remove_pattern(pattern)
            for pattern in staged.insert_ops:
                tree.insert_pattern(pattern)
            self._refresh_predictor()
            self._fit_phase_seconds["index"] = time.perf_counter() - index_start
        else:
            self._build_index()
        self._last_refit_stats = staged.refit
        self._deltas_since_full = (
            0 if staged.refit.mode == "full" else self._deltas_since_full + 1
        )
        self._state_token += 1
        self._observe_fit_phases()
        if self._metrics is not None:
            self._metrics.counter(
                f"model_refit_total_{staged.refit.mode}"
            ).inc()
        return self

    def _rebuild(self) -> None:
        assert self._history is not None
        self._mine(self._history)
        self._build_index()

    def _restore(
        self,
        history: Trajectory,
        regions: RegionSet,
        patterns: list[TrajectoryPattern],
        tree_packed: tuple | None = None,
    ) -> None:
        """Install pre-mined state (used by :mod:`repro.core.persistence`).

        ``tree_packed`` optionally supplies the serialised TPT structure
        ``(entry_signatures, entry_pattern_rows, node_signatures)`` from a
        v2 snapshot (:mod:`repro.core.snapshot2`), letting the index
        rebuild skip key encoding, sorting and union derivation while
        producing a tree structurally identical to a fresh bulk load.
        """
        self._fit_phase_seconds = {}
        self._history = history
        self._regions = regions
        self._patterns = list(patterns)
        self._mining_stats = PatternMiningStats(
            num_transactions=(len(history) + self.config.period - 1)
            // self.config.period,
            num_frequent_items=len(regions),
            num_frequent_premises=0,
            num_patterns=len(patterns),
        )
        self._build_index(tree_packed)
        self._state_token += 1
        self._deltas_since_full = 0
        self._last_refit_stats = None

    def _mine(self, trajectory: Trajectory) -> None:
        cfg = self.config
        phase_start = time.perf_counter()
        self._regions = discover_frequent_regions(
            trajectory, period=cfg.period, eps=cfg.eps, min_pts=cfg.min_pts
        )
        mine_start = time.perf_counter()
        self._fit_phase_seconds["cluster"] = mine_start - phase_start
        num_subs = (len(trajectory) + cfg.period - 1) // cfg.period
        if len(self._regions) == 0:
            self._patterns = []
            self._mining_stats = PatternMiningStats(
                num_transactions=num_subs,
                num_frequent_items=0,
                num_frequent_premises=0,
                num_patterns=0,
            )
            self._fit_phase_seconds["mine"] = time.perf_counter() - mine_start
            return
        patterns, stats = mine_trajectory_patterns(
            self._regions,
            num_subtrajectories=num_subs,
            min_support=cfg.effective_min_support,
            min_confidence=cfg.min_confidence,
            max_premise_length=cfg.max_premise_length,
            max_premise_span=cfg.max_premise_span,
            max_consequence_gap=cfg.effective_max_consequence_gap,
            far_premise_stride=cfg.far_premise_stride,
            return_stats=True,
        )
        self._patterns = patterns
        self._mining_stats = stats
        self._fit_phase_seconds["mine"] = time.perf_counter() - mine_start

    def _build_index(self, tree_packed: tuple | None = None) -> None:
        assert self._regions is not None
        index_start = time.perf_counter()
        if len(self._regions) == 0 or not self._patterns:
            # Pattern-free degenerate mode: every query falls back to the
            # motion function, exactly as Algorithms 2/3 prescribe when no
            # candidate exists.
            self._codec = None
            self._tree = None
            self._predictor = None
            self._fit_phase_seconds["index"] = time.perf_counter() - index_start
            return
        self._codec = KeyCodec.from_patterns(self._regions, self._patterns)
        self._tree = TrajectoryPatternTree(
            self._codec,
            max_entries=self.config.tree_max_entries,
            min_entries=self.config.tree_min_entries,
        )
        if tree_packed is not None:
            entry_signatures, entry_rows, node_signatures = tree_packed
            self._tree.bulk_load_packed(
                entry_signatures,
                [self._patterns[i] for i in entry_rows],
                node_signatures,
            )
        else:
            self._tree.bulk_load_patterns(self._patterns)
        self._refresh_predictor()
        self._fit_phase_seconds["index"] = time.perf_counter() - index_start

    def _observe_fit_phases(self, registry=None) -> None:
        """Record the last fit's phase timings into a metrics registry.

        Observes ``fit_phase_seconds_{cluster,mine,index}`` histograms on
        the bound registry (or an explicit one — used when a model fitted
        in a detached worker is adopted by an instrumented fleet).
        """
        registry = registry if registry is not None else self._metrics
        if registry is None:
            return
        for phase, seconds in self.fit_phase_seconds_.items():
            registry.histogram(f"fit_phase_seconds_{phase}").observe(seconds)

    def _refresh_predictor(self) -> None:
        assert self._regions is not None
        assert self._codec is not None and self._tree is not None
        self._predictor = HybridPredictor(
            regions=self._regions,
            codec=self._codec,
            tree=self._tree,
            config=self.config,
            motion_factory=self.motion_factory,
            metrics=self._metrics,
        )

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def prepare(self, recent: Sequence[TimedPoint]) -> PreparedQuery:
        """Build a query plan for ``recent``, reusable across query times.

        The window-dependent work (region mapping, premise-key encoding,
        motion-function fitting, per-offset candidate scoring) happens at
        most once per plan; answer many query times against it with
        :meth:`predict_prepared`.  In pattern-free mode the plan routes
        every query to the motion fallback.
        """
        self._require_fitted()
        if self._predictor is not None:
            return self._predictor.prepare(recent)
        return PreparedQuery(
            regions=None,
            codec=None,
            tree=None,
            config=self.config,
            motion_factory=self.motion_factory,
            recent=recent,
        )

    def predict(
        self,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        """Answer a predictive query (see :meth:`HybridPredictor.predict`).

        When a metrics registry is bound (:meth:`bind_metrics`) each call
        increments ``model_predict_total``, times itself into the
        ``model_predict_seconds`` histogram, and counts the answering
        method (``model_predict_fqp_total`` plus the serve-facing
        ``predict_path_total_fqp`` etc.).
        """
        registry = self._metrics
        if registry is None:
            return self._predict(recent, query_time, k)
        start = time.perf_counter()
        try:
            predictions = self._predict(recent, query_time, k)
        except Exception:
            registry.counter("model_predict_errors_total").inc()
            raise
        self._observe_predict(registry, start, predictions)
        return predictions

    def predict_prepared(
        self,
        plan: PreparedQuery,
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        """Answer one query from a plan built by :meth:`prepare`.

        Metrics-instrumented exactly like :meth:`predict`; the answers are
        byte-identical to ``predict(plan.recent, query_time, k)``.
        """
        registry = self._metrics
        if registry is None:
            return self._predict_prepared(plan, query_time, k)
        start = time.perf_counter()
        try:
            predictions = self._predict_prepared(plan, query_time, k)
        except Exception:
            registry.counter("model_predict_errors_total").inc()
            raise
        self._observe_predict(registry, start, predictions)
        return predictions

    def _observe_predict(
        self, registry, start: float, predictions: list[Prediction]
    ) -> None:
        registry.counter("model_predict_total").inc()
        registry.histogram("model_predict_seconds").observe(
            time.perf_counter() - start
        )
        if predictions:
            method = predictions[0].method
            registry.counter(f"model_predict_{method}_total").inc()
            # Serve-facing path counter (the motion-fallback rate is
            # Fig. 10's cost driver): predict_path_total{method=...}
            # flattened to the registry's label-free naming.
            registry.counter(f"predict_path_total_{method}").inc()

    def _predict(
        self,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        self._require_fitted()
        if self._predictor is not None:
            return self._predictor.predict(recent, query_time, k)
        # Pattern-free mode: motion function only (historically answered
        # without query-time/k validation; keep that contract).
        return [self.prepare(recent).motion_prediction(query_time)]

    def _predict_prepared(
        self,
        plan: PreparedQuery,
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        self._require_fitted()
        if self._predictor is not None:
            return plan.predict(query_time, k)
        return [plan.motion_prediction(query_time)]

    def predict_one(self, recent: Sequence[TimedPoint], query_time: int) -> Prediction:
        """Top-1 convenience wrapper."""
        return self.predict(recent, query_time, k=1)[0]

    def predict_trajectory(
        self,
        recent: Sequence[TimedPoint],
        t_from: int,
        t_to: int,
        step: int = 1,
    ) -> list[tuple[int, Prediction]]:
        """Top-1 predictions over ``[t_from, t_to]`` at the given stride.

        See :meth:`HybridPredictor.predict_trajectory`; in pattern-free
        mode every timestamp is answered by the motion fallback.  All
        timestamps share one prepared plan, and each answered timestamp is
        metrics-instrumented like an individual :meth:`predict` call.
        """
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if t_to < t_from:
            raise ValueError(f"empty range [{t_from}, {t_to}]")
        self._require_fitted()
        plan = self.prepare(recent)
        plan.prime_sweep(t_from, t_to, step)
        if self._predictor is not None:
            return [
                (t, self.predict_prepared(plan, t, k=1)[0])
                for t in range(t_from, t_to + 1, step)
            ]
        return [
            (t, self.predict_prepared(plan, t)[0])
            for t in range(t_from, t_to + 1, step)
        ]

    def prewarm_locate_cache(self, limit: int = 512) -> int:
        """Prime the region-locate memo from the history tail.

        ``RegionSet.locate``'s LRU is dropped on pickle, so a model
        restored from a snapshot starts cold and its first queries pay
        per-region KD-tree probes.  Query windows are cut from the tail of
        the same history this model was fitted (or last updated) on, so
        replaying the last ``limit`` samples — row ``i`` carries offset
        ``(start_time + i) mod T`` — re-creates exactly the cache keys
        those windows will look up.  Returns the number of probes issued;
        0 when the model has no regions.
        """
        self._require_fitted()
        regions = self._regions
        history = self._history
        if regions is None or history is None or len(regions) == 0:
            return 0
        positions = history.positions
        count = min(limit, positions.shape[0])
        if count <= 0:
            return 0
        start = positions.shape[0] - count
        start_time = history.start_time
        period = self.config.period
        return regions.prewarm_locate(
            (positions[i, 0], positions[i, 1], (start_time + i) % period)
            for i in range(start, positions.shape[0])
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._history is not None

    @property
    def history_(self) -> Trajectory:
        """The accumulated training trajectory."""
        self._require_fitted()
        assert self._history is not None
        return self._history

    @property
    def regions_(self) -> RegionSet:
        """Frequent regions discovered by the last fit/update."""
        self._require_fitted()
        assert self._regions is not None
        return self._regions

    @property
    def patterns_(self) -> list[TrajectoryPattern]:
        """The mined trajectory patterns."""
        self._require_fitted()
        return list(self._patterns)

    @property
    def mining_stats_(self) -> PatternMiningStats:
        """Bookkeeping from the last mining run."""
        self._require_fitted()
        assert self._mining_stats is not None
        return self._mining_stats

    @property
    def codec_(self) -> KeyCodec | None:
        """Key tables (``None`` in pattern-free mode)."""
        self._require_fitted()
        return self._codec

    @property
    def tree_(self) -> TrajectoryPatternTree | None:
        """The TPT (``None`` in pattern-free mode)."""
        self._require_fitted()
        return self._tree

    @property
    def predictor_(self) -> HybridPredictor | None:
        """The live query processor (``None`` in pattern-free mode)."""
        self._require_fitted()
        return self._predictor

    @property
    def fit_phase_seconds_(self) -> dict[str, float]:
        """Wall-clock seconds of the last fit/update, keyed by phase.

        Phases: ``cluster`` (frequent-region discovery), ``mine`` (pattern
        mining) and ``index`` (key tables + TPT build, or the incremental
        insertion pass on update).  Empty before the first fit, and for
        models restored from snapshots written by older versions.
        """
        return dict(getattr(self, "_fit_phase_seconds", None) or {})

    @property
    def last_refit_stats_(self) -> RefitStats | None:
        """What the most recent :meth:`update` did (``None`` after fit)."""
        return self._last_refit_stats

    @property
    def pattern_count(self) -> int:
        """Number of mined patterns."""
        self._require_fitted()
        return len(self._patterns)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("model is not fitted; call fit() first")

    def __repr__(self) -> str:
        if not self.is_fitted:
            return "HybridPredictionModel(unfitted)"
        return (
            f"HybridPredictionModel(regions={len(self._regions or [])}, "
            f"patterns={len(self._patterns)})"
        )
