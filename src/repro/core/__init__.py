"""Core HPM: frequent regions, trajectory patterns, keys, TPT and prediction."""

from .config import HPMConfig
from .explain import CandidateExplanation, QueryExplanation, explain_query
from .fleet import FleetFitError, FleetPredictionModel
from .keys import KeyCodec, PatternKey
from .model import HybridPredictionModel
from .online import OnlineTracker
from .persistence import load_fleet, load_model, save_fleet, save_model
from .patterns import (
    PatternMiningStats,
    TrajectoryPattern,
    build_transactions,
    count_rules_unpruned,
    mine_trajectory_patterns,
    region_visit_masks,
)
from .plan import PreparedQuery
from .prediction import HybridPredictor, Prediction, default_motion_factory
from .refit import (
    CorpusDelta,
    RefitStats,
    StagedUpdate,
    StaleUpdateError,
    delta_discover_frequent_regions,
    delta_mine_trajectory_patterns,
)
from .regions import FrequentRegion, RegionSet, discover_frequent_regions
from .similarity import (
    WEIGHT_FUNCTIONS,
    PremiseScorer,
    bqp_score,
    consequence_similarity,
    fqp_score,
    premise_similarity,
    premise_weights,
)
from .tpt import TrajectoryPatternTree

__all__ = [
    "CandidateExplanation",
    "CorpusDelta",
    "FleetFitError",
    "FleetPredictionModel",
    "HPMConfig",
    "HybridPredictionModel",
    "HybridPredictor",
    "FrequentRegion",
    "KeyCodec",
    "OnlineTracker",
    "PatternKey",
    "PatternMiningStats",
    "Prediction",
    "PremiseScorer",
    "PreparedQuery",
    "QueryExplanation",
    "RefitStats",
    "RegionSet",
    "StagedUpdate",
    "StaleUpdateError",
    "TrajectoryPattern",
    "TrajectoryPatternTree",
    "WEIGHT_FUNCTIONS",
    "bqp_score",
    "build_transactions",
    "consequence_similarity",
    "count_rules_unpruned",
    "default_motion_factory",
    "delta_discover_frequent_regions",
    "delta_mine_trajectory_patterns",
    "discover_frequent_regions",
    "explain_query",
    "fqp_score",
    "load_fleet",
    "load_model",
    "mine_trajectory_patterns",
    "premise_similarity",
    "premise_weights",
    "region_visit_masks",
    "save_fleet",
    "save_model",
]
