"""The Trajectory Pattern Tree (Section V).

TPT is "a variant of Signature tree ... Each leaf node contains entries of
the form <pk, c, p>, where pk is the pattern key of a trajectory pattern,
c is its corresponding confidence and p is the region key pointer which
represents the consequence of the pattern."

Differences from the generic signature tree, per the paper:

* **ChooseLeaf (Algorithm 1)** — three cases, in order:

  1. some entry *Contains* the new key → follow the containing entry with
     the smallest ``Size`` (no enlargement needed);
  2. otherwise some entry *Intersects* it (common '1's on both the
     consequence and the premise parts) → follow the intersecting entry
     with the smallest ``Difference(pk, e)``, ties by smallest ``Size`` —
     this clusters query-coherent patterns, which is what makes the
     Intersect search cheap;
  3. otherwise → smallest ``Difference(pk, e)``, ties by smallest ``Size``.

* **Search (Section V-C)** — depth-first descent pruning any subtree whose
  union signature fails the two-part ``Intersect`` with the query key.
  BQP additionally needs a consequence-only search that ignores the
  premise part.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..signature.bitset import contain, difference, size
from ..signature.signature_tree import LeafEntry, Node, SignatureTree
from .keys import KeyCodec, PatternKey
from .patterns import TrajectoryPattern

__all__ = ["TrajectoryPatternTree"]


class TrajectoryPatternTree(SignatureTree):
    """Signature-tree variant indexing trajectory patterns by pattern key.

    Leaf payloads are the mined :class:`TrajectoryPattern` objects, which
    carry the confidence and the consequence region (the paper's ``c`` and
    ``p`` entry fields).
    """

    def __init__(
        self,
        codec: KeyCodec,
        max_entries: int = 32,
        min_entries: int | None = None,
    ):
        super().__init__(
            max_entries=max_entries,
            min_entries=min_entries,
            signature_bits=codec.pattern_key_length,
        )
        self.codec = codec
        self._premise_mask = (1 << codec.premise_length) - 1

    # ------------------------------------------------------------------
    # pattern-level API
    # ------------------------------------------------------------------
    def insert_pattern(self, pattern: TrajectoryPattern) -> PatternKey:
        """Encode and insert one pattern; returns its key."""
        key = self.codec.encode_pattern(pattern)
        self.insert(key.value, pattern)
        return key

    def bulk_load_patterns(self, patterns: Sequence[TrajectoryPattern]) -> None:
        """Sorted-key bulk load of a mined pattern corpus (static data path)."""
        items = [
            (self.codec.encode_pattern(p).value, p) for p in patterns
        ]
        self.bulk_load(items)

    def search_candidates(
        self, query_key: PatternKey
    ) -> list[tuple[TrajectoryPattern, PatternKey]]:
        """FQP retrieval: all patterns whose key Intersects the query key.

        Intersect requires common '1's on both the consequence part (same
        consequence time offset as the query) and the premise part (at
        least one shared recent region).
        """
        return list(self.iter_candidates(query_key))

    def iter_candidates(
        self, query_key: PatternKey
    ) -> Iterator[tuple[TrajectoryPattern, PatternKey]]:
        """Generator form of :meth:`search_candidates`."""
        qv = query_key.value
        q_rk = qv & self._premise_mask
        q_ck = qv >> self.codec.premise_length
        if q_rk == 0 or q_ck == 0:
            return  # Intersect can never hold against an empty part

        def predicate(sig: int) -> bool:
            return (sig & self._premise_mask) & q_rk != 0 and (
                sig >> self.codec.premise_length
            ) & q_ck != 0

        for entry in self.iter_search(predicate):
            yield entry.payload, self.codec.wrap(entry.signature)

    def search_by_consequence(
        self, consequence_mask: int
    ) -> list[tuple[TrajectoryPattern, PatternKey]]:
        """BQP retrieval: patterns whose consequence key hits ``consequence_mask``.

        "Compared with FQP which requires intersection constraints on both
        the premise key and the consequence key, BQP gives up the
        constraint for the premise key" (Section VI-C).
        """
        if consequence_mask < 0:
            raise ValueError("consequence_mask must be non-negative")
        if consequence_mask == 0:
            return []
        shift = self.codec.premise_length

        def predicate(sig: int) -> bool:
            return (sig >> shift) & consequence_mask != 0

        return [
            (entry.payload, self.codec.wrap(entry.signature))
            for entry in self.iter_search(predicate)
        ]

    def all_patterns(self) -> list[TrajectoryPattern]:
        """Every indexed pattern (tree order)."""
        return [entry.payload for entry in self.all_entries()]

    def remove_pattern(self, pattern: TrajectoryPattern) -> bool:
        """Delete one indexed pattern (match by premise + consequence).

        Several patterns can share a key (Table III's 0100001 case), so
        deletion matches the pattern identity, not just the key.  Returns
        ``True`` when the pattern was found and removed.
        """
        key = self.codec.encode_pattern(pattern)
        return self.delete(
            key.value,
            match=lambda p: (
                p.premise == pattern.premise and p.consequence == pattern.consequence
            ),
        )

    def expire_patterns(self, predicate) -> int:
        """Remove every indexed pattern the predicate accepts.

        The paper's dynamic-data path only ever *adds* patterns; a
        deployment also needs to retire them (stale confidences, moved
        home/work).  Returns the number of removed patterns.
        """
        doomed = [p for p in self.all_patterns() if predicate(p)]
        removed = 0
        for pattern in doomed:
            if self.remove_pattern(pattern):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Algorithm 1: ChooseLeaf
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: Node, signature: int) -> int:
        contain_best: tuple[int, int] | None = None  # (size, idx)
        intersect_best: tuple[int, int, int] | None = None  # (diff, size, idx)
        fallback_best: tuple[int, int, int] | None = None

        for i, sig in enumerate(node.signatures):
            if contain(sig, signature):
                key = (size(sig), i)
                if contain_best is None or key < contain_best:
                    contain_best = key
                continue
            diff_key = (difference(signature, sig), size(sig), i)
            if self._two_part_intersects(sig, signature):
                if intersect_best is None or diff_key < intersect_best:
                    intersect_best = diff_key
            if fallback_best is None or diff_key < fallback_best:
                fallback_best = diff_key

        if contain_best is not None:
            return contain_best[1]
        if intersect_best is not None:
            return intersect_best[2]
        assert fallback_best is not None, "choose_subtree on empty node"
        return fallback_best[2]

    def _two_part_intersects(self, a: int, b: int) -> bool:
        """The paper's Intersect on raw key values under this codec."""
        if (a & self._premise_mask) & (b & self._premise_mask) == 0:
            return False
        shift = self.codec.premise_length
        return (a >> shift) & (b >> shift) != 0
