"""The Trajectory Pattern Tree (Section V).

TPT is "a variant of Signature tree ... Each leaf node contains entries of
the form <pk, c, p>, where pk is the pattern key of a trajectory pattern,
c is its corresponding confidence and p is the region key pointer which
represents the consequence of the pattern."

Differences from the generic signature tree, per the paper:

* **ChooseLeaf (Algorithm 1)** — three cases, in order:

  1. some entry *Contains* the new key → follow the containing entry with
     the smallest ``Size`` (no enlargement needed);
  2. otherwise some entry *Intersects* it (common '1's on both the
     consequence and the premise parts) → follow the intersecting entry
     with the smallest ``Difference(pk, e)``, ties by smallest ``Size`` —
     this clusters query-coherent patterns, which is what makes the
     Intersect search cheap;
  3. otherwise → smallest ``Difference(pk, e)``, ties by smallest ``Size``.

* **Search (Section V-C)** — depth-first descent pruning any subtree whose
  union signature fails the two-part ``Intersect`` with the query key.
  BQP additionally needs a consequence-only search that ignores the
  premise part.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..signature.bitset import contain, difference, iter_set_bits, size
from ..signature.signature_tree import LeafEntry, Node, SignatureTree
from .keys import KeyCodec, PatternKey
from .patterns import TrajectoryPattern
from .scorekernel import KernelUnavailable, ScoreKernel

__all__ = ["TrajectoryPatternTree"]


class TrajectoryPatternTree(SignatureTree):
    """Signature-tree variant indexing trajectory patterns by pattern key.

    Leaf payloads are the mined :class:`TrajectoryPattern` objects, which
    carry the confidence and the consequence region (the paper's ``c`` and
    ``p`` entry fields).
    """

    def __init__(
        self,
        codec: KeyCodec,
        max_entries: int = 32,
        min_entries: int | None = None,
    ):
        super().__init__(
            max_entries=max_entries,
            min_entries=min_entries,
            signature_bits=codec.pattern_key_length,
        )
        self.codec = codec
        self._premise_mask = (1 << codec.premise_length) - 1
        # time-id -> DFS-ordered (seq, premise_bits, pattern, key) bucket;
        # rebuilt lazily after any structural change (see
        # consequence_index).
        self._consequence_index: dict[int, list] | None = None
        # weight-function kind -> packed scoring kernel (or None when the
        # corpus is unpackable); derived from the consequence index and
        # invalidated with it.
        self._score_kernels: dict[str, ScoreKernel | None] = {}

    # ------------------------------------------------------------------
    # structural mutations invalidate the offset index and the kernels
    # ------------------------------------------------------------------
    def _invalidate_index(self) -> None:
        self._consequence_index = None
        self._score_kernels = {}

    def insert(self, signature: int, payload) -> None:
        self._invalidate_index()
        super().insert(signature, payload)

    def delete(self, signature: int, match=None) -> bool:
        self._invalidate_index()
        return super().delete(signature, match)

    def bulk_load(self, items) -> None:
        self._invalidate_index()
        super().bulk_load(items)

    def bulk_load_packed(self, signatures, payloads, node_signatures) -> None:
        self._invalidate_index()
        super().bulk_load_packed(signatures, payloads, node_signatures)

    # ------------------------------------------------------------------
    # pattern-level API
    # ------------------------------------------------------------------
    def insert_pattern(self, pattern: TrajectoryPattern) -> PatternKey:
        """Encode and insert one pattern; returns its key."""
        key = self.codec.encode_pattern(pattern)
        self.insert(key.value, pattern)
        return key

    def bulk_load_patterns(self, patterns: Sequence[TrajectoryPattern]) -> None:
        """Sorted-key bulk load of a mined pattern corpus (static data path)."""
        values = self.codec.encode_values(patterns)
        self.bulk_load(list(zip(values, patterns)))

    def rebind_codec(self, codec: KeyCodec) -> None:
        """Swap in a codec with identical key geometry (delta refit).

        A delta refit that keeps the region universe and consequence-offset
        table builds a fresh codec over the *new* region set; since region
        ids and time ids are unchanged, every stored key value stays valid
        and the tree (including a built consequence index) survives as-is.
        """
        if (
            codec.premise_length != self.codec.premise_length
            or codec.consequence_length != self.codec.consequence_length
            or codec.consequence_offsets() != self.codec.consequence_offsets()
        ):
            raise ValueError(
                "rebind_codec requires identical key geometry "
                f"({self.codec!r} -> {codec!r})"
            )
        self.codec = codec

    def rebind_patterns(
        self,
        pairs: Sequence[tuple[TrajectoryPattern, TrajectoryPattern]],
    ) -> int:
        """Swap entry payloads for re-scored patterns whose key is unchanged.

        A delta refit replaces a pattern when its support/confidence or
        its member regions' *content* moved while its premise/consequence
        positions — and hence its encoded pattern key — did not.  Such a
        replacement needs no structural delete/insert: the stored entry
        keeps its signature and only the payload pointer advances to the
        fresh pattern object.  One tree walk services the whole batch.
        Returns the number of entries rebound (should equal ``len(pairs)``
        when every old pattern is indexed).
        """
        if not pairs:
            return 0
        replacement = {id(old): new for old, new in pairs}
        swapped = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    new = replacement.get(id(entry.payload))
                    if new is not None:
                        entry.payload = new
                        swapped += 1
            else:
                stack.extend(node.children)
        # The consequence index (and kernels) snapshot payload pointers.
        self._invalidate_index()
        return swapped

    def score_kernel(self, kind: str) -> "ScoreKernel | None":
        """The packed scoring kernel for one weight family, building it if
        stale; ``None`` when the corpus cannot be packed (callers keep the
        scan path).  Cached until the next structural mutation, exactly
        like :meth:`consequence_index`."""
        kernels = self._score_kernels
        if kind not in kernels:
            try:
                kernels[kind] = ScoreKernel.build(self, kind)
            except KernelUnavailable:
                kernels[kind] = None
        return kernels[kind]

    def prime_score_kernel(self, kind: str, kernel: "ScoreKernel") -> None:
        """Install a pre-built kernel for ``kind`` (snapshot restore path).

        The caller guarantees the kernel's arrays were packed from
        exactly this tree's pattern corpus in canonical bulk-load order —
        the v2 snapshot loader reconstructs it from stored blocks so the
        first query skips the full :meth:`ScoreKernel.build` pass.  The
        primed kernel obeys the normal invalidation contract: the next
        structural mutation drops it like any lazily-built one.
        """
        if kernel.kind != kind:
            raise ValueError(
                f"kernel was built for kind {kernel.kind!r}, not {kind!r}"
            )
        self._score_kernels[kind] = kernel

    # Kernels hold numpy array snapshots that are cheap to rebuild and
    # expensive to ship; pickles (process-pool fan-out, fleet snapshots)
    # travel without them and rebuild lazily on first query.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_score_kernels"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_score_kernels", {})

    def consequence_index(self) -> dict[int, list]:
        """The consequence-offset inverted index, building it if stale.

        Maps each consequence time-id to the bucket of entries whose key
        sets that bit, as ``(seq, premise_bits, pattern, key)`` tuples
        where ``seq`` is the entry's position in the full depth-first
        traversal.  Because the search predicates are OR-monotone, a
        pruned descent visits surviving entries in exactly that traversal
        order — so answers assembled from buckets (merged by ``seq``) are
        byte-identical to descent answers, just without walking the tree.
        """
        index = self._consequence_index
        if index is None:
            index = {}
            shift = self.codec.premise_length
            premise_mask = self._premise_mask
            for seq, entry in enumerate(self.all_entries()):
                signature = entry.signature
                key = self.codec.wrap(signature)
                premise_bits = signature & premise_mask
                for time_id in iter_set_bits(signature >> shift):
                    index.setdefault(time_id, []).append(
                        (seq, premise_bits, entry.payload, key)
                    )
            self._consequence_index = index
        return index

    def search_candidates(
        self, query_key: PatternKey
    ) -> list[tuple[TrajectoryPattern, PatternKey]]:
        """FQP retrieval: all patterns whose key Intersects the query key.

        Intersect requires common '1's on both the consequence part (same
        consequence time offset as the query) and the premise part (at
        least one shared recent region).  Served from the consequence
        index: an empty offset bucket short-circuits before any tree work.
        """
        qv = query_key.value
        q_rk = qv & self._premise_mask
        q_ck = qv >> self.codec.premise_length
        if q_rk == 0 or q_ck == 0:
            return []  # Intersect can never hold against an empty part
        index = self.consequence_index()
        time_ids = list(iter_set_bits(q_ck))
        if len(time_ids) == 1:
            bucket = index.get(time_ids[0], ())
            return [
                (pattern, key)
                for _seq, premise_bits, pattern, key in bucket
                if premise_bits & q_rk
            ]
        hits: dict[int, tuple[TrajectoryPattern, PatternKey]] = {}
        for time_id in time_ids:
            for seq, premise_bits, pattern, key in index.get(time_id, ()):
                if premise_bits & q_rk and seq not in hits:
                    hits[seq] = (pattern, key)
        return [hits[seq] for seq in sorted(hits)]

    def search_candidates_descent(
        self, query_key: PatternKey
    ) -> list[tuple[TrajectoryPattern, PatternKey]]:
        """Reference implementation of :meth:`search_candidates` via tree
        descent (Section V-C) — kept for A/B verification and benchmarks."""
        return list(self.iter_candidates(query_key))

    def iter_candidates(
        self, query_key: PatternKey
    ) -> Iterator[tuple[TrajectoryPattern, PatternKey]]:
        """Generator form of :meth:`search_candidates`."""
        qv = query_key.value
        q_rk = qv & self._premise_mask
        q_ck = qv >> self.codec.premise_length
        if q_rk == 0 or q_ck == 0:
            return  # Intersect can never hold against an empty part

        def predicate(sig: int) -> bool:
            return (sig & self._premise_mask) & q_rk != 0 and (
                sig >> self.codec.premise_length
            ) & q_ck != 0

        for entry in self.iter_search(predicate):
            yield entry.payload, self.codec.wrap(entry.signature)

    def search_by_consequence(
        self, consequence_mask: int
    ) -> list[tuple[TrajectoryPattern, PatternKey]]:
        """BQP retrieval: patterns whose consequence key hits ``consequence_mask``.

        "Compared with FQP which requires intersection constraints on both
        the premise key and the consequence key, BQP gives up the
        constraint for the premise key" (Section VI-C).

        Served from the consequence index: BQP's enlargement loop probes
        offset buckets instead of re-descending the tree every round.
        """
        if consequence_mask < 0:
            raise ValueError("consequence_mask must be non-negative")
        if consequence_mask == 0:
            return []
        index = self.consequence_index()
        time_ids = list(iter_set_bits(consequence_mask))
        if len(time_ids) == 1:
            return [
                (pattern, key)
                for _seq, _premise_bits, pattern, key in index.get(time_ids[0], ())
            ]
        hits: dict[int, tuple[TrajectoryPattern, PatternKey]] = {}
        for time_id in time_ids:
            for seq, _premise_bits, pattern, key in index.get(time_id, ()):
                if seq not in hits:
                    hits[seq] = (pattern, key)
        return [hits[seq] for seq in sorted(hits)]

    def search_by_consequence_descent(
        self, consequence_mask: int
    ) -> list[tuple[TrajectoryPattern, PatternKey]]:
        """Reference implementation of :meth:`search_by_consequence` via
        tree descent — kept for A/B verification and benchmarks."""
        if consequence_mask < 0:
            raise ValueError("consequence_mask must be non-negative")
        if consequence_mask == 0:
            return []
        shift = self.codec.premise_length

        def predicate(sig: int) -> bool:
            return (sig >> shift) & consequence_mask != 0

        return [
            (entry.payload, self.codec.wrap(entry.signature))
            for entry in self.iter_search(predicate)
        ]

    def all_patterns(self) -> list[TrajectoryPattern]:
        """Every indexed pattern (tree order)."""
        return [entry.payload for entry in self.all_entries()]

    def remove_pattern(self, pattern: TrajectoryPattern) -> bool:
        """Delete one indexed pattern (match by premise + consequence).

        Several patterns can share a key (Table III's 0100001 case), so
        deletion matches the pattern identity, not just the key.  Returns
        ``True`` when the pattern was found and removed.
        """
        key = self.codec.encode_pattern(pattern)
        return self.delete(
            key.value,
            match=lambda p: (
                p.premise == pattern.premise and p.consequence == pattern.consequence
            ),
        )

    # Rebuild instead of deleting one-by-one once this many patterns AND
    # this fraction of the tree are doomed: each ``delete`` re-encodes the
    # key, descends the tree and may condense/reinsert, so bulk expiry was
    # quadratic in the number of removals.
    _REBUILD_MIN_DOOMED = 8
    _REBUILD_FRACTION = 0.25

    def expire_patterns(self, predicate) -> int:
        """Remove every indexed pattern the predicate accepts.

        The paper's dynamic-data path only ever *adds* patterns; a
        deployment also needs to retire them (stale confidences, moved
        home/work).  Returns the number of removed patterns.

        Small expiries use per-pattern deletion; when more than
        ``_REBUILD_FRACTION`` of the corpus goes at once the tree is
        rebuilt from the survivors with one bulk load, which is linear
        instead of quadratic and yields a better-packed tree.
        """
        entries = self.all_entries()
        doomed = [entry for entry in entries if predicate(entry.payload)]
        if not doomed:
            return 0
        if (
            len(doomed) >= self._REBUILD_MIN_DOOMED
            and len(doomed) >= self._REBUILD_FRACTION * len(entries)
        ):
            doomed_ids = {id(entry) for entry in doomed}
            survivors = [
                (entry.signature, entry.payload)
                for entry in entries
                if id(entry) not in doomed_ids
            ]
            self.root = Node(is_leaf=True)
            self._size = 0
            self._invalidate_index()
            if survivors:
                self.bulk_load(survivors)
            return len(doomed)
        removed = 0
        for entry in doomed:
            if self.remove_pattern(entry.payload):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Algorithm 1: ChooseLeaf
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: Node, signature: int) -> int:
        contain_best: tuple[int, int] | None = None  # (size, idx)
        intersect_best: tuple[int, int, int] | None = None  # (diff, size, idx)
        fallback_best: tuple[int, int, int] | None = None

        for i, sig in enumerate(node.signatures):
            if contain(sig, signature):
                key = (size(sig), i)
                if contain_best is None or key < contain_best:
                    contain_best = key
                continue
            diff_key = (difference(signature, sig), size(sig), i)
            if self._two_part_intersects(sig, signature):
                if intersect_best is None or diff_key < intersect_best:
                    intersect_best = diff_key
            if fallback_best is None or diff_key < fallback_best:
                fallback_best = diff_key

        if contain_best is not None:
            return contain_best[1]
        if intersect_best is not None:
            return intersect_best[2]
        assert fallback_best is not None, "choose_subtree on empty node"
        return fallback_best[2]

    def _two_part_intersects(self, a: int, b: int) -> bool:
        """The paper's Intersect on raw key values under this codec."""
        if (a & self._premise_mask) & (b & self._premise_mask) == 0:
            return False
        shift = self.codec.premise_length
        return (a >> shift) & (b >> shift) != 0
