"""The Hybrid Prediction Algorithm (Section VI, Algorithms 2 and 3).

Given an object's recent movements and a query time the predictor:

* dispatches to **Forward Query Processing** (Algorithm 2) for non-distant
  queries — retrieve the TPT patterns whose premise intersects the recent
  regions and whose consequence offset equals the query offset, rank by
  ``S_p = S_r x c`` (Eq. 2), return the top-k consequence centers;
* dispatches to **Backward Query Processing** (Algorithm 3) for distant
  queries (``tq >= tc + d``, Definition 2) — retrieve patterns whose
  consequence offset falls in ``[tq - i·t_eps, tq + i·t_eps]``, enlarging
  ``i`` while the interval stays future-side of ``tc``; rank by
  ``S_p = (S_r x d/(tq - tc) + S_c) x c`` (Eq. 5);
* falls back to the configured motion function (RMF by default) whenever
  no pattern qualifies — the "hybrid" in HPM.

Every public entry point routes through a :class:`repro.core.plan.PreparedQuery`
plan, which hoists the per-window work (region mapping, premise-key
encoding, motion-function fitting, per-offset candidate scoring) out of
the per-query loop; ``prepare`` exposes the plan directly so callers
answering many query times against one window pay that cost once.
"""

from __future__ import annotations

from typing import Sequence

from ..motion.base import MotionFunction, MotionFunctionFactory
from ..motion.linear import LinearMotionFunction
from ..motion.rmf import RecursiveMotionFunction
from ..trajectory.point import TimedPoint
from .config import HPMConfig
from .keys import KeyCodec
from .plan import Prediction, PreparedQuery, map_window_to_regions
from .regions import FrequentRegion, RegionSet
from .similarity import PremiseScorer
from .tpt import TrajectoryPatternTree

__all__ = ["Prediction", "HybridPredictor", "PreparedQuery", "default_motion_factory"]


def default_motion_factory() -> MotionFunction:
    """The paper's choice: RMF, "since it has higher accuracy than others"."""
    return RecursiveMotionFunction()


class HybridPredictor:
    """Query processor over a mined pattern corpus.

    Built by :class:`repro.core.model.HybridPredictionModel`; constructable
    directly for tests and custom pipelines.
    """

    def __init__(
        self,
        regions: RegionSet,
        codec: KeyCodec,
        tree: TrajectoryPatternTree,
        config: HPMConfig,
        motion_factory: MotionFunctionFactory = default_motion_factory,
        metrics=None,
    ):
        self.regions = regions
        self.codec = codec
        self.tree = tree
        self.config = config
        self.motion_factory = motion_factory
        # Serve-tier metrics registry (kernel fallback counter, batch-size
        # histogram); optional and threaded into every prepared plan.
        self.metrics = metrics
        # Diagnostics: how many queries each path answered (Fig. 10's cost
        # analysis hinges on the motion-fallback rate).
        self.stats = {"fqp": 0, "bqp": 0, "motion": 0}
        # Weight tables are per (premise key, weight family) and shared by
        # every plan this predictor prepares.
        self._scorer = PremiseScorer(config.weight_function)

    def __getstate__(self) -> dict:
        # Registries hold threading locks and are process-local (same
        # contract as HybridPredictionModel); re-bound on adoption.
        state = self.__dict__.copy()
        state["metrics"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("metrics", None)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def prepare(self, recent: Sequence[TimedPoint]) -> PreparedQuery:
        """Build a query plan for ``recent``, reusable across query times.

        The plan shares this predictor's :attr:`stats` and similarity
        tables; its answers are identical to :meth:`predict`'s.
        """
        return PreparedQuery(
            regions=self.regions,
            codec=self.codec,
            tree=self.tree,
            config=self.config,
            motion_factory=self.motion_factory,
            recent=recent,
            stats=self.stats,
            scorer=self._scorer,
            metrics=self.metrics,
        )

    def predict(
        self,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        """Answer a predictive query.

        Parameters
        ----------
        recent:
            The object's recent movements ``m_q`` (chronological); the last
            sample's timestamp is the current time ``tc``.
        query_time:
            The (future) query time ``tq``.
        k:
            Number of results; defaults to ``config.top_k``.
        """
        return self.prepare(recent).predict(query_time, k)

    def predict_one(self, recent: Sequence[TimedPoint], query_time: int) -> Prediction:
        """Top-1 convenience wrapper around :meth:`predict`."""
        return self.predict(recent, query_time, k=1)[0]

    def predict_trajectory(
        self,
        recent: Sequence[TimedPoint],
        t_from: int,
        t_to: int,
        step: int = 1,
    ) -> list[tuple[int, Prediction]]:
        """Top-1 predictions over a future time range (inclusive bounds).

        An extension of the paper's point queries: each timestamp in
        ``range(t_from, t_to + 1, step)`` is answered as if queried
        independently — the result transitions from FQP through BQP as the
        horizon crosses the distant-time threshold — but all timestamps
        share one prepared plan, so region mapping, key encoding and
        motion fitting happen once per sweep.
        """
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if t_to < t_from:
            raise ValueError(f"empty range [{t_from}, {t_to}]")
        return self.prepare(recent).predict_trajectory(t_from, t_to, step)

    # ------------------------------------------------------------------
    # Algorithm 2 / Algorithm 3 entry points (no tq/k validation, as ever)
    # ------------------------------------------------------------------
    def forward_query(
        self, recent: Sequence[TimedPoint], query_time: int, k: int
    ) -> list[Prediction]:
        """FQP: premise-and-consequence constrained pattern retrieval."""
        return self.prepare(recent).forward(query_time, k)

    def backward_query(
        self, recent: Sequence[TimedPoint], query_time: int, k: int
    ) -> list[Prediction]:
        """BQP: consequence-interval retrieval with incremental enlargement."""
        return self.prepare(recent).backward(query_time, k)

    def _offset_distance(self, consequence_offset: int, query_time: int) -> int:
        """Circular distance between a consequence offset and ``tq mod T``."""
        period = self.config.period
        diff = abs(consequence_offset - query_time % period) % period
        return min(diff, period - diff)

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def map_recent_to_regions(
        self, recent: Sequence[TimedPoint]
    ) -> list[FrequentRegion]:
        """Map recent movements onto the frequent regions they pass through.

        Section V-C: "we investigate which frequent regions the object has
        visited recently from ``m_q``".  Only the trailing
        ``config.recent_window`` samples are considered; duplicates are
        collapsed.
        """
        window = list(recent)[-self.config.recent_window :]
        return map_window_to_regions(self.regions, window, self.config.period)

    def _is_distant(self, tc: int, tq: int) -> bool:
        """Definition 2: ``tq >= tc + d``."""
        return tq - tc >= self.config.distant_threshold

    def _motion_prediction(
        self, recent: Sequence[TimedPoint], query_time: int
    ) -> Prediction:
        """The "Call motion function" fallback with graceful degradation.

        Tries the configured motion function on the recent window; when the
        window is too short (e.g. fewer samples than RMF's retrospect), a
        linear model is tried; with fewer than two samples the object is
        assumed stationary at its last known location.
        """
        self.stats["motion"] += 1
        window = list(recent)[-self.config.recent_window :]
        try:
            func = self.motion_factory()
            func.fit(window)
            return Prediction(location=func.predict(query_time), method="motion")
        except ValueError:
            pass
        if len(window) >= 2:
            try:
                linear = LinearMotionFunction()
                linear.fit(window)
                return Prediction(location=linear.predict(query_time), method="motion")
            except ValueError:
                pass
        return Prediction(location=window[-1].point, method="motion")
