"""The Hybrid Prediction Algorithm (Section VI, Algorithms 2 and 3).

Given an object's recent movements and a query time the predictor:

* dispatches to **Forward Query Processing** (Algorithm 2) for non-distant
  queries — retrieve the TPT patterns whose premise intersects the recent
  regions and whose consequence offset equals the query offset, rank by
  ``S_p = S_r x c`` (Eq. 2), return the top-k consequence centers;
* dispatches to **Backward Query Processing** (Algorithm 3) for distant
  queries (``tq >= tc + d``, Definition 2) — retrieve patterns whose
  consequence offset falls in ``[tq - i·t_eps, tq + i·t_eps]``, enlarging
  ``i`` while the interval stays future-side of ``tc``; rank by
  ``S_p = (S_r x d/(tq - tc) + S_c) x c`` (Eq. 5);
* falls back to the configured motion function (RMF by default) whenever
  no pattern qualifies — the "hybrid" in HPM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..motion.base import MotionFunction, MotionFunctionFactory
from ..motion.linear import LinearMotionFunction
from ..motion.rmf import RecursiveMotionFunction
from ..trajectory.point import Point, TimedPoint
from .config import HPMConfig
from .keys import KeyCodec, PatternKey
from .patterns import TrajectoryPattern
from .regions import FrequentRegion, RegionSet
from .similarity import bqp_score, consequence_similarity, fqp_score, premise_similarity
from .tpt import TrajectoryPatternTree

__all__ = ["Prediction", "HybridPredictor", "default_motion_factory"]


@dataclass(frozen=True)
class Prediction:
    """One predicted location with its provenance.

    ``method`` is ``"fqp"``, ``"bqp"`` or ``"motion"``; for pattern-based
    answers ``pattern`` is the winning trajectory pattern and ``score`` its
    ranking weight ``S_p``.
    """

    location: Point
    method: str
    score: float | None = None
    pattern: TrajectoryPattern | None = None

    def __post_init__(self) -> None:
        if self.method not in ("fqp", "bqp", "motion"):
            raise ValueError(f"unknown prediction method {self.method!r}")


def default_motion_factory() -> MotionFunction:
    """The paper's choice: RMF, "since it has higher accuracy than others"."""
    return RecursiveMotionFunction()


class HybridPredictor:
    """Query processor over a mined pattern corpus.

    Built by :class:`repro.core.model.HybridPredictionModel`; constructable
    directly for tests and custom pipelines.
    """

    def __init__(
        self,
        regions: RegionSet,
        codec: KeyCodec,
        tree: TrajectoryPatternTree,
        config: HPMConfig,
        motion_factory: MotionFunctionFactory = default_motion_factory,
    ):
        self.regions = regions
        self.codec = codec
        self.tree = tree
        self.config = config
        self.motion_factory = motion_factory
        # Diagnostics: how many queries each path answered (Fig. 10's cost
        # analysis hinges on the motion-fallback rate).
        self.stats = {"fqp": 0, "bqp": 0, "motion": 0}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict(
        self,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        """Answer a predictive query.

        Parameters
        ----------
        recent:
            The object's recent movements ``m_q`` (chronological); the last
            sample's timestamp is the current time ``tc``.
        query_time:
            The (future) query time ``tq``.
        k:
            Number of results; defaults to ``config.top_k``.
        """
        recent = list(recent)
        if not recent:
            raise ValueError("recent movements must be non-empty")
        k = self.config.top_k if k is None else k
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tc = recent[-1].t
        if query_time <= tc:
            raise ValueError(
                f"query time {query_time} must be after the current time {tc}"
            )
        if self._is_distant(tc, query_time):
            return self.backward_query(recent, query_time, k)
        return self.forward_query(recent, query_time, k)

    def predict_one(self, recent: Sequence[TimedPoint], query_time: int) -> Prediction:
        """Top-1 convenience wrapper around :meth:`predict`."""
        return self.predict(recent, query_time, k=1)[0]

    def predict_trajectory(
        self,
        recent: Sequence[TimedPoint],
        t_from: int,
        t_to: int,
        step: int = 1,
    ) -> list[tuple[int, Prediction]]:
        """Top-1 predictions over a future time range (inclusive bounds).

        An extension of the paper's point queries: each timestamp in
        ``range(t_from, t_to + 1, step)`` is answered independently, so the
        result transitions from FQP through BQP as the horizon crosses the
        distant-time threshold.
        """
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if t_to < t_from:
            raise ValueError(f"empty range [{t_from}, {t_to}]")
        return [
            (t, self.predict_one(recent, t))
            for t in range(t_from, t_to + 1, step)
        ]

    # ------------------------------------------------------------------
    # Algorithm 2: Forward Query Processing
    # ------------------------------------------------------------------
    def forward_query(
        self, recent: Sequence[TimedPoint], query_time: int, k: int
    ) -> list[Prediction]:
        """FQP: premise-and-consequence constrained pattern retrieval."""
        recent_regions = self.map_recent_to_regions(recent)
        query_key = self.codec.encode_query(
            recent_regions, query_time % self.config.period
        )
        candidates = self.tree.search_candidates(query_key)
        if not candidates:
            return [self._motion_prediction(recent, query_time)]
        ranked = self._rank_fqp(candidates, query_key)
        self.stats["fqp"] += 1
        return [
            Prediction(
                location=pattern.consequence.center,
                method="fqp",
                score=score,
                pattern=pattern,
            )
            for score, pattern in ranked[:k]
        ]

    def _rank_fqp(
        self,
        candidates: Sequence[tuple[TrajectoryPattern, PatternKey]],
        query_key: PatternKey,
    ) -> list[tuple[float, TrajectoryPattern]]:
        scored: list[tuple[float, TrajectoryPattern]] = []
        for pattern, key in candidates:
            sr = premise_similarity(
                key.premise_key, query_key.premise_key, self.config.weight_function
            )
            scored.append((fqp_score(sr, pattern.confidence), pattern))
        scored.sort(key=lambda sp: (-sp[0], -sp[1].confidence, -sp[1].support))
        return scored

    # ------------------------------------------------------------------
    # Algorithm 3: Backward Query Processing
    # ------------------------------------------------------------------
    def backward_query(
        self, recent: Sequence[TimedPoint], query_time: int, k: int
    ) -> list[Prediction]:
        """BQP: consequence-interval retrieval with incremental enlargement."""
        tc = recent[-1].t
        recent_regions = self.map_recent_to_regions(recent)
        query_key = self.codec.encode_query(
            recent_regions, query_time % self.config.period
        )
        t_eps = self.config.time_relaxation

        i = 1
        while True:
            relaxation = i * t_eps
            lo = query_time - relaxation
            hi = query_time + relaxation
            offsets = {t % self.config.period for t in range(lo, hi + 1)}
            mask = self.codec.consequence_mask(offsets)
            candidates = self.tree.search_by_consequence(mask)
            if candidates:
                ranked = self._rank_bqp(
                    candidates, query_key, tc, query_time, relaxation
                )
                self.stats["bqp"] += 1
                return [
                    Prediction(
                        location=pattern.consequence.center,
                        method="bqp",
                        score=score,
                        pattern=pattern,
                    )
                    for score, pattern in ranked[:k]
                ]
            i += 1
            if query_time - i * t_eps <= tc:
                return [self._motion_prediction(recent, query_time)]

    def _rank_bqp(
        self,
        candidates: Sequence[tuple[TrajectoryPattern, PatternKey]],
        query_key: PatternKey,
        tc: int,
        query_time: int,
        relaxation: int,
    ) -> list[tuple[float, TrajectoryPattern]]:
        horizon = query_time - tc
        scored: list[tuple[float, TrajectoryPattern]] = []
        for pattern, key in candidates:
            sr = premise_similarity(
                key.premise_key, query_key.premise_key, self.config.weight_function
            )
            sc = consequence_similarity(
                self._offset_distance(pattern.consequence_offset, query_time),
                relaxation,
            )
            score = bqp_score(
                sr, sc, pattern.confidence, self.config.distant_threshold, horizon
            )
            scored.append((score, pattern))
        scored.sort(key=lambda sp: (-sp[0], -sp[1].confidence, -sp[1].support))
        return scored

    def _offset_distance(self, consequence_offset: int, query_time: int) -> int:
        """Circular distance between a consequence offset and ``tq mod T``."""
        period = self.config.period
        diff = abs(consequence_offset - query_time % period) % period
        return min(diff, period - diff)

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def map_recent_to_regions(
        self, recent: Sequence[TimedPoint]
    ) -> list[FrequentRegion]:
        """Map recent movements onto the frequent regions they pass through.

        Section V-C: "we investigate which frequent regions the object has
        visited recently from ``m_q``".  Only the trailing
        ``config.recent_window`` samples are considered; duplicates are
        collapsed.
        """
        window = list(recent)[-self.config.recent_window :]
        seen: list[FrequentRegion] = []
        for sample in window:
            region = self.regions.locate(
                sample.point, sample.t % self.config.period
            )
            if region is not None and region not in seen:
                seen.append(region)
        return seen

    def _is_distant(self, tc: int, tq: int) -> bool:
        """Definition 2: ``tq >= tc + d``."""
        return tq - tc >= self.config.distant_threshold

    def _motion_prediction(
        self, recent: Sequence[TimedPoint], query_time: int
    ) -> Prediction:
        """The "Call motion function" fallback with graceful degradation.

        Tries the configured motion function on the recent window; when the
        window is too short (e.g. fewer samples than RMF's retrospect), a
        linear model is tried; with fewer than two samples the object is
        assumed stationary at its last known location.
        """
        self.stats["motion"] += 1
        window = list(recent)[-self.config.recent_window :]
        try:
            func = self.motion_factory()
            func.fit(window)
            return Prediction(location=func.predict(query_time), method="motion")
        except ValueError:
            pass
        if len(window) >= 2:
            try:
                linear = LinearMotionFunction()
                linear.fit(window)
                return Prediction(location=linear.predict(query_time), method="motion")
            except ValueError:
                pass
        return Prediction(location=window[-1].point, method="motion")
