"""Saving and loading fitted models.

Mining is the expensive phase (DBSCAN over every offset group plus the
rule lattice); deployments fit once and answer queries for days.  A
fitted :class:`~repro.core.model.HybridPredictionModel` serialises to a
single ``.npz`` archive:

* config and metadata as a JSON blob;
* the training history as one array (so ``update`` keeps working after a
  reload);
* regions as packed arrays (points concatenated with an index);
* patterns as integer tables referencing regions by their canonical id.

The TPT is *not* stored — it rebuilds from the patterns in well under a
second via the bottom-up bulk load, which keeps the format trivial and
version-stable.

A whole :class:`~repro.core.fleet.FleetPredictionModel` serialises as a
**fleet snapshot** in one of two formats:

* **v1** — a directory with one ``.npz`` per object plus a
  ``manifest.json`` mapping object ids to files (archival format, kept
  readable and writable forever);
* **v2** (the default) — packed columnar blocks with a per-object offset
  index, memory-mappable for zero-copy cold starts; see
  :mod:`repro.core.snapshot2` for the layout specification.

``load_fleet`` dispatches on the manifest's ``format_version``, so the
serving layer (:mod:`repro.serve`) loads either transparently.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Collection

import numpy as np

from ..trajectory.trajectory import Trajectory
from .config import HPMConfig
from .fleet import FleetPredictionModel
from .model import HybridPredictionModel
from .parallel import run_keyed_tasks
from .patterns import TrajectoryPattern

__all__ = [
    "save_model",
    "load_model",
    "save_fleet",
    "load_fleet",
    "convert_snapshot",
]

_FORMAT_VERSION = 1
_FLEET_FORMAT_VERSION = 1
_MANIFEST = "manifest.json"


def save_model(model: HybridPredictionModel, path: str | Path) -> None:
    """Serialise a fitted model to ``path`` (.npz)."""
    if not model.is_fitted:
        raise ValueError("cannot save an unfitted model")
    path = Path(path)
    regions = model.regions_
    history = model.history_

    region_rows = []
    points_blocks = []
    sub_id_blocks = []
    for region in regions:
        region_rows.append(
            [
                region.offset,
                region.index,
                len(region.points),
                len(region.subtrajectory_ids),
            ]
        )
        points_blocks.append(region.points)
        sub_id_blocks.append(np.asarray(region.subtrajectory_ids, dtype=np.int64))

    # Patterns as integer tables: premise region ids (padded with -1),
    # consequence id, support; confidences as a float column.
    max_premise = max((len(p.premise) for p in model.patterns_), default=1)
    pattern_rows = np.full(
        (len(model.patterns_), max_premise + 2), -1, dtype=np.int64
    )
    confidences = np.empty(len(model.patterns_), dtype=np.float64)
    for i, pattern in enumerate(model.patterns_):
        for j, region in enumerate(pattern.premise):
            pattern_rows[i, j] = regions.region_id(region)
        pattern_rows[i, max_premise] = regions.region_id(pattern.consequence)
        pattern_rows[i, max_premise + 1] = pattern.support
        confidences[i] = pattern.confidence

    meta = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "history_start_time": history.start_time,
        "max_premise": max_premise,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        history=history.positions,
        region_rows=np.asarray(region_rows, dtype=np.int64).reshape(-1, 4),
        region_points=(
            np.vstack(points_blocks) if points_blocks else np.empty((0, 2))
        ),
        region_sub_ids=(
            np.concatenate(sub_id_blocks)
            if sub_id_blocks
            else np.empty(0, dtype=np.int64)
        ),
        pattern_rows=pattern_rows,
        confidences=confidences,
    )


def load_model(path: str | Path) -> HybridPredictionModel:
    """Reload a model saved by :func:`save_model`.

    Regions and patterns are restored verbatim (no re-mining); the TPT is
    rebuilt by bulk load.
    """
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported model format {meta.get('format_version')}"
            )
        config = HPMConfig(**meta["config"])
        history = Trajectory(
            archive["history"], start_time=int(meta["history_start_time"])
        )
        region_rows = archive["region_rows"]
        region_points = archive["region_points"]
        region_sub_ids = archive["region_sub_ids"]
        pattern_rows = archive["pattern_rows"]
        confidences = archive["confidences"]

    from ..trajectory.point import BoundingBox, Point
    from .regions import FrequentRegion, RegionSet

    # Per-region bounds in two reduceat passes instead of a Python loop
    # over every member point.  min/max are accumulation-order free, so
    # the results are bit-identical to BoundingBox.from_points; centers
    # keep the per-region pairwise mean (reduction order matters there).
    counts = region_rows[:, 2].astype(np.intp)
    if counts.size and counts.min() > 0 and region_points.shape[0]:
        starts = np.zeros(counts.size, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        mins = np.minimum.reduceat(region_points, starts, axis=0)
        maxs = np.maximum.reduceat(region_points, starts, axis=0)
    else:
        mins = maxs = None

    regions_list = []
    point_cursor = 0
    sub_cursor = 0
    for i, (offset, index, num_points, num_subs) in enumerate(region_rows):
        points = region_points[point_cursor : point_cursor + num_points].copy()
        point_cursor += num_points
        sub_ids = tuple(
            int(s) for s in region_sub_ids[sub_cursor : sub_cursor + num_subs]
        )
        sub_cursor += num_subs
        center = points.mean(axis=0)
        if mins is not None:
            bbox = BoundingBox(
                float(mins[i, 0]),
                float(mins[i, 1]),
                float(maxs[i, 0]),
                float(maxs[i, 1]),
            )
        else:
            bbox = BoundingBox.from_points(
                [(float(x), float(y)) for x, y in points]
            )
        regions_list.append(
            FrequentRegion(
                offset=int(offset),
                index=int(index),
                center=Point(float(center[0]), float(center[1])),
                points=points,
                bbox=bbox,
                subtrajectory_ids=sub_ids,
            )
        )
    region_set = RegionSet(regions_list, period=config.period, eps=config.eps)

    max_premise = int(meta["max_premise"])
    patterns = []
    for row, confidence in zip(pattern_rows, confidences):
        premise = tuple(
            region_set[int(rid)] for rid in row[:max_premise] if rid >= 0
        )
        patterns.append(
            TrajectoryPattern(
                premise=premise,
                consequence=region_set[int(row[max_premise])],
                support=int(row[max_premise + 1]),
                confidence=float(confidence),
            )
        )

    model = HybridPredictionModel(config)
    model._restore(history, region_set, patterns)
    return model


def save_fleet(
    fleet: FleetPredictionModel,
    directory: str | Path,
    *,
    format: int = 2,
    max_workers: int | None = None,
    executor: str = "thread",
) -> None:
    """Serialise a fleet to a snapshot directory.

    ``format=2`` (the default) writes the packed columnar layout of
    :mod:`repro.core.snapshot2`; ``format=1`` writes the archival
    one-``.npz``-per-object layout (filenames are positional so
    arbitrary object ids never have to be path-safe).  Either way the
    per-object serialisation work fans out over
    :func:`~repro.core.parallel.run_keyed_tasks` with ``max_workers``
    concurrency, while the manifest keeps ``fleet.object_ids()`` order —
    the output is deterministic regardless of worker count.  Existing
    snapshot files in the directory are replaced.
    """
    if format == 2:
        from .snapshot2 import save_fleet_v2

        save_fleet_v2(
            fleet, directory, max_workers=max_workers, executor=executor
        )
        return
    if format != 1:
        raise ValueError(f"unsupported fleet snapshot format {format}")
    if len(fleet) == 0:
        raise ValueError("cannot save an empty fleet")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    object_ids = fleet.object_ids()
    objects: dict[str, str] = {
        object_id: f"object_{index:04d}.npz"
        for index, object_id in enumerate(object_ids)
    }
    jobs = [
        (object_id, (fleet[object_id], directory / objects[object_id]))
        for object_id in object_ids
    ]
    _results, failures = run_keyed_tasks(
        save_model, jobs, max_workers=max_workers, executor=executor
    )
    if failures:
        # Surface the first failure in manifest order, as a serial save would.
        for object_id in object_ids:
            if object_id in failures:
                raise failures[object_id]
    manifest = {
        "format_version": _FLEET_FORMAT_VERSION,
        "config": dataclasses.asdict(fleet.config),
        "objects": objects,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_fleet(
    directory: str | Path,
    max_workers: int | None = None,
    executor: str = "thread",
    object_ids: "Collection[str] | None" = None,
    mmap: bool = True,
) -> FleetPredictionModel:
    """Reload a fleet snapshot written by :func:`save_fleet` (v1 or v2).

    With ``max_workers`` > 1 the per-object restores run in parallel —
    the decompression and array reconstruction overlap well under a
    thread pool (``executor="thread"``, the default), and
    ``executor="process"`` ships the rebuilt models back by pickle for
    the largest v1 snapshots (v2 coerces to threads; its blocks are
    shared mappings).  The resulting fleet is identical to a serial
    load; objects are adopted in manifest order.

    ``object_ids`` restricts the load to a subset of the manifest — a
    shard worker loads only the objects its consistent-hash ring slice
    owns, so warm-up cost scales with the shard, not the fleet.  Ids
    missing from the manifest raise ``ValueError``; an empty selection
    yields an empty fleet (a legal, if idle, shard).

    ``mmap`` (v2 only) maps the blocks read-only so region points and
    kernel tables stay zero-copy views; pass ``False`` to materialise
    private in-memory copies instead.  Both modes restore byte-identical
    state.  v1 snapshots always materialise.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise ValueError(f"{directory} is not a fleet snapshot (no {_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version == 2:
        from .snapshot2 import load_fleet_v2

        return load_fleet_v2(
            directory,
            manifest,
            max_workers=max_workers,
            executor=executor,
            object_ids=object_ids,
            mmap=mmap,
        )
    if version != _FLEET_FORMAT_VERSION:
        raise ValueError(
            f"{directory}: unsupported fleet format "
            f"{manifest.get('format_version')}"
        )
    objects = manifest["objects"]
    if object_ids is not None:
        wanted = set(object_ids)
        missing = sorted(wanted - objects.keys())
        if missing:
            raise ValueError(
                f"{directory}: object ids not in the snapshot manifest: "
                f"{', '.join(missing)}"
            )
        objects = {
            object_id: filename
            for object_id, filename in objects.items()
            if object_id in wanted
        }
    fleet = FleetPredictionModel(HPMConfig(**manifest["config"]))
    jobs = [
        (object_id, (directory / filename,))
        for object_id, filename in objects.items()
    ]
    results, failures = run_keyed_tasks(
        load_model, jobs, max_workers=max_workers, executor=executor
    )
    if failures:
        # Surface the first failure in manifest order, as a serial load would.
        for object_id, _ in jobs:
            if object_id in failures:
                raise failures[object_id]
    for object_id, model in results.items():
        fleet.adopt_object(object_id, model)
    return fleet


def convert_snapshot(
    source: str | Path,
    output: str | Path,
    format: int = 2,
    max_workers: int | None = None,
) -> int:
    """Convert a fleet snapshot between formats (``repro snapshot-convert``).

    Loads ``source`` (either format) and rewrites it as ``format`` into
    ``output``.  The conversion round-trips through full model
    reconstruction, so the result carries exactly the state a load of the
    source would produce — the snapshot property tests pin v1→v2→load to
    byte-identical state and prediction fingerprints.  Returns the number
    of objects converted.
    """
    fleet = load_fleet(source, max_workers=max_workers)
    save_fleet(fleet, output, format=format, max_workers=max_workers)
    return len(fleet)
