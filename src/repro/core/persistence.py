"""Saving and loading fitted models.

Mining is the expensive phase (DBSCAN over every offset group plus the
rule lattice); deployments fit once and answer queries for days.  A
fitted :class:`~repro.core.model.HybridPredictionModel` serialises to a
single ``.npz`` archive:

* config and metadata as a JSON blob;
* the training history as one array (so ``update`` keeps working after a
  reload);
* regions as packed arrays (points concatenated with an index);
* patterns as integer tables referencing regions by their canonical id.

The TPT is *not* stored — it rebuilds from the patterns in well under a
second via the bottom-up bulk load, which keeps the format trivial and
version-stable.

A whole :class:`~repro.core.fleet.FleetPredictionModel` serialises as a
**fleet snapshot**: a directory with one ``.npz`` per object plus a
``manifest.json`` mapping object ids to files.  The serving layer
(:mod:`repro.serve`) loads either format.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Collection

import numpy as np

from ..trajectory.trajectory import Trajectory
from .config import HPMConfig
from .fleet import FleetPredictionModel
from .model import HybridPredictionModel
from .parallel import run_keyed_tasks
from .patterns import TrajectoryPattern

__all__ = ["save_model", "load_model", "save_fleet", "load_fleet"]

_FORMAT_VERSION = 1
_FLEET_FORMAT_VERSION = 1
_MANIFEST = "manifest.json"


def save_model(model: HybridPredictionModel, path: str | Path) -> None:
    """Serialise a fitted model to ``path`` (.npz)."""
    if not model.is_fitted:
        raise ValueError("cannot save an unfitted model")
    path = Path(path)
    regions = model.regions_
    history = model.history_

    region_rows = []
    points_blocks = []
    sub_id_blocks = []
    for region in regions:
        region_rows.append(
            [
                region.offset,
                region.index,
                len(region.points),
                len(region.subtrajectory_ids),
            ]
        )
        points_blocks.append(region.points)
        sub_id_blocks.append(np.asarray(region.subtrajectory_ids, dtype=np.int64))

    # Patterns as integer tables: premise region ids (padded with -1),
    # consequence id, support; confidences as a float column.
    max_premise = max((len(p.premise) for p in model.patterns_), default=1)
    pattern_rows = np.full(
        (len(model.patterns_), max_premise + 2), -1, dtype=np.int64
    )
    confidences = np.empty(len(model.patterns_), dtype=np.float64)
    for i, pattern in enumerate(model.patterns_):
        for j, region in enumerate(pattern.premise):
            pattern_rows[i, j] = regions.region_id(region)
        pattern_rows[i, max_premise] = regions.region_id(pattern.consequence)
        pattern_rows[i, max_premise + 1] = pattern.support
        confidences[i] = pattern.confidence

    meta = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "history_start_time": history.start_time,
        "max_premise": max_premise,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        history=history.positions,
        region_rows=np.asarray(region_rows, dtype=np.int64).reshape(-1, 4),
        region_points=(
            np.vstack(points_blocks) if points_blocks else np.empty((0, 2))
        ),
        region_sub_ids=(
            np.concatenate(sub_id_blocks)
            if sub_id_blocks
            else np.empty(0, dtype=np.int64)
        ),
        pattern_rows=pattern_rows,
        confidences=confidences,
    )


def load_model(path: str | Path) -> HybridPredictionModel:
    """Reload a model saved by :func:`save_model`.

    Regions and patterns are restored verbatim (no re-mining); the TPT is
    rebuilt by bulk load.
    """
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported model format {meta.get('format_version')}"
            )
        config = HPMConfig(**meta["config"])
        history = Trajectory(
            archive["history"], start_time=int(meta["history_start_time"])
        )
        region_rows = archive["region_rows"]
        region_points = archive["region_points"]
        region_sub_ids = archive["region_sub_ids"]
        pattern_rows = archive["pattern_rows"]
        confidences = archive["confidences"]

    from ..trajectory.point import BoundingBox, Point
    from .regions import FrequentRegion, RegionSet

    regions_list = []
    point_cursor = 0
    sub_cursor = 0
    for offset, index, num_points, num_subs in region_rows:
        points = region_points[point_cursor : point_cursor + num_points].copy()
        point_cursor += num_points
        sub_ids = tuple(
            int(s) for s in region_sub_ids[sub_cursor : sub_cursor + num_subs]
        )
        sub_cursor += num_subs
        center = points.mean(axis=0)
        regions_list.append(
            FrequentRegion(
                offset=int(offset),
                index=int(index),
                center=Point(float(center[0]), float(center[1])),
                points=points,
                bbox=BoundingBox.from_points(
                    [(float(x), float(y)) for x, y in points]
                ),
                subtrajectory_ids=sub_ids,
            )
        )
    region_set = RegionSet(regions_list, period=config.period, eps=config.eps)

    max_premise = int(meta["max_premise"])
    patterns = []
    for row, confidence in zip(pattern_rows, confidences):
        premise = tuple(
            region_set[int(rid)] for rid in row[:max_premise] if rid >= 0
        )
        patterns.append(
            TrajectoryPattern(
                premise=premise,
                consequence=region_set[int(row[max_premise])],
                support=int(row[max_premise + 1]),
                confidence=float(confidence),
            )
        )

    model = HybridPredictionModel(config)
    model._restore(history, region_set, patterns)
    return model


def save_fleet(fleet: FleetPredictionModel, directory: str | Path) -> None:
    """Serialise a fleet to a snapshot directory.

    Layout: ``manifest.json`` plus one ``object_NNNN.npz`` per object
    (filenames are positional so arbitrary object ids never have to be
    path-safe).  Existing snapshot files in the directory are replaced.
    """
    if len(fleet) == 0:
        raise ValueError("cannot save an empty fleet")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    objects: dict[str, str] = {}
    for index, object_id in enumerate(fleet.object_ids()):
        filename = f"object_{index:04d}.npz"
        save_model(fleet[object_id], directory / filename)
        objects[object_id] = filename
    manifest = {
        "format_version": _FLEET_FORMAT_VERSION,
        "config": dataclasses.asdict(fleet.config),
        "objects": objects,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_fleet(
    directory: str | Path,
    max_workers: int | None = None,
    executor: str = "thread",
    object_ids: "Collection[str] | None" = None,
) -> FleetPredictionModel:
    """Reload a fleet snapshot written by :func:`save_fleet`.

    With ``max_workers`` > 1 the per-object archives load in parallel —
    the decompression and array reconstruction overlap well under a
    thread pool (``executor="thread"``, the default), and
    ``executor="process"`` ships the rebuilt models back by pickle for
    the largest snapshots.  The resulting fleet is identical to a serial
    load; objects are adopted in manifest order.

    ``object_ids`` restricts the load to a subset of the manifest — a
    shard worker loads only the objects its consistent-hash ring slice
    owns, so warm-up cost scales with the shard, not the fleet.  Ids
    missing from the manifest raise ``ValueError``; an empty selection
    yields an empty fleet (a legal, if idle, shard).
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise ValueError(f"{directory} is not a fleet snapshot (no {_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _FLEET_FORMAT_VERSION:
        raise ValueError(
            f"{directory}: unsupported fleet format "
            f"{manifest.get('format_version')}"
        )
    objects = manifest["objects"]
    if object_ids is not None:
        wanted = set(object_ids)
        missing = sorted(wanted - objects.keys())
        if missing:
            raise ValueError(
                f"{directory}: object ids not in the snapshot manifest: "
                f"{', '.join(missing)}"
            )
        objects = {
            object_id: filename
            for object_id, filename in objects.items()
            if object_id in wanted
        }
    fleet = FleetPredictionModel(HPMConfig(**manifest["config"]))
    jobs = [
        (object_id, (directory / filename,))
        for object_id, filename in objects.items()
    ]
    results, failures = run_keyed_tasks(
        load_model, jobs, max_workers=max_workers, executor=executor
    )
    if failures:
        # Surface the first failure in manifest order, as a serial load would.
        for object_id, _ in jobs:
            if object_id in failures:
                raise failures[object_id]
    for object_id, model in results.items():
        fleet.adopt_object(object_id, model)
    return fleet
