"""Trajectory patterns and their discovery (Section IV).

Definition 1: "A trajectory pattern P is a special association rule of the
form ``R_{t1}^{j1} ∧ R_{t2}^{j2} ∧ ... ∧ R_{tm}^{jm} --c--> R_{tn}^{jn}``
with time constraint ``t1 < t2 < ... < tm < tn``."

Mining = modified Apriori over per-sub-trajectory transactions whose items
are frequent-region visits, with the paper's two pruning rules baked in:

1. *time monotonicity* — premise offsets strictly precede the consequence
   offset ("we do not predict past or current positions from future
   movements");
2. *single consequence* — Theorem 1: a rule with several regions in its
   consequence always has confidence <= its single-consequence sibling with
   the same premise, so it can never be ranked first and is never
   generated.

Implementation notes
--------------------
The itemset lattice is counted in *vertical* form: each frequent region
carries the bitmask of sub-trajectories that visit it (directly available
from DBSCAN membership), so support of any region combination is one AND +
popcount.  This is algebraically identical to the level-wise Apriori counts
(the test suite cross-checks against :mod:`repro.mining.apriori` on small
inputs) but avoids a transaction scan per candidate.

Premises are bounded by ``max_premise_length`` regions within
``max_premise_span`` consecutive offsets — the reproduction-specific cap
discussed in DESIGN.md (queries rank patterns by similarity to a short
recent-movement window, so wider premises can never win; an unbounded
lattice over 300-offset transactions is combinatorially explosive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from ..signature import bitset
from .regions import FrequentRegion, RegionSet

__all__ = [
    "TrajectoryPattern",
    "build_transactions",
    "region_visit_masks",
    "mine_trajectory_patterns",
    "count_rules_unpruned",
    "PatternMiningStats",
]


@dataclass(frozen=True)
class TrajectoryPattern:
    """One mined rule ``premise --confidence--> consequence``.

    ``premise`` is ordered by time offset; ``support`` counts the
    sub-trajectories containing premise and consequence together.
    """

    premise: tuple[FrequentRegion, ...]
    consequence: FrequentRegion
    support: int
    confidence: float

    def __post_init__(self) -> None:
        if not self.premise:
            raise ValueError("pattern premise must be non-empty")
        offsets = [r.offset for r in self.premise]
        if offsets != sorted(offsets) or len(set(offsets)) != len(offsets):
            raise ValueError(
                f"premise offsets must be strictly increasing, got {offsets}"
            )
        if self.consequence.offset <= offsets[-1]:
            raise ValueError(
                "consequence offset must exceed every premise offset "
                f"({self.consequence.offset} <= {offsets[-1]})"
            )
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")
        if self.support < 1:
            raise ValueError(f"support must be >= 1, got {self.support}")

    @classmethod
    def _unchecked(
        cls,
        premise: tuple[FrequentRegion, ...],
        consequence: FrequentRegion,
        support: int,
        confidence: float,
    ) -> "TrajectoryPattern":
        """Construct without re-running ``__post_init__`` validation.

        For callers whose construction already guarantees the invariants
        (the miner builds premises in strictly increasing offset order and
        only pairs them with later consequences); public constructions go
        through the validating ``__init__``.
        """
        self = object.__new__(cls)
        self.__dict__["premise"] = premise
        self.__dict__["consequence"] = consequence
        self.__dict__["support"] = support
        self.__dict__["confidence"] = confidence
        return self

    @property
    def premise_offsets(self) -> tuple[int, ...]:
        """Time offsets of the premise regions, ascending."""
        return tuple(r.offset for r in self.premise)

    @property
    def consequence_offset(self) -> int:
        """Time offset of the consequence region."""
        return self.consequence.offset

    def __str__(self) -> str:
        prem = " ∧ ".join(r.label for r in self.premise)
        return f"{prem} --{self.confidence:.2f}--> {self.consequence.label}"


@dataclass(frozen=True)
class PatternMiningStats:
    """Bookkeeping from one mining run (used by the pruning ablation).

    ``region_masks`` carries the vertical region-visit bitmasks the run
    was counted from, so downstream consumers (the pruning-ablation
    bench's :func:`count_rules_unpruned`) can reuse them instead of
    recomputing; it is excluded from equality and repr.
    """

    num_transactions: int
    num_frequent_items: int
    num_frequent_premises: int
    num_patterns: int
    region_masks: dict | None = field(default=None, repr=False, compare=False)


def build_transactions(
    regions: RegionSet, num_subtrajectories: int
) -> list[dict[int, FrequentRegion]]:
    """Per-sub-trajectory region visits: ``transactions[k][t] = R_t^j``.

    Built from DBSCAN membership (each region records which sub-trajectory
    contributed each member point), so a sub-trajectory visits at most one
    region per offset.
    """
    if num_subtrajectories < 1:
        raise ValueError(
            f"num_subtrajectories must be >= 1, got {num_subtrajectories}"
        )
    transactions: list[dict[int, FrequentRegion]] = [
        {} for _ in range(num_subtrajectories)
    ]
    for region in regions:
        for sub_id in set(region.subtrajectory_ids):
            if 0 <= sub_id < num_subtrajectories:
                transactions[sub_id][region.offset] = region
    return transactions


def region_visit_masks(
    regions: RegionSet, num_subtrajectories: int
) -> dict[FrequentRegion, int]:
    """Vertical representation: region -> bitmask of visiting sub-trajectories."""
    masks: dict[FrequentRegion, int] = {}
    for region in regions:
        masks[region] = bitset.from_indices(
            sub_id
            for sub_id in set(region.subtrajectory_ids)
            if 0 <= sub_id < num_subtrajectories
        )
    return masks


# Backwards-compatible private alias (pre-public name).
_region_masks = region_visit_masks


def mine_trajectory_patterns(
    regions: RegionSet,
    num_subtrajectories: int,
    min_support: int,
    min_confidence: float,
    max_premise_length: int = 2,
    max_premise_span: int = 2,
    max_consequence_gap: int | None = None,
    far_premise_stride: int = 5,
    return_stats: bool = False,
    region_masks: dict[FrequentRegion, int] | None = None,
) -> list[TrajectoryPattern] | tuple[list[TrajectoryPattern], PatternMiningStats]:
    """Mine all trajectory patterns satisfying the paper's constraints.

    Parameters
    ----------
    regions:
        Frequent regions from :func:`repro.core.regions.discover_frequent_regions`.
    num_subtrajectories:
        Number of training sub-trajectories (the transaction count).
    min_support:
        Minimum sub-trajectory count for premise∪consequence.
    min_confidence:
        Minimum rule confidence ``c``.
    max_premise_length / max_premise_span:
        Premise caps (see module docstring).
    max_consequence_gap:
        Maximum offset distance between the last premise region and the
        consequence; ``None`` = unlimited.  FQP only ever retrieves
        patterns whose consequence is less than the distant-time threshold
        ahead of the premise (farther queries go to BQP, which matches by
        consequence offset alone), so capping the gap near that threshold
        bounds the corpus to the paper's pattern-count magnitudes without
        changing query answers — see DESIGN.md.
    far_premise_stride:
        Beyond the gap cap, *far* patterns are still mined for
        single-region premises whose offset is a multiple of this stride.
        They carry the premise-similarity signal BQP's Eq. 5 needs to
        disambiguate alternative routes at distant query times, at a
        fraction of the unbounded corpus size.  Ignored when
        ``max_consequence_gap`` is ``None``.
    return_stats:
        Also return a :class:`PatternMiningStats` record.
    region_masks:
        Precomputed :func:`region_visit_masks` for ``(regions,
        num_subtrajectories)``; computed when omitted.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in [0, 1], got {min_confidence}")
    if max_premise_length < 1:
        raise ValueError(f"max_premise_length must be >= 1, got {max_premise_length}")
    if max_premise_span < 1:
        raise ValueError(f"max_premise_span must be >= 1, got {max_premise_span}")
    if max_consequence_gap is not None and max_consequence_gap < 1:
        raise ValueError(
            f"max_consequence_gap must be >= 1 or None, got {max_consequence_gap}"
        )
    if far_premise_stride < 1:
        raise ValueError(
            f"far_premise_stride must be >= 1, got {far_premise_stride}"
        )

    masks = (
        region_visit_masks(regions, num_subtrajectories)
        if region_masks is None
        else region_masks
    )
    frequent_items = [
        (region, mask)
        for region, mask in masks.items()
        if mask.bit_count() >= min_support
    ]
    frequent_items.sort(key=lambda rm: (rm[0].offset, rm[0].index))

    # Frequent premises, level-wise: a premise of length L extends one of
    # length L-1 by a region at a strictly later offset within the span.
    premises: list[tuple[tuple[FrequentRegion, ...], int]] = [
        ((region,), mask) for region, mask in frequent_items
    ]
    all_premises = list(premises)
    for _level in range(2, max_premise_length + 1):
        extended: list[tuple[tuple[FrequentRegion, ...], int]] = []
        for premise, mask in premises:
            first_offset = premise[0].offset
            last_offset = premise[-1].offset
            for region, region_mask in frequent_items:
                if region.offset <= last_offset:
                    continue
                if region.offset - first_offset > max_premise_span:
                    break  # items sorted by offset: all later ones fail too
                joint = mask & region_mask
                if joint.bit_count() >= min_support:
                    extended.append((premise + (region,), joint))
        all_premises.extend(extended)
        premises = extended
        if not premises:
            break

    # Rules: premise --> any single frequent region at a later offset
    # (within the consequence-gap cap when one is set; far-eligible
    # premises keep going past the cap).
    patterns: list[TrajectoryPattern] = []
    for premise, premise_mask in all_premises:
        premise_support = premise_mask.bit_count()
        last_offset = premise[-1].offset
        far_eligible = (
            len(premise) == 1 and premise[0].offset % far_premise_stride == 0
        )
        for region, region_mask in frequent_items:
            if region.offset <= last_offset:
                continue
            if (
                max_consequence_gap is not None
                and not far_eligible
                and region.offset - last_offset > max_consequence_gap
            ):
                break  # items sorted by offset
            joint = premise_mask & region_mask
            support = joint.bit_count()
            if support < min_support:
                continue
            confidence = support / premise_support
            if confidence >= min_confidence:
                # Construction invariants hold here (ascending premise,
                # later consequence, support >= 1, confidence <= 1), so
                # skip the per-pattern __post_init__ re-validation.
                patterns.append(
                    TrajectoryPattern._unchecked(
                        premise, region, support, confidence
                    )
                )

    if not return_stats:
        return patterns
    stats = PatternMiningStats(
        num_transactions=num_subtrajectories,
        num_frequent_items=len(frequent_items),
        num_frequent_premises=len(all_premises),
        num_patterns=len(patterns),
        region_masks=masks,
    )
    return patterns, stats


def count_rules_unpruned(
    patterns: Sequence[TrajectoryPattern],
    regions: RegionSet,
    num_subtrajectories: int,
    min_confidence: float,
    masks: dict[FrequentRegion, int] | None = None,
) -> int:
    """Rules plain Apriori would emit over the same itemset universe.

    For every distinct itemset ``premise ∪ {consequence}`` appearing in the
    mined patterns, count *all* non-empty bipartitions (any premise order,
    multi-item consequences included) whose confidence clears
    ``min_confidence`` — the generation the paper prunes away.  The paper
    reports the pruning removed 58 % of patterns; the ablation benchmark
    compares ``len(patterns)`` to this count.

    ``masks`` accepts precomputed :func:`region_visit_masks` (e.g. from
    :attr:`PatternMiningStats.region_masks`) to skip the recomputation.
    """
    if masks is None:
        masks = region_visit_masks(regions, num_subtrajectories)
    itemsets = {
        frozenset(p.premise) | {p.consequence} for p in patterns
    }
    count = 0
    for itemset in itemsets:
        items = sorted(itemset, key=lambda r: (r.offset, r.index))
        joint_mask = _joint_mask(items, masks)
        joint_support = joint_mask.bit_count()
        for r in range(1, len(items)):
            for premise_tuple in combinations(items, r):
                premise_mask = _joint_mask(premise_tuple, masks)
                premise_support = premise_mask.bit_count()
                if premise_support == 0:
                    continue
                if joint_support / premise_support >= min_confidence:
                    count += 1
    return count


def _joint_mask(
    items: Iterable[FrequentRegion], masks: dict[FrequentRegion, int]
) -> int:
    mask = -1
    for item in items:
        mask &= masks[item]
    return 0 if mask == -1 else mask
