"""Configuration for the Hybrid Prediction Model.

Defaults follow the paper's experimental setup (Section VII-A): k = 1,
T implied by the dataset, distant-time threshold d = 60, DBSCAN Eps = 30 and
MinPts = 4, minimum confidence 0.3, time relaxation 1 <= t_eps <= 3 (we
default to 2), and linear premise weights (Section VI-A reports the linear
and quadratic weight functions predict best).

Two knobs are reproduction-specific and documented in DESIGN.md:

* ``max_premise_length`` / ``max_premise_span`` bound the mined premise to
  at most that many regions spanning at most that many consecutive time
  offsets.  The paper's premises are short recent-movement prefixes (all
  worked examples use 1-2 regions at adjacent offsets); an unbounded
  Apriori over 300-offset transactions would enumerate astronomically many
  patterns that no query could ever rank first.
* ``min_support`` is the absolute itemset support; the paper folds support
  into MinPts/Eps, so it defaults to MinPts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["HPMConfig"]

_WEIGHT_FUNCTIONS = ("linear", "quadratic", "exponential", "factorial")


@dataclass(frozen=True)
class HPMConfig:
    """All tunables of the Hybrid Prediction Model in one immutable record.

    Attributes
    ----------
    period:
        The pattern period ``T`` (timestamps per sub-trajectory).
    eps:
        DBSCAN neighbourhood radius for frequent-region discovery.
    min_pts:
        DBSCAN core-point threshold.
    min_confidence:
        Minimum rule confidence for a trajectory pattern.
    min_support:
        Absolute itemset support; ``None`` means "use ``min_pts``" (the
        paper treats MinPts/Eps as the support analogue).
    distant_threshold:
        ``d`` of Definition 2 — queries with ``tq >= tc + d`` are distant
        and answered by BQP.
    time_relaxation:
        ``t_eps`` of Algorithm 3 (consequence-offset interval half-width).
    top_k:
        Number of predicted locations returned.
    weight_function:
        Premise-weight family: ``linear``, ``quadratic``, ``exponential``
        or ``factorial`` (Section VI-A).
    max_premise_length:
        Maximum number of regions in a pattern premise.
    max_premise_span:
        Maximum offset distance between the first and last premise region.
    max_consequence_gap:
        Maximum offset distance between the last premise region and the
        consequence; ``None`` derives ``distant_threshold + recent_window``
        (enough for every FQP retrieval — farther queries are BQP, which
        matches by consequence offset alone; see DESIGN.md).
    far_premise_stride:
        Offset stride of the single-region *far* premises mined beyond the
        gap cap (they carry BQP's premise-similarity signal to distant
        consequences).
    recent_window:
        Number of trailing samples treated as "recent movements" when
        mapping a query to frequent regions and when fitting the fallback
        motion function.
    tree_max_entries / tree_min_entries:
        TPT node capacity and minimum fill.
    refit_mode:
        How :meth:`HybridPredictionModel.update` refreshes mined state:
        ``"delta"`` (default) re-clusters only the offsets that received
        new rows, re-scores only the rules a changed region can move, and
        patches the TPT in place — byte-identical to a scratch fit (see
        DESIGN.md §11); ``"full"`` always re-mines the whole history (the
        legacy path).  Either mode rebuilds the index when key geometry
        drifts.
    refit_full_every:
        Staleness budget: force a full re-mine after this many consecutive
        delta refits (``None`` = never — delta refits are exact, so the
        budget is a belt-and-braces knob, not a correctness requirement).
    query_backend:
        Candidate-scoring implementation: ``"kernel"`` (default) scores
        whole consequence buckets with the packed numpy kernel
        (:mod:`repro.core.scorekernel`, bit-identical answers),
        ``"scan"`` keeps the per-candidate Python loop as the oracle.
    velocity_filter:
        Opt-in velocity-partitioned candidate pruning (kernel backend
        only): candidates whose minimum realizable speed exceeds the
        query object's speed band are masked out before scoring.  A
        heuristic — it may drop answers the exact path would return — so
        it defaults to off and is ignored by the scan oracle.
    velocity_bands:
        Number of quantile speed bands for the velocity filter.
    velocity_slack:
        Multiplier on the admitted band edge (>1 keeps a safety margin of
        faster candidates).
    """

    period: int = 300
    eps: float = 30.0
    min_pts: int = 4
    min_confidence: float = 0.3
    min_support: int | None = None
    distant_threshold: int = 60
    time_relaxation: int = 2
    top_k: int = 1
    weight_function: str = "linear"
    max_premise_length: int = 2
    max_premise_span: int = 2
    max_consequence_gap: int | None = None
    far_premise_stride: int = 5
    recent_window: int = 10
    tree_max_entries: int = 32
    tree_min_entries: int | None = None
    refit_mode: str = "delta"
    refit_full_every: int | None = None
    query_backend: str = "kernel"
    velocity_filter: bool = False
    velocity_bands: int = 4
    velocity_slack: float = 2.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if self.min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {self.min_pts}")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.min_support is not None and self.min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {self.min_support}")
        if not 0 < self.distant_threshold < self.period:
            raise ValueError(
                "distant_threshold must satisfy 0 < d < period "
                f"(Definition 2), got {self.distant_threshold}"
            )
        if self.time_relaxation < 1:
            raise ValueError(
                f"time_relaxation must be >= 1, got {self.time_relaxation}"
            )
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.weight_function not in _WEIGHT_FUNCTIONS:
            raise ValueError(
                f"weight_function must be one of {_WEIGHT_FUNCTIONS}, "
                f"got {self.weight_function!r}"
            )
        if self.max_premise_length < 1:
            raise ValueError(
                f"max_premise_length must be >= 1, got {self.max_premise_length}"
            )
        if self.max_premise_span < 1:
            raise ValueError(
                f"max_premise_span must be >= 1, got {self.max_premise_span}"
            )
        if self.max_consequence_gap is not None and self.max_consequence_gap < 1:
            raise ValueError(
                "max_consequence_gap must be >= 1 or None, "
                f"got {self.max_consequence_gap}"
            )
        if self.far_premise_stride < 1:
            raise ValueError(
                f"far_premise_stride must be >= 1, got {self.far_premise_stride}"
            )
        if self.recent_window < 2:
            raise ValueError(f"recent_window must be >= 2, got {self.recent_window}")
        if self.refit_mode not in ("delta", "full"):
            raise ValueError(
                f"refit_mode must be 'delta' or 'full', got {self.refit_mode!r}"
            )
        if self.refit_full_every is not None and self.refit_full_every < 1:
            raise ValueError(
                f"refit_full_every must be >= 1 or None, got {self.refit_full_every}"
            )
        if self.query_backend not in ("kernel", "scan"):
            raise ValueError(
                f"query_backend must be 'kernel' or 'scan', got {self.query_backend!r}"
            )
        if self.velocity_bands < 2:
            raise ValueError(
                f"velocity_bands must be >= 2, got {self.velocity_bands}"
            )
        if not self.velocity_slack > 0:
            raise ValueError(
                f"velocity_slack must be positive, got {self.velocity_slack}"
            )

    @property
    def effective_min_support(self) -> int:
        """The itemset support threshold actually used by the miner."""
        return self.min_pts if self.min_support is None else self.min_support

    @property
    def effective_max_consequence_gap(self) -> int:
        """The consequence-gap cap actually used by the miner."""
        if self.max_consequence_gap is not None:
            return self.max_consequence_gap
        return self.distant_threshold + self.recent_window

    def with_overrides(self, **kwargs) -> "HPMConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **kwargs)
